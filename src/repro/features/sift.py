"""SIFT-like gradient-orientation descriptors for keypoint patches.

The paper's SIFT-50M set consists of 128-dimensional SIFT descriptors
(Lowe [22]) extracted from partial-duplicate image regions; descriptors
from similar regions form the dominant clusters ("visual words", §5.3,
Fig. 8).  This module implements the descriptor stage of that pipeline:

* :func:`sift_descriptor` — Lowe's histogram-of-gradients descriptor for
  one keypoint patch: Gaussian-weighted gradient magnitudes binned over
  a ``4 x 4`` spatial grid and 8 orientations (128 dimensions), with
  bilinear spatial/orientation interpolation, L2 normalisation, the 0.2
  clip and renormalisation;
* :func:`make_keypoint_patches` — visual-word patch sets: one source
  patch per word plus perturbed copies (the same region seen in several
  partial-duplicate images) and unrelated random patches as noise;
* :func:`sift_via_patches` — the end-to-end builder returning a
  :class:`~repro.datasets.base.Dataset` of L2-normalised descriptors.

Detection (scale-space extrema) is out of scope: the paper consumes
descriptors, so patches stand in for detected keypoint support regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import ValidationError
from repro.features.images import perturb_image, random_texture_image
from repro.utils.rng import as_generator

__all__ = [
    "PatchCollection",
    "SiftExtractor",
    "make_keypoint_patches",
    "sift_descriptor",
    "sift_via_patches",
]


@dataclass
class PatchCollection:
    """Keypoint patches with visual-word ground truth.

    Attributes
    ----------
    patches:
        Array of shape ``(n, size, size)`` with values in ``[0, 1]``.
    labels:
        Visual-word ids ``>= 0``; ``-1`` for noise patches ("SIFTs
        extracted from the random non-duplicate regions", §5.3).
    metadata:
        Generator parameters.
    """

    patches: np.ndarray
    labels: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.patches = np.asarray(self.patches, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.patches.ndim != 3:
            raise ValidationError(
                f"patches must be 3-D (n, h, w), got ndim={self.patches.ndim}"
            )
        if self.labels.shape != (self.patches.shape[0],):
            raise ValidationError(
                f"labels must have shape ({self.patches.shape[0]},), "
                f"got {self.labels.shape}"
            )

    @property
    def n(self) -> int:
        """Number of patches."""
        return self.patches.shape[0]


def sift_descriptor(
    patch: np.ndarray,
    *,
    n_spatial: int = 4,
    n_orientations: int = 8,
    clip: float = 0.2,
) -> np.ndarray:
    """Compute a SIFT descriptor for one square keypoint patch.

    Follows Lowe's construction: image gradients (central differences),
    gradient magnitudes weighted by a Gaussian window over the patch
    (sigma = half the patch width), accumulated into an
    ``n_spatial x n_spatial`` grid of ``n_orientations``-bin orientation
    histograms with bilinear interpolation across both space and
    orientation; the concatenated histogram is L2-normalised, clipped at
    *clip* (illumination robustness) and renormalised.

    Returns a vector of ``n_spatial**2 * n_orientations`` dimensions
    (128 with the defaults, as in the paper's data).
    """
    patch = np.asarray(patch, dtype=np.float64)
    if patch.ndim != 2 or patch.shape[0] != patch.shape[1]:
        raise ValidationError(
            f"patch must be square 2-D, got shape {patch.shape}"
        )
    size = patch.shape[0]
    if size < n_spatial:
        raise ValidationError(
            f"patch size {size} is smaller than the spatial grid {n_spatial}"
        )
    if n_spatial < 1 or n_orientations < 2:
        raise ValidationError(
            "n_spatial must be >= 1 and n_orientations >= 2"
        )
    dy, dx = np.gradient(patch)
    magnitude = np.hypot(dx, dy)
    orientation = np.arctan2(dy, dx) % (2.0 * np.pi)

    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    center = (size - 1) / 2.0
    sigma = size / 2.0
    window = np.exp(
        -((xx - center) ** 2 + (yy - center) ** 2) / (2.0 * sigma**2)
    )
    weight = (magnitude * window).ravel()

    # Continuous cell coordinates in [−0.5, n_spatial − 0.5]; bin centres
    # sit at integers, so each sample spreads bilinearly over the two
    # nearest cells per axis and the two nearest orientation bins.
    cell_y = yy.ravel() / size * n_spatial - 0.5
    cell_x = xx.ravel() / size * n_spatial - 0.5
    orient = orientation.ravel() / (2.0 * np.pi) * n_orientations

    histogram = np.zeros((n_spatial, n_spatial, n_orientations))
    y0 = np.floor(cell_y).astype(np.intp)
    x0 = np.floor(cell_x).astype(np.intp)
    o0 = np.floor(orient).astype(np.intp)
    fy = cell_y - y0
    fx = cell_x - x0
    fo = orient - o0
    for dy_bin, wy in ((0, 1.0 - fy), (1, fy)):
        y_bin = y0 + dy_bin
        y_ok = (y_bin >= 0) & (y_bin < n_spatial)
        for dx_bin, wx in ((0, 1.0 - fx), (1, fx)):
            x_bin = x0 + dx_bin
            x_ok = y_ok & (x_bin >= 0) & (x_bin < n_spatial)
            for do_bin, wo in ((0, 1.0 - fo), (1, fo)):
                o_bin = (o0 + do_bin) % n_orientations
                contribution = weight * wy * wx * wo
                np.add.at(
                    histogram,
                    (y_bin[x_ok], x_bin[x_ok], o_bin[x_ok]),
                    contribution[x_ok],
                )
    descriptor = histogram.ravel()
    norm = np.linalg.norm(descriptor)
    if norm < 1e-12:
        # Perfectly flat patch: no gradients anywhere — return zeros
        # rather than amplifying numerical dust.
        return descriptor
    descriptor = descriptor / norm
    descriptor = np.minimum(descriptor, clip)
    norm = np.linalg.norm(descriptor)
    if norm > 1e-12:
        descriptor = descriptor / norm
    return descriptor


class SiftExtractor:
    """Reusable SIFT pipeline over patch stacks.

    Example
    -------
    >>> from repro.features import make_keypoint_patches
    >>> patches = make_keypoint_patches(n_words=2, patches_per_word=3,
    ...                                 n_noise=4, seed=0)
    >>> SiftExtractor().transform(patches.patches).shape
    (10, 128)
    """

    def __init__(self, *, n_spatial: int = 4, n_orientations: int = 8):
        self.n_spatial = int(n_spatial)
        self.n_orientations = int(n_orientations)

    @property
    def dim(self) -> int:
        """Descriptor dimensionality."""
        return self.n_spatial**2 * self.n_orientations

    def __call__(self, patch: np.ndarray) -> np.ndarray:
        """Descriptor of a single patch."""
        return sift_descriptor(
            patch,
            n_spatial=self.n_spatial,
            n_orientations=self.n_orientations,
        )

    def transform(self, patches: np.ndarray) -> np.ndarray:
        """Descriptors for a stack of patches, shape ``(n, dim)``."""
        patches = np.asarray(patches, dtype=np.float64)
        if patches.ndim != 3:
            raise ValidationError(
                f"patches must be 3-D (n, h, w), got ndim={patches.ndim}"
            )
        return np.stack([self(patch) for patch in patches])


def make_keypoint_patches(
    *,
    n_words: int = 5,
    patches_per_word: int = 10,
    n_noise: int = 50,
    size: int = 16,
    seed=0,
    perturbation: dict | None = None,
) -> PatchCollection:
    """Generate visual-word keypoint patches plus noise patches.

    Each visual word is a source texture patch re-observed
    ``patches_per_word - 1`` times through the near-duplicate
    perturbation model (the same image region appearing in several
    partial-duplicate images); noise patches are independent random
    textures, mirroring the paper's Fig. 8 geometry.
    """
    if n_words < 0 or n_noise < 0:
        raise ValidationError("n_words and n_noise must be >= 0")
    if n_words > 0 and patches_per_word < 1:
        raise ValidationError(
            f"patches_per_word must be >= 1, got {patches_per_word}"
        )
    if n_words == 0 and n_noise == 0:
        raise ValidationError("collection must contain at least one patch")
    rng = as_generator(seed)
    # Keypoint patches carry fine texture: more gratings, smaller blobs.
    defaults = {"max_rotation_deg": 4.0, "max_shift": 1.0, "noise_level": 0.02}
    perturbation = {**defaults, **(perturbation or {})}
    patches = []
    labels = []
    for word in range(n_words):
        source = random_texture_image(
            size, n_gratings=6, n_blobs=2, seed=rng
        )
        patches.append(source)
        labels.append(word)
        for _ in range(patches_per_word - 1):
            patches.append(perturb_image(source, seed=rng, **perturbation))
            labels.append(word)
    for _ in range(n_noise):
        patches.append(
            random_texture_image(size, n_gratings=6, n_blobs=2, seed=rng)
        )
        labels.append(-1)
    return PatchCollection(
        patches=np.stack(patches),
        labels=np.asarray(labels, dtype=np.int64),
        metadata={
            "n_words": n_words,
            "patches_per_word": patches_per_word,
            "n_noise": n_noise,
            "size": size,
            "perturbation": dict(perturbation),
        },
    )


def sift_via_patches(
    *,
    n_words: int = 5,
    patches_per_word: int = 10,
    n_noise: int = 50,
    size: int = 16,
    seed=0,
    collection: PatchCollection | None = None,
) -> Dataset:
    """SIFT end-to-end: keypoint patches -> descriptors -> Dataset.

    The full pipeline behind the paper's SIFT-50M set (image regions ->
    128-d SIFT descriptors) at laptop scale.  Pass a prebuilt
    *collection* to reuse patches; otherwise one is generated.
    """
    if collection is None:
        collection = make_keypoint_patches(
            n_words=n_words,
            patches_per_word=patches_per_word,
            n_noise=n_noise,
            size=size,
            seed=seed,
        )
    extractor = SiftExtractor()
    vectors = extractor.transform(collection.patches)
    return Dataset(
        data=vectors,
        labels=collection.labels,
        name="sift-patches",
        metadata=dict(
            collection.metadata, pipeline="sift", dim=extractor.dim
        ),
    )
