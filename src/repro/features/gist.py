"""GIST descriptor via a frequency-domain Gabor filter bank (NDI pipeline).

The paper's NDI images are each "represented by a 256-dimensional GIST
feature that describes the global texture of the image content" (§5,
citing Oliva & Torralba [25]).  GIST is computed by filtering the image
with a bank of oriented band-pass (Gabor) filters and average-pooling
each filter's response energy over a coarse spatial grid.

With the default 4 scales x 4 orientations x (4 x 4) grid the descriptor
has exactly ``4 * 4 * 16 = 256`` dimensions, matching the paper.

Filters are built directly in the frequency domain as polar Gaussians —
a radial log-frequency band times an orientation lobe — which is the
standard construction and keeps the whole transform three FFTs per
filter-free: one forward FFT of the image, one multiply and one inverse
FFT per filter.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import ValidationError
from repro.features.images import ImageCollection, make_near_duplicate_images
from repro.utils.validation import check_positive

__all__ = ["GistExtractor", "gabor_filter_bank", "gist_descriptor", "ndi_via_gist"]


def gabor_filter_bank(
    size: int,
    *,
    n_scales: int = 4,
    n_orientations: int = 4,
    bandwidth: float = 0.65,
    angular_width: float = 0.45,
) -> np.ndarray:
    """Build frequency-domain Gabor-like transfer functions.

    Returns an array of shape ``(n_scales * n_orientations, size, size)``
    of non-negative transfer functions aligned with ``numpy.fft.fft2``
    layout (DC at the corner).  Scale ``s`` is centred on radial
    frequency ``0.25 / 2**s`` cycles/pixel; orientations are evenly
    spaced over half a turn (the bank responds symmetrically to theta and
    theta + pi because the image is real).
    """
    if size < 4:
        raise ValidationError(f"size must be >= 4, got {size}")
    if n_scales < 1 or n_orientations < 1:
        raise ValidationError("n_scales and n_orientations must be >= 1")
    check_positive(bandwidth, name="bandwidth")
    check_positive(angular_width, name="angular_width")
    fy = np.fft.fftfreq(size)[:, None]
    fx = np.fft.fftfreq(size)[None, :]
    radius = np.hypot(fx, fy)
    radius[0, 0] = 1e-12  # avoid log(0) at DC; the band kills DC anyway
    angle = np.arctan2(fy, fx)

    filters = np.empty((n_scales * n_orientations, size, size))
    index = 0
    for scale in range(n_scales):
        f0 = 0.25 / (2.0**scale)
        radial = np.exp(
            -((np.log(radius / f0)) ** 2) / (2.0 * bandwidth**2)
        )
        for orientation in range(n_orientations):
            theta0 = np.pi * orientation / n_orientations
            # Angular distance folded to [0, pi/2] — real images excite
            # theta and theta + pi identically.
            delta = np.angle(np.exp(1j * 2.0 * (angle - theta0))) / 2.0
            angular = np.exp(-(delta**2) / (2.0 * angular_width**2))
            filters[index] = radial * angular
            index += 1
    return filters


def gist_descriptor(
    image: np.ndarray,
    filters: np.ndarray,
    *,
    grid: int = 4,
    normalize: bool = True,
) -> np.ndarray:
    """Compute the GIST descriptor of one image under a filter bank.

    For each filter the image is band-passed in the frequency domain and
    the response magnitude is average-pooled over a ``grid x grid``
    partition; the pooled energies are concatenated filter-major and
    (by default) L2-normalised, which removes global contrast.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2 or image.shape[0] != image.shape[1]:
        raise ValidationError(
            f"image must be square 2-D, got shape {image.shape}"
        )
    size = image.shape[0]
    if filters.ndim != 3 or filters.shape[1:] != (size, size):
        raise ValidationError(
            f"filter bank shape {filters.shape} does not match image "
            f"size {size}"
        )
    if size % grid != 0:
        raise ValidationError(
            f"image size {size} must be divisible by grid {grid}"
        )
    cell = size // grid
    spectrum = np.fft.fft2(image)
    descriptor = np.empty(filters.shape[0] * grid * grid)
    for i, transfer in enumerate(filters):
        response = np.abs(np.fft.ifft2(spectrum * transfer))
        pooled = response.reshape(grid, cell, grid, cell).mean(axis=(1, 3))
        descriptor[i * grid * grid : (i + 1) * grid * grid] = pooled.ravel()
    if normalize:
        norm = np.linalg.norm(descriptor)
        if norm > 1e-12:
            descriptor = descriptor / norm
    return descriptor


class GistExtractor:
    """Reusable GIST pipeline: one precomputed filter bank, many images.

    Parameters
    ----------
    size:
        Side length of the (square) input images.
    n_scales / n_orientations / grid:
        Bank and pooling geometry.  The default ``4 x 4`` bank with a
        ``4 x 4`` grid yields the paper's 256-dimensional descriptor.

    Example
    -------
    >>> from repro.features import random_texture_image
    >>> extractor = GistExtractor(size=32)
    >>> extractor.dim
    256
    >>> vec = extractor(random_texture_image(32, seed=0))
    >>> vec.shape
    (256,)
    """

    def __init__(
        self,
        size: int,
        *,
        n_scales: int = 4,
        n_orientations: int = 4,
        grid: int = 4,
    ):
        if size % grid != 0:
            raise ValidationError(
                f"image size {size} must be divisible by grid {grid}"
            )
        self.size = int(size)
        self.grid = int(grid)
        self.filters = gabor_filter_bank(
            size, n_scales=n_scales, n_orientations=n_orientations
        )

    @property
    def dim(self) -> int:
        """Descriptor dimensionality (filters x grid cells)."""
        return self.filters.shape[0] * self.grid * self.grid

    def __call__(self, image: np.ndarray) -> np.ndarray:
        """Descriptor of a single image."""
        return gist_descriptor(image, self.filters, grid=self.grid)

    def transform(self, images: np.ndarray) -> np.ndarray:
        """Descriptors for a stack of images, shape ``(n, dim)``."""
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 3:
            raise ValidationError(
                f"images must be 3-D (n, h, w), got ndim={images.ndim}"
            )
        return np.stack([self(image) for image in images])


def ndi_via_gist(
    *,
    n_clusters: int = 6,
    duplicates_per_cluster: int = 12,
    n_noise: int = 60,
    size: int = 32,
    seed=0,
    collection: ImageCollection | None = None,
) -> Dataset:
    """NDI end-to-end: near-duplicate images -> GIST -> Dataset.

    The full pipeline behind the paper's NDI set (crawled images ->
    256-d GIST features) at laptop scale.  Pass a prebuilt *collection*
    to reuse images across extractions; otherwise one is generated from
    the cluster/noise counts.
    """
    if collection is None:
        collection = make_near_duplicate_images(
            n_clusters=n_clusters,
            duplicates_per_cluster=duplicates_per_cluster,
            n_noise=n_noise,
            size=size,
            seed=seed,
        )
    height, width = collection.size
    if height != width:
        raise ValidationError("GIST pipeline requires square images")
    extractor = GistExtractor(size=height)
    vectors = extractor.transform(collection.images)
    return Dataset(
        data=vectors,
        labels=collection.labels,
        name="ndi-gist",
        metadata=dict(
            collection.metadata, pipeline="gist", dim=extractor.dim
        ),
    )
