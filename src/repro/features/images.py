"""Synthetic textured images and the near-duplicate perturbation model.

Raw material for the NDI and SIFT pipelines.  The paper's NDI set groups
"images with similar contents" into dominant clusters (§5); its SIFT-50M
set extracts descriptors from partial-duplicate image regions (§5.3,
Fig. 8).  This module provides:

* :func:`random_texture_image` — a random grayscale image built from
  sinusoidal gratings plus Gaussian blobs (enough spectral and spatial
  structure for GIST and gradient-histogram descriptors to be
  discriminative);
* :func:`perturb_image` — the near-duplicate transform: photometric
  jitter, additive noise, small translations and rotations — the
  distortions a re-post/crop/re-encode pipeline applies;
* :func:`make_near_duplicate_images` — a labelled collection of
  near-duplicate groups plus unrelated background images.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator

__all__ = [
    "ImageCollection",
    "make_near_duplicate_images",
    "perturb_image",
    "random_texture_image",
]


@dataclass
class ImageCollection:
    """A stack of grayscale images with near-duplicate ground truth.

    Attributes
    ----------
    images:
        Array of shape ``(n, size, size)`` with values in ``[0, 1]``.
    labels:
        Group ids ``>= 0`` for near-duplicate clusters, ``-1`` for
        unrelated background images.
    metadata:
        Generator parameters.
    """

    images: np.ndarray
    labels: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 3:
            raise ValidationError(
                f"images must be 3-D (n, h, w), got ndim={self.images.ndim}"
            )
        if self.labels.shape != (self.images.shape[0],):
            raise ValidationError(
                f"labels must have shape ({self.images.shape[0]},), "
                f"got {self.labels.shape}"
            )

    @property
    def n(self) -> int:
        """Number of images."""
        return self.images.shape[0]

    @property
    def size(self) -> tuple[int, int]:
        """Image height and width."""
        return self.images.shape[1], self.images.shape[2]


def random_texture_image(
    size: int = 32,
    *,
    n_gratings: int = 4,
    n_blobs: int = 3,
    noise_level: float = 0.05,
    seed=None,
) -> np.ndarray:
    """Generate one random textured grayscale image in ``[0, 1]``.

    The image sums *n_gratings* oriented sinusoidal gratings (random
    frequency, orientation and phase — these give GIST's Gabor bank
    something to measure) and *n_blobs* Gaussian intensity blobs (these
    give gradient-histogram descriptors localised structure), plus white
    noise, then rescales to the unit interval.
    """
    if size < 4:
        raise ValidationError(f"size must be >= 4, got {size}")
    rng = as_generator(seed)
    yy, xx = np.mgrid[0:size, 0:size] / float(size)
    image = np.zeros((size, size))
    for _ in range(n_gratings):
        frequency = rng.uniform(2.0, size / 4.0)
        theta = rng.uniform(0.0, np.pi)
        phase = rng.uniform(0.0, 2 * np.pi)
        amplitude = rng.uniform(0.3, 1.0)
        carrier = xx * np.cos(theta) + yy * np.sin(theta)
        image += amplitude * np.sin(2 * np.pi * frequency * carrier + phase)
    for _ in range(n_blobs):
        cx, cy = rng.uniform(0.1, 0.9, size=2)
        sigma = rng.uniform(0.05, 0.2)
        amplitude = rng.uniform(-1.5, 1.5)
        image += amplitude * np.exp(
            -((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * sigma**2)
        )
    image += rng.normal(0.0, noise_level, size=image.shape)
    low, high = image.min(), image.max()
    if high - low < 1e-12:
        return np.full_like(image, 0.5)
    return (image - low) / (high - low)


def perturb_image(
    image: np.ndarray,
    *,
    brightness: float = 0.08,
    contrast: float = 0.15,
    noise_level: float = 0.03,
    max_shift: float = 1.5,
    max_rotation_deg: float = 3.0,
    seed=None,
) -> np.ndarray:
    """Produce a near-duplicate of *image*.

    Applies, in order: a small rotation, a sub-pixel translation,
    a contrast/brightness jitter and additive Gaussian noise — the
    distortions that related near-duplicate copies of one source image
    typically differ by.  Output is clipped back to ``[0, 1]``.

    All magnitudes are drawn uniformly from ``[-bound, +bound]``; pass 0
    for any bound to disable that distortion.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValidationError(f"image must be 2-D, got ndim={image.ndim}")
    rng = as_generator(seed)
    out = image
    if max_rotation_deg > 0:
        angle = rng.uniform(-max_rotation_deg, max_rotation_deg)
        out = ndimage.rotate(
            out, angle, reshape=False, mode="reflect", order=1
        )
    if max_shift > 0:
        shift = rng.uniform(-max_shift, max_shift, size=2)
        out = ndimage.shift(out, shift, mode="reflect", order=1)
    gain = 1.0 + rng.uniform(-contrast, contrast)
    bias = rng.uniform(-brightness, brightness)
    out = gain * (out - 0.5) + 0.5 + bias
    if noise_level > 0:
        out = out + rng.normal(0.0, noise_level, size=out.shape)
    return np.clip(out, 0.0, 1.0)


def make_near_duplicate_images(
    *,
    n_clusters: int = 6,
    duplicates_per_cluster: int = 12,
    n_noise: int = 60,
    size: int = 32,
    seed=0,
    perturbation: dict | None = None,
) -> ImageCollection:
    """Generate a labelled near-duplicate image collection (NDI-like).

    Each cluster is one random source image plus
    ``duplicates_per_cluster - 1`` perturbed copies; background images
    are fresh independent textures (paper §5: "images with diverse
    contents are regarded as background noise").

    Parameters
    ----------
    perturbation:
        Optional keyword overrides forwarded to :func:`perturb_image`
        (e.g. ``{"max_rotation_deg": 0.0}``).
    """
    if n_clusters < 0 or n_noise < 0:
        raise ValidationError("n_clusters and n_noise must be >= 0")
    if n_clusters > 0 and duplicates_per_cluster < 1:
        raise ValidationError(
            f"duplicates_per_cluster must be >= 1, got {duplicates_per_cluster}"
        )
    if n_clusters == 0 and n_noise == 0:
        raise ValidationError("collection must contain at least one image")
    rng = as_generator(seed)
    perturbation = perturbation or {}
    images = []
    labels = []
    for cluster in range(n_clusters):
        source = random_texture_image(size, seed=rng)
        images.append(source)
        labels.append(cluster)
        for _ in range(duplicates_per_cluster - 1):
            images.append(perturb_image(source, seed=rng, **perturbation))
            labels.append(cluster)
    for _ in range(n_noise):
        images.append(random_texture_image(size, seed=rng))
        labels.append(-1)
    return ImageCollection(
        images=np.stack(images),
        labels=np.asarray(labels, dtype=np.int64),
        metadata={
            "n_clusters": n_clusters,
            "duplicates_per_cluster": duplicates_per_cluster,
            "n_noise": n_noise,
            "size": size,
            "perturbation": dict(perturbation),
        },
    )
