"""Feature-extraction substrates behind the paper's three data sets.

The paper's corpora were *built* with standard feature pipelines — LDA
topic vectors for NART (§5, [6]), GIST descriptors for NDI ([25]) and
SIFT descriptors for SIFT-50M ([22]).  This package implements each
pipeline from scratch so the reproduction can run end-to-end from raw
synthetic media instead of starting at pre-extracted vectors:

* :mod:`repro.features.lda` — collapsed-Gibbs Latent Dirichlet
  Allocation plus a synthetic news-corpus generator (NART pipeline);
* :mod:`repro.features.images` — synthetic textured images and the
  near-duplicate perturbation model (NDI/SIFT raw material);
* :mod:`repro.features.gist` — Gabor-filter-bank GIST descriptor
  (NDI pipeline);
* :mod:`repro.features.sift` — gradient-orientation-histogram SIFT
  descriptor for keypoint patches (SIFT-50M pipeline).

Each module exposes a ``*_via_*`` builder returning a ready
:class:`~repro.datasets.base.Dataset`, so examples and tests can swap the
geometric stand-in generators of :mod:`repro.datasets` for the full
pipeline at will.
"""

from repro.features.gist import GistExtractor, gist_descriptor, ndi_via_gist
from repro.features.images import (
    ImageCollection,
    make_near_duplicate_images,
    perturb_image,
    random_texture_image,
)
from repro.features.lda import (
    Corpus,
    LatentDirichletAllocation,
    make_news_corpus,
    nart_via_lda,
)
from repro.features.sift import (
    PatchCollection,
    SiftExtractor,
    make_keypoint_patches,
    sift_descriptor,
    sift_via_patches,
)

__all__ = [
    "Corpus",
    "GistExtractor",
    "ImageCollection",
    "LatentDirichletAllocation",
    "PatchCollection",
    "SiftExtractor",
    "gist_descriptor",
    "make_keypoint_patches",
    "make_near_duplicate_images",
    "make_news_corpus",
    "nart_via_lda",
    "ndi_via_gist",
    "perturb_image",
    "random_texture_image",
    "sift_descriptor",
    "sift_via_patches",
]
