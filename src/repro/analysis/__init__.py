"""Analytical models from the paper's appendix, checked against runs.

* :mod:`repro.analysis.convergence` — Proposition 2 (Appendix B): the
  binomial support-growth model ``a(c+1) = m(c) * (1 - (1-p)^a(c))``
  driven by the LSH recall lower bound, plus helpers for comparing the
  model against support-size traces recorded by
  :meth:`repro.core.alid.ALIDEngine.detect_from_seed`.
"""

from repro.analysis.convergence import (
    fixed_point_support,
    predicted_support_series,
    support_growth_step,
)

__all__ = [
    "fixed_point_support",
    "predicted_support_series",
    "support_growth_step",
]
