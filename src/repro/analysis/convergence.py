"""Proposition 2's support-growth model (paper Appendix B).

The paper proves ALID converges and that the *expected* number of
detected cluster vertices grows as (Eq. 32–33)::

    b(c)     ~  Binomial(m(c), 1 - (1 - p)^a(c))
    a(c+1)   =  E[b(c)]  =  m(c) * (1 - (1 - p)^a(c))

where ``a(c)`` is the expected support size of the local dense subgraph
after round ``c``, ``m(c) <= M`` the number of true-cluster vertices
inside the ROI (an increasing series reaching ``M``), and ``p`` the LSH
recall lower bound of Datar et al. — computable in closed form from the
index parameters via :func:`repro.lsh.params.retrieval_probability`.

This module evaluates that recursion, finds its fixed point, and scores
measured support traces (recorded by ``detect_from_seed(trace=...)``)
against the model — the quantitative check behind the appendix's claim
that "the series {a(c)} converges to M, and a larger value of p leads to
a faster convergence rate".
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_in_range

__all__ = [
    "fixed_point_support",
    "model_vs_trace",
    "predicted_support_series",
    "support_growth_step",
]


def support_growth_step(a: float, m: float, p: float) -> float:
    """One application of Eq. 33: ``a' = m * (1 - (1-p)^a)``.

    ``a`` is the current expected support size, ``m`` the cluster
    vertices reachable inside the current ROI, ``p`` the per-vertex LSH
    recall lower bound.
    """
    if a < 0 or m < 0:
        raise ValidationError("a and m must be >= 0")
    check_in_range(p, 0.0, 1.0, name="p")
    return m * (1.0 - (1.0 - p) ** a)


def predicted_support_series(
    cluster_size: int,
    p: float,
    *,
    n_rounds: int = 10,
    a0: float = 1.0,
    m_schedule=None,
) -> np.ndarray:
    """The model's expected support sizes ``a(1..n_rounds)``.

    Parameters
    ----------
    cluster_size:
        ``M``, the true dominant cluster's vertex count.
    p:
        LSH recall lower bound (Appendix B's ``p in (0, 1)``).
    n_rounds:
        Outer iterations to simulate (the paper's C = 10).
    a0:
        Initial support (Alg. 2 starts from a single seed vertex).
    m_schedule:
        Optional callable ``round -> m(c)`` for the in-ROI cluster
        vertex count; defaults to the upper envelope ``m(c) = M`` (the
        ROI's outer ball contains the full cluster, Prop. 1).

    Returns
    -------
    numpy.ndarray
        ``a(c)`` for ``c = 1..n_rounds``; non-decreasing, bounded by M.
    """
    if cluster_size < 1:
        raise ValidationError(
            f"cluster_size must be >= 1, got {cluster_size}"
        )
    check_in_range(p, 0.0, 1.0, name="p")
    if n_rounds < 1:
        raise ValidationError(f"n_rounds must be >= 1, got {n_rounds}")
    series = np.empty(n_rounds)
    a = float(a0)
    for c in range(n_rounds):
        m = float(cluster_size if m_schedule is None else m_schedule(c + 1))
        if m > cluster_size:
            raise ValidationError(
                f"m_schedule returned {m} > cluster_size {cluster_size}"
            )
        a = support_growth_step(a, m, p)
        series[c] = a
    return series


def fixed_point_support(
    cluster_size: int, p: float, *, tol: float = 1e-9, max_iter: int = 100_000
) -> float:
    """The limit of the recursion ``a = M * (1 - (1-p)^a)``.

    For ``p`` bounded away from 0 and ``M >= 1`` the non-trivial fixed
    point is close to ``M`` — the appendix's convergence claim.  (The
    recursion also has the trivial fixed point 0; starting from
    ``a0 = 1`` escapes it whenever ``M * p > small``.)
    """
    if cluster_size < 1:
        raise ValidationError(
            f"cluster_size must be >= 1, got {cluster_size}"
        )
    check_in_range(p, 0.0, 1.0, name="p")
    a = 1.0
    for _ in range(max_iter):
        nxt = support_growth_step(a, cluster_size, p)
        if abs(nxt - a) < tol:
            return nxt
        a = nxt
    return a


def model_vs_trace(
    trace: list[dict], cluster_size: int, p: float
) -> dict[str, float]:
    """Score a measured support trace against the Prop. 2 model.

    Parameters
    ----------
    trace:
        Records from ``detect_from_seed(..., trace=[])`` — each must
        carry ``support_size``.
    cluster_size:
        ``M`` of the cluster the seed belongs to.
    p:
        LSH recall lower bound used for the model.

    Returns
    -------
    dict with:
        ``final_measured`` / ``final_predicted`` — last support sizes;
        ``capture_measured`` / ``capture_predicted`` — the same as a
        fraction of M;
        ``monotone_violations`` — count of measured support *decreases*
        (the model says the expectation increases; single runs may dip
        when LID drops weak fringe vertices);
        ``mean_abs_error`` — mean |measured - predicted| over the rounds
        both series cover.
    """
    if not trace:
        raise ValidationError("trace is empty — pass trace=[] to detect_from_seed")
    measured = np.asarray([record["support_size"] for record in trace], float)
    predicted = predicted_support_series(
        cluster_size, p, n_rounds=len(measured)
    )
    steps = np.diff(measured)
    overlap = min(measured.size, predicted.size)
    return {
        "final_measured": float(measured[-1]),
        "final_predicted": float(predicted[-1]),
        "capture_measured": float(measured[-1] / cluster_size),
        "capture_predicted": float(predicted[-1] / cluster_size),
        "monotone_violations": int((steps < 0).sum()),
        "mean_abs_error": float(
            np.abs(measured[:overlap] - predicted[:overlap]).mean()
        ),
    }
