"""IngestService: streaming ingest wired into the serve tier.

The live-corpus half of the serving story (the paper's §6 future work
meets its §4.6 server database): a :class:`~repro.streaming.online.
StreamingALID` absorbs arriving point batches on the write path, and
what changed is published as incremental
:class:`~repro.serve.snapshot.SnapshotDelta` artifacts the serving
fronts (:class:`~repro.serve.service.ClusterService`,
:class:`~repro.serve.sharded.ShardedClusterService`) hot-apply — reload
cost scales with the churn, not with the corpus.

Lifecycle of one batch::

    ingest(points)
      |-- StreamingALID.partial_fit(discover=False)
      |     absorb: arriving items infective against an existing
      |     cluster (the shared Theorem 1 criterion of
      |     repro.core.infectivity) trigger that cluster's LID
      |     re-convergence; everything else stays in the pool
      |-- dirty-mark: items absorption left behind dirty their whole
      |     LSH collision component (the reachability unit of a seeded
      |     Alg. 2 run), queued for re-peeling
      '-- background re-peel: a worker thread re-runs discovery over
            the dirty regions only — new dominant clusters grow off the
            ingest path, the way Shi et al.'s parallel correlation
            clustering re-clusters affected subgraphs, not the graph

    publish_base(dir)    a full DetectionSnapshot; the chain anchor
    publish_delta(dir)   appended rows + LSH insert state + replaced/
                         retired clusters since the last publish

Publishing diffs the stream's cluster list against what was last
published: a cluster whose support, weights, density or seed changed is
*replaced* (its label lands in ``removed_labels`` and the refreshed
cluster in the upserts), a vanished label is retired, a new label is a
plain upsert.  Applying the delta chain is therefore exact: the
resulting snapshot holds byte-identical rows, bucket keys and cluster
strategies to a full snapshot written from the same stream state
(pinned by ``tests/test_serve_delta.py``).
"""

from __future__ import annotations

import dataclasses
import threading

import numpy as np

from repro.core.infectivity import max_item_payoffs
from repro.core.results import Cluster
from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TID_INGEST
from repro.serve.snapshot import DetectionSnapshot, SnapshotDelta
from repro.streaming.online import StreamingALID
from repro.utils.timing import timed

__all__ = ["IngestReport", "IngestService", "REPEEL_MODES"]

REPEEL_MODES = ("background", "sync", "manual")


@dataclasses.dataclass
class IngestReport:
    """Outcome of one :meth:`IngestService.ingest` call.

    Attributes
    ----------
    n_points:
        Points in the batch.
    absorbed:
        Points that joined an existing dominant cluster on the ingest
        path (Theorem 1 infective, survived the re-convergence).
    still_infective:
        Unabsorbed points whose best payoff margin still exceeds the
        tolerance — absorption *failed* for them (the re-converged
        strategy ejected them), the strongest dirty signal.
    dirty_marked:
        Pool items whose collision components were marked dirty by this
        batch (the re-peel workload it queued).
    pending:
        Dirty items still awaiting a re-peel after this call (zero in
        ``"sync"`` mode).
    n_clusters:
        Dominant clusters after the ingest step.
    entries_computed:
        Affinity entries the absorb + dirty classification cost.
    wall_seconds:
        Wall-clock time of the synchronous part of the call.
    """

    n_points: int
    absorbed: int
    still_infective: int
    dirty_marked: int
    pending: int
    n_clusters: int
    entries_computed: int
    wall_seconds: float


def _same_cluster(a: Cluster, b: Cluster) -> bool:
    """Whether two clusters carry an identical converged strategy."""
    return (
        a.label == b.label
        and a.seed == b.seed
        and a.density == b.density
        and np.array_equal(a.members, b.members)
        and np.array_equal(a.weights, b.weights)
    )


class IngestService:
    """Accept point batches, maintain a live corpus, publish deltas.

    Parameters
    ----------
    stream:
        The :class:`~repro.streaming.online.StreamingALID` holding the
        live corpus.  May be freshly constructed (the first batch
        bootstraps it) or already fitted.
    repeel:
        ``"background"`` (default) re-peels dirty collision regions on
        a worker thread, off the ingest path; ``"sync"`` re-peels
        inside :meth:`ingest` before it returns (deterministic, used by
        tests and the CLI); ``"manual"`` only queues — call
        :meth:`repeel_now` yourself.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` for the
        ingest counters; a private ``component="ingest"`` registry is
        created when omitted (exposed as :attr:`metrics_registry`).
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder`; when set,
        every :meth:`ingest` batch and every publish records a span on
        the ingest lane.

    All stream access is serialized under one lock, so ingest, re-peel
    and publishing never interleave mid-mutation; :meth:`flush` waits
    for the background queue to drain before a deterministic publish.

    Example
    -------
    >>> from repro import ALIDConfig, make_synthetic_mixture
    >>> from repro.serve.ingest import IngestService
    >>> from repro.streaming import StreamingALID
    >>> ds = make_synthetic_mixture(n=400, regime="bounded", bound=200,
    ...                             n_clusters=5, dim=20, seed=0)
    >>> svc = IngestService(StreamingALID(ALIDConfig(delta=100, seed=0)),
    ...                     repeel="sync")
    >>> report = svc.ingest(ds.data[:200])
    >>> report.n_points
    200
    >>> svc.close()
    """

    def __init__(
        self,
        stream: StreamingALID,
        *,
        repeel: str = "background",
        registry: MetricsRegistry | None = None,
        tracer=None,
    ):
        if repeel not in REPEEL_MODES:
            raise ValidationError(
                f"repeel must be one of {REPEEL_MODES}, got {repeel!r}"
            )
        self._stream = stream
        self.metrics_registry = (
            MetricsRegistry(component="ingest")
            if registry is None
            else registry
        )
        self.tracer = tracer
        reg = self.metrics_registry
        self._m_ingested = reg.counter(
            "ingest_points_total", "Points ingested"
        )
        self._m_absorbed = reg.counter(
            "ingest_absorbed_total",
            "Points absorbed into existing clusters on the ingest path",
        )
        self._m_repeel_runs = reg.counter(
            "ingest_repeel_runs_total", "Targeted re-peel runs"
        )
        self._m_repeel_discoveries = reg.counter(
            "ingest_repeel_discoveries_total",
            "Clusters grown by re-peel runs",
        )
        self._m_publishes = reg.counter(
            "ingest_publishes_total", "Base + delta publishes"
        )
        self._repeel_mode = repeel
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._dirty: set[int] = set()
        self._repeeling = False
        self._closed = False
        # Publishing bookkeeping: the delta chain tip and the state it
        # covers.  None until publish_base() anchors the chain.
        self._published_sha: str | None = None
        self._published_n = 0
        self._published_clusters: dict[int, Cluster] = {}
        self._sequence = 0
        # Deterministic trace ids: ingest batches and publish rounds.
        self._ingest_seq = 0
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None
        if repeel == "background":
            self._thread = threading.Thread(
                target=self._repeel_loop,
                name="repro-ingest-repeel",
                daemon=True,
            )
            self._thread.start()

    # ------------------------------------------------------------------
    @property
    def stream(self) -> StreamingALID:
        """The underlying live stream (shared, lock before mutating)."""
        return self._stream

    @property
    def pending(self) -> int:
        """Dirty items currently awaiting a re-peel."""
        with self._lock:
            return len(self._dirty)

    # ------------------------------------------------------------------
    def ingest(self, points: np.ndarray) -> IngestReport:
        """Absorb one batch; mark failed absorptions' regions dirty.

        The synchronous part runs only the absorb step
        (``partial_fit(discover=False)``): arrivals that are infective
        against an existing cluster join it through that cluster's LID
        re-convergence.  Everything left unassigned dirties its whole
        LSH collision component, and the dirty set is re-peeled
        according to the service's ``repeel`` mode.
        """
        if self._closed:
            raise ValidationError("ingest service is closed")
        tracer = self.tracer
        t_trace = tracer.now() if tracer is not None else 0.0
        with timed() as clock:
            with self._lock:
                stream = self._stream
                before_entries = stream.result().counters.entries_computed
                n_before = stream.n_items
                stream.partial_fit(points, discover=False)
                new = np.arange(n_before, stream.n_items, dtype=np.intp)
                leftover = new[~stream.assigned_mask[new]]
                absorbed = int(new.size - leftover.size)
                still_infective = 0
                dirty_marked = 0
                if leftover.size:
                    # Absorption failed for these arrivals; classify how
                    # (near-miss noise vs ejected-though-infective) and
                    # dirty their reachable collision regions.
                    margins = max_item_payoffs(
                        stream._make_oracle(), leftover, stream.clusters
                    )
                    still_infective = int(
                        (margins > stream.config.tol).sum()
                    )
                    components = stream.collision_components()
                    hit = np.unique(components[leftover])
                    hit = hit[hit >= 0]
                    if hit.size:
                        region = np.flatnonzero(
                            np.isin(components, hit)
                        )
                    else:
                        region = leftover
                    fresh = set(int(i) for i in region) - self._dirty
                    dirty_marked = len(fresh)
                    self._dirty.update(fresh)
                after_entries = stream.result().counters.entries_computed
                self._m_ingested.inc(int(new.size))
                self._m_absorbed.inc(absorbed)
                n_clusters = stream.n_clusters
            if self._repeel_mode == "sync":
                self.repeel_now()
                n_clusters = self._stream.n_clusters
            elif self._repeel_mode == "background" and dirty_marked:
                self._wake.set()
            pending = self.pending
        if tracer is not None:
            self._ingest_seq += 1
            tracer.record(
                "ingest",
                t_trace,
                tracer.now(),
                trace_id=f"ing-{self._ingest_seq}",
                tid=TID_INGEST,
                points=int(new.size),
                absorbed=absorbed,
                dirty_marked=dirty_marked,
            )
        return IngestReport(
            n_points=int(new.size),
            absorbed=absorbed,
            still_infective=still_infective,
            dirty_marked=dirty_marked,
            pending=pending,
            n_clusters=n_clusters,
            entries_computed=int(after_entries - before_entries),
            wall_seconds=clock[0],
        )

    # ------------------------------------------------------------------
    # re-peeling
    # ------------------------------------------------------------------
    def repeel_now(self) -> int:
        """Re-peel every currently dirty region; return clusters grown."""
        with self._lock:
            grown = self._repeel_locked()
            self._idle.notify_all()
        return grown

    def _repeel_locked(self) -> int:
        """Drain the dirty set through targeted discovery (lock held)."""
        if not self._dirty:
            return 0
        dirty = np.fromiter(self._dirty, dtype=np.intp, count=len(self._dirty))
        self._dirty.clear()
        before = self._stream.n_clusters
        self._repeeling = True
        try:
            self._stream.discover(np.sort(dirty))
        finally:
            self._repeeling = False
        grown = self._stream.n_clusters - before
        self._m_repeel_runs.inc()
        self._m_repeel_discoveries.inc(grown)
        return grown

    def _repeel_loop(self) -> None:
        while True:
            self._wake.wait()
            self._wake.clear()
            if self._closed:
                return
            with self._lock:
                self._repeel_locked()
                self._idle.notify_all()

    def flush(self, timeout: float | None = None) -> bool:
        """Wait until no dirty work is queued or running; True on drain."""
        if self._repeel_mode == "background":
            self._wake.set()
        with self._idle:
            return self._idle.wait_for(
                lambda: not self._dirty and not self._repeeling,
                timeout=timeout,
            )

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish_base(self, path) -> DetectionSnapshot:
        """Write the full current state; (re-)anchor the delta chain.

        Returns the saved :class:`DetectionSnapshot`; subsequent
        :meth:`publish_delta` calls record changes against it (and then
        against each other) starting at sequence 0.
        """
        tracer = self.tracer
        t_trace = tracer.now() if tracer is not None else 0.0
        with self._lock:
            snapshot = self._stream.to_snapshot(
                meta={"published_by": "IngestService"}
            )
            snapshot.save(path)
            self._published_sha = snapshot.manifest_sha256
            self._published_n = snapshot.n_items
            self._published_clusters = {
                int(c.label): c for c in snapshot.clusters
            }
            self._sequence = 0
        self._m_publishes.inc()
        if tracer is not None:
            tracer.record(
                "publish_base",
                t_trace,
                tracer.now(),
                trace_id="pub-base",
                tid=TID_INGEST,
                n_items=snapshot.n_items,
            )
        return snapshot

    def publish_delta(self, path) -> SnapshotDelta:
        """Write what changed since the last publish as a delta.

        Appended rows ride with their per-table LSH bucket keys (the
        parent's tables extend without re-hashing); clusters whose
        strategy changed are replaced, vanished labels retired, new
        labels upserted.  An idle corpus publishes a valid empty delta.

        Raises
        ------
        ValidationError
            When no base snapshot was published yet (a chain needs its
            anchor), or the stream shrank (never happens through this
            service's own API).
        """
        tracer = self.tracer
        t_trace = tracer.now() if tracer is not None else 0.0
        with self._lock:
            if self._published_sha is None:
                raise ValidationError(
                    "no base snapshot published; call publish_base() "
                    "before publishing deltas"
                )
            stream = self._stream
            n_now = stream.n_items
            if n_now < self._published_n:
                raise ValidationError(
                    f"stream shrank below the published state "
                    f"({n_now} < {self._published_n})"
                )
            appended = np.ascontiguousarray(
                np.asarray(stream.data)[self._published_n:],
                dtype=np.float64,
            )
            appended_keys = stream.export_appended_keys(self._published_n)
            current = {int(c.label): c for c in stream.clusters}
            removed = [
                label
                for label in self._published_clusters
                if label not in current
                or not _same_cluster(
                    self._published_clusters[label], current[label]
                )
            ]
            upserts = [
                cluster
                for label, cluster in current.items()
                if label not in self._published_clusters
                or not _same_cluster(
                    self._published_clusters[label], cluster
                )
            ]
            delta = SnapshotDelta(
                parent_sha256=self._published_sha,
                parent_n_items=self._published_n,
                sequence=self._sequence,
                appended_data=appended,
                appended_item_keys=appended_keys,
                removed_labels=np.asarray(sorted(removed), dtype=np.int64),
                clusters=sorted(upserts, key=lambda c: int(c.label)),
                meta={
                    "published_by": "IngestService",
                    "stream_batches": stream._batches,
                },
            )
            delta.save(path)
            self._published_sha = delta.manifest_sha256
            self._published_n = n_now
            self._published_clusters = current
            self._sequence += 1
            sequence = self._sequence
        self._m_publishes.inc()
        if tracer is not None:
            tracer.record(
                "publish_delta",
                t_trace,
                tracer.now(),
                trace_id=f"pub-{sequence - 1}",
                tid=TID_INGEST,
                appended=int(appended.shape[0]),
                removed=len(removed),
                upserts=len(upserts),
            )
        return delta

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Ingest-side counters (lifetime scope, registry-backed)."""
        with self._lock:
            return {
                "n_items": self._stream.n_items,
                "n_clusters": self._stream.n_clusters,
                "ingested": self._m_ingested.value,
                "absorbed": self._m_absorbed.value,
                "pending": len(self._dirty),
                "repeel_runs": self._m_repeel_runs.value,
                "repeel_discoveries": self._m_repeel_discoveries.value,
                "published_sequence": self._sequence,
                "published_n_items": self._published_n,
                "chain_tip": self._published_sha,
            }

    def close(self) -> None:
        """Stop the background re-peel thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "IngestService":
        """Context-manager entry (the service is already running)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: stop the re-peel thread."""
        self.close()
