"""IngestService: streaming ingest wired into the serve tier.

The live-corpus half of the serving story (the paper's §6 future work
meets its §4.6 server database): a :class:`~repro.streaming.online.
StreamingALID` absorbs arriving point batches on the write path, and
what changed is published as incremental
:class:`~repro.serve.snapshot.SnapshotDelta` artifacts the serving
fronts (:class:`~repro.serve.service.ClusterService`,
:class:`~repro.serve.sharded.ShardedClusterService`) hot-apply — reload
cost scales with the churn, not with the corpus.

Lifecycle of one batch::

    ingest(points)
      |-- StreamingALID.partial_fit(discover=False)
      |     absorb: arriving items infective against an existing
      |     cluster (the shared Theorem 1 criterion of
      |     repro.core.infectivity) trigger that cluster's LID
      |     re-convergence; everything else stays in the pool
      |-- dirty-mark: items absorption left behind dirty their whole
      |     LSH collision component (the reachability unit of a seeded
      |     Alg. 2 run), queued for re-peeling
      '-- background re-peel: a worker thread re-runs discovery over
            the dirty regions only — new dominant clusters grow off the
            ingest path, the way Shi et al.'s parallel correlation
            clustering re-clusters affected subgraphs, not the graph

    publish_base(dir)    a full DetectionSnapshot; the chain anchor
    publish_delta(dir)   appended rows + LSH insert state + replaced/
                         retired clusters + tombstoned rows since the
                         last publish

Publishing diffs the stream's cluster list against what was last
published: a cluster whose support, weights, density or seed changed is
*replaced* (its label lands in ``removed_labels`` and the refreshed
cluster in the upserts), a vanished label is retired, a new label is a
plain upsert.  Rows tombstoned through :meth:`IngestService.retire`
ride as the delta's ``retired_rows`` (schema v2), so expiring items or
whole clusters no longer forces republishing a base.  Applying the
delta chain is therefore exact: the resulting snapshot holds
byte-identical rows, bucket keys and cluster strategies to a full
snapshot written from the same stream state (pinned by
``tests/test_serve_delta.py``).

Durability
----------
With a :class:`~repro.serve.wal.WriteAheadLog` attached (``wal=``),
every ingest batch and retirement is journaled **before** the stream
mutates and every publish commits a marker **after** its artifact
saved.  :meth:`IngestService.recover` rebuilds a crashed service by
truncating the journal's torn tail and replaying the committed prefix
through a fresh stream — byte-identical clusters, LSH state and
``entries_computed`` accounting to a run that never crashed (pinned by
``tests/test_serve_durability.py``).
"""

from __future__ import annotations

import dataclasses
import pathlib
import threading

import numpy as np

from repro.core.config import ALIDConfig
from repro.core.infectivity import max_item_payoffs
from repro.core.results import Cluster, DetectionResult
from repro.exceptions import ValidationError, WALError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TID_INGEST
from repro.serve.snapshot import (
    MANIFEST_NAME,
    DetectionSnapshot,
    SnapshotDelta,
    _sha256_of,
)
from repro.serve.wal import WALRecord, WriteAheadLog
from repro.streaming.online import StreamingALID
from repro.utils.timing import timed
from repro.utils.validation import check_data_matrix, check_index_array

__all__ = ["IngestReport", "IngestService", "REPEEL_MODES"]

REPEEL_MODES = ("background", "sync", "manual")


@dataclasses.dataclass
class IngestReport:
    """Outcome of one :meth:`IngestService.ingest` call.

    Attributes
    ----------
    n_points:
        Points in the batch.
    absorbed:
        Points that joined an existing dominant cluster on the ingest
        path (Theorem 1 infective, survived the re-convergence).
    still_infective:
        Unabsorbed points whose best payoff margin still exceeds the
        tolerance — absorption *failed* for them (the re-converged
        strategy ejected them), the strongest dirty signal.
    dirty_marked:
        Pool items whose collision components were marked dirty by this
        batch (the re-peel workload it queued).
    pending:
        Dirty items still awaiting a re-peel after this call (zero in
        ``"sync"`` mode).
    n_clusters:
        Dominant clusters after the ingest step.
    entries_computed:
        Affinity entries the absorb + dirty classification cost.
    wall_seconds:
        Wall-clock time of the synchronous part of the call.
    """

    n_points: int
    absorbed: int
    still_infective: int
    dirty_marked: int
    pending: int
    n_clusters: int
    entries_computed: int
    wall_seconds: float


def _same_cluster(a: Cluster, b: Cluster) -> bool:
    """Whether two clusters carry an identical converged strategy."""
    return (
        a.label == b.label
        and a.seed == b.seed
        and a.density == b.density
        and np.array_equal(a.members, b.members)
        and np.array_equal(a.weights, b.weights)
    )


class IngestService:
    """Accept point batches, maintain a live corpus, publish deltas.

    Parameters
    ----------
    stream:
        The :class:`~repro.streaming.online.StreamingALID` holding the
        live corpus.  May be freshly constructed (the first batch
        bootstraps it) or already fitted.
    repeel:
        ``"background"`` (default) re-peels dirty collision regions on
        a worker thread, off the ingest path; ``"sync"`` re-peels
        inside :meth:`ingest` before it returns (deterministic, used by
        tests and the CLI); ``"manual"`` only queues — call
        :meth:`repeel_now` yourself.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` for the
        ingest counters; a private ``component="ingest"`` registry is
        created when omitted (exposed as :attr:`metrics_registry`).
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder`; when set,
        every :meth:`ingest` batch and every publish records a span on
        the ingest lane.
    wal:
        Optional :class:`~repro.serve.wal.WriteAheadLog` (or a path to
        create one at) journaling every mutation write-ahead.  Only an
        *empty* journal may be attached to an *empty* stream — a
        journal that already holds records belongs to a previous
        incarnation and must go through :meth:`recover` instead, and a
        pre-populated stream would leave the journal blind to the
        state it is supposed to replay.

    All stream access is serialized under one lock, so ingest, re-peel
    and publishing never interleave mid-mutation; :meth:`flush` waits
    for the background queue to drain before a deterministic publish.

    Example
    -------
    >>> from repro import ALIDConfig, make_synthetic_mixture
    >>> from repro.serve.ingest import IngestService
    >>> from repro.streaming import StreamingALID
    >>> ds = make_synthetic_mixture(n=400, regime="bounded", bound=200,
    ...                             n_clusters=5, dim=20, seed=0)
    >>> svc = IngestService(StreamingALID(ALIDConfig(delta=100, seed=0)),
    ...                     repeel="sync")
    >>> report = svc.ingest(ds.data[:200])
    >>> report.n_points
    200
    >>> svc.close()
    """

    def __init__(
        self,
        stream: StreamingALID,
        *,
        repeel: str = "background",
        registry: MetricsRegistry | None = None,
        tracer=None,
        wal: WriteAheadLog | str | pathlib.Path | None = None,
    ):
        if repeel not in REPEEL_MODES:
            raise ValidationError(
                f"repeel must be one of {REPEEL_MODES}, got {repeel!r}"
            )
        self._stream = stream
        self.metrics_registry = (
            MetricsRegistry(component="ingest")
            if registry is None
            else registry
        )
        self.tracer = tracer
        reg = self.metrics_registry
        self._m_ingested = reg.counter(
            "ingest_points_total", "Points ingested"
        )
        self._m_absorbed = reg.counter(
            "ingest_absorbed_total",
            "Points absorbed into existing clusters on the ingest path",
        )
        self._m_retired = reg.counter(
            "ingest_retired_total", "Rows tombstoned via retire()"
        )
        self._m_repeel_runs = reg.counter(
            "ingest_repeel_runs_total", "Targeted re-peel runs"
        )
        self._m_repeel_discoveries = reg.counter(
            "ingest_repeel_discoveries_total",
            "Clusters grown by re-peel runs",
        )
        self._m_publishes = reg.counter(
            "ingest_publishes_total", "Base + delta publishes"
        )
        self._m_wal_records = reg.counter(
            "ingest_wal_records_total",
            "Records journaled to the write-ahead log",
        )
        self._m_recoveries = reg.counter(
            "ingest_recoveries_total",
            "Crash recoveries replayed from the write-ahead log",
        )
        self._repeel_mode = repeel
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._dirty: set[int] = set()
        self._repeeling = False
        self._closed = False
        # Publishing bookkeeping: the delta chain tip and the state it
        # covers.  None until publish_base() anchors the chain.
        self._published_sha: str | None = None
        self._published_n = 0
        self._published_clusters: dict[int, Cluster] = {}
        self._published_retired = np.zeros(0, dtype=np.int64)
        self._sequence = 0
        # Deterministic trace ids: ingest batches and publish rounds.
        self._ingest_seq = 0
        # Durability: journal attached (or None), and whether the
        # service is currently replaying that journal — replayed
        # operations must not re-journal themselves.
        self._wal: WriteAheadLog | None = None
        self._replaying = False
        self.recovery_info: dict | None = None
        if wal is not None:
            self._attach_wal(wal)
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None
        if repeel == "background":
            self._start_repeel_thread()

    def _start_repeel_thread(self) -> None:
        """Spawn the background re-peel worker (mode switch helper)."""
        self._thread = threading.Thread(
            target=self._repeel_loop,
            name="repro-ingest-repeel",
            daemon=True,
        )
        self._thread.start()

    def _attach_wal(self, wal: WriteAheadLog | str | pathlib.Path) -> None:
        """Adopt an empty journal and write its ``begin`` record."""
        log = wal if isinstance(wal, WriteAheadLog) else WriteAheadLog(wal)
        if log.n_records:
            raise ValidationError(
                f"{log.path} already holds {log.n_records} record(s); "
                f"a used journal belongs to a previous incarnation — "
                f"rebuild it via IngestService.recover() instead"
            )
        if self._stream.n_items:
            raise ValidationError(
                "cannot attach a fresh WAL to a stream that already "
                "holds data; the journal must cover every mutation "
                "from the first batch"
            )
        log.append(
            "begin",
            meta={"config": dataclasses.asdict(self._stream.config)},
        )
        self._m_wal_records.inc()
        self._wal = log

    def _journal(self, kind: str, *, meta: dict | None = None,
                 arrays: dict[str, np.ndarray] | None = None) -> None:
        """Append one record unless no WAL is attached or replaying."""
        if self._wal is None or self._replaying:
            return
        self._wal.append(kind, meta=meta, arrays=arrays)
        self._m_wal_records.inc()

    # ------------------------------------------------------------------
    @property
    def stream(self) -> StreamingALID:
        """The underlying live stream (shared, lock before mutating)."""
        return self._stream

    @property
    def pending(self) -> int:
        """Dirty items currently awaiting a re-peel."""
        with self._lock:
            return len(self._dirty)

    # ------------------------------------------------------------------
    def ingest(self, points: np.ndarray) -> IngestReport:
        """Absorb one batch; mark failed absorptions' regions dirty.

        The synchronous part runs only the absorb step
        (``partial_fit(discover=False)``): arrivals that are infective
        against an existing cluster join it through that cluster's LID
        re-convergence.  Everything left unassigned dirties its whole
        LSH collision component, and the dirty set is re-peeled
        according to the service's ``repeel`` mode.
        """
        if self._closed:
            raise ValidationError("ingest service is closed")
        tracer = self.tracer
        t_trace = tracer.now() if tracer is not None else 0.0
        with timed() as clock:
            with self._lock:
                stream = self._stream
                # Validate before journaling: a record that would blow
                # up the stream would poison every future replay.
                points = check_data_matrix(points, name="points")
                if stream.n_items and points.shape[1] != stream.data.shape[1]:
                    raise ValidationError(
                        f"batch has dim {points.shape[1]}, stream "
                        f"expects {stream.data.shape[1]}"
                    )
                self._journal("ingest", arrays={"points": points})
                before_entries = stream.result().counters.entries_computed
                n_before = stream.n_items
                stream.partial_fit(points, discover=False)
                new = np.arange(n_before, stream.n_items, dtype=np.intp)
                leftover = new[~stream.assigned_mask[new]]
                absorbed = int(new.size - leftover.size)
                still_infective = 0
                dirty_marked = 0
                if leftover.size:
                    # Absorption failed for these arrivals; classify how
                    # (near-miss noise vs ejected-though-infective) and
                    # dirty their reachable collision regions.
                    margins = max_item_payoffs(
                        stream._make_oracle(), leftover, stream.clusters
                    )
                    still_infective = int(
                        (margins > stream.config.tol).sum()
                    )
                    components = stream.collision_components()
                    hit = np.unique(components[leftover])
                    hit = hit[hit >= 0]
                    if hit.size:
                        region = np.flatnonzero(
                            np.isin(components, hit)
                        )
                    else:
                        region = leftover
                    fresh = set(int(i) for i in region) - self._dirty
                    dirty_marked = len(fresh)
                    self._dirty.update(fresh)
                after_entries = stream.result().counters.entries_computed
                self._m_ingested.inc(int(new.size))
                self._m_absorbed.inc(absorbed)
                n_clusters = stream.n_clusters
            if self._repeel_mode == "sync":
                self.repeel_now()
                n_clusters = self._stream.n_clusters
            elif self._repeel_mode == "background" and dirty_marked:
                self._wake.set()
            pending = self.pending
        if tracer is not None:
            self._ingest_seq += 1
            tracer.record(
                "ingest",
                t_trace,
                tracer.now(),
                trace_id=f"ing-{self._ingest_seq}",
                tid=TID_INGEST,
                points=int(new.size),
                absorbed=absorbed,
                dirty_marked=dirty_marked,
            )
        return IngestReport(
            n_points=int(new.size),
            absorbed=absorbed,
            still_infective=still_infective,
            dirty_marked=dirty_marked,
            pending=pending,
            n_clusters=n_clusters,
            entries_computed=int(after_entries - before_entries),
            wall_seconds=clock[0],
        )

    # ------------------------------------------------------------------
    def retire(self, indices: np.ndarray) -> DetectionResult:
        """Tombstone rows (expiry / deletion); journaled write-ahead.

        Delegates to :meth:`~repro.streaming.online.StreamingALID.
        retire`: the rows vanish from every future query, clusters
        losing members re-converge or dissolve.  The next
        :meth:`publish_delta` ships the tombstones as its
        ``retired_rows`` plus the cluster churn they caused — no base
        republish.  Returns the stream's post-retirement detection
        result.
        """
        if self._closed:
            raise ValidationError("ingest service is closed")
        tracer = self.tracer
        t_trace = tracer.now() if tracer is not None else 0.0
        with self._lock:
            stream = self._stream
            if stream.n_items == 0:
                raise ValidationError("stream has not seen any data yet")
            indices = check_index_array(
                indices, stream.n_items, name="indices"
            )
            canonical = np.unique(np.asarray(indices, dtype=np.int64))
            self._journal("retire", arrays={"indices": canonical})
            result = stream.retire(canonical)
            self._m_retired.inc(int(canonical.size))
        if tracer is not None:
            self._ingest_seq += 1
            tracer.record(
                "retire",
                t_trace,
                tracer.now(),
                trace_id=f"ret-{self._ingest_seq}",
                tid=TID_INGEST,
                rows=int(canonical.size),
            )
        return result

    # ------------------------------------------------------------------
    # re-peeling
    # ------------------------------------------------------------------
    def repeel_now(self) -> int:
        """Re-peel every currently dirty region; return clusters grown."""
        with self._lock:
            grown = self._repeel_locked()
            self._idle.notify_all()
        return grown

    def _repeel_locked(self) -> int:
        """Drain the dirty set through targeted discovery (lock held)."""
        if not self._dirty:
            return 0
        dirty = np.fromiter(self._dirty, dtype=np.intp, count=len(self._dirty))
        self._dirty.clear()
        before = self._stream.n_clusters
        self._repeeling = True
        try:
            self._stream.discover(np.sort(dirty))
        finally:
            self._repeeling = False
        grown = self._stream.n_clusters - before
        self._m_repeel_runs.inc()
        self._m_repeel_discoveries.inc(grown)
        return grown

    def _repeel_loop(self) -> None:
        while True:
            self._wake.wait()
            self._wake.clear()
            if self._closed:
                return
            with self._lock:
                self._repeel_locked()
                self._idle.notify_all()

    def flush(self, timeout: float | None = None) -> bool:
        """Wait until no dirty work is queued or running; True on drain."""
        if self._repeel_mode == "background":
            self._wake.set()
        with self._idle:
            return self._idle.wait_for(
                lambda: not self._dirty and not self._repeeling,
                timeout=timeout,
            )

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish_base(self, path) -> DetectionSnapshot:
        """Write the full current state; (re-)anchor the delta chain.

        Returns the saved :class:`DetectionSnapshot`; subsequent
        :meth:`publish_delta` calls record changes against it (and then
        against each other) starting at sequence 0.
        """
        tracer = self.tracer
        t_trace = tracer.now() if tracer is not None else 0.0
        with self._lock:
            snapshot = self._stream.to_snapshot(
                meta={"published_by": "IngestService"}
            )
            snapshot.save(path)
            self._published_sha = snapshot.manifest_sha256
            self._published_n = snapshot.n_items
            self._published_clusters = {
                int(c.label): c for c in snapshot.clusters
            }
            self._published_retired = np.flatnonzero(
                self._stream.retired_mask
            ).astype(np.int64)
            self._sequence = 0
            # Commit marker: journaled only after the artifact saved,
            # so a marked publish always exists on disk.
            self._journal(
                "publish_base",
                meta={
                    "sha256": snapshot.manifest_sha256,
                    "n_items": snapshot.n_items,
                    "name": pathlib.Path(path).name,
                },
            )
        self._m_publishes.inc()
        if tracer is not None:
            tracer.record(
                "publish_base",
                t_trace,
                tracer.now(),
                trace_id="pub-base",
                tid=TID_INGEST,
                n_items=snapshot.n_items,
            )
        return snapshot

    def publish_delta(self, path) -> SnapshotDelta:
        """Write what changed since the last publish as a delta.

        Appended rows ride with their per-table LSH bucket keys (the
        parent's tables extend without re-hashing); clusters whose
        strategy changed are replaced, vanished labels retired, new
        labels upserted.  An idle corpus publishes a valid empty delta.

        Raises
        ------
        ValidationError
            When no base snapshot was published yet (a chain needs its
            anchor), or the stream shrank (never happens through this
            service's own API).
        """
        tracer = self.tracer
        t_trace = tracer.now() if tracer is not None else 0.0
        with self._lock:
            if self._published_sha is None:
                raise ValidationError(
                    "no base snapshot published; call publish_base() "
                    "before publishing deltas"
                )
            stream = self._stream
            n_now = stream.n_items
            if n_now < self._published_n:
                raise ValidationError(
                    f"stream shrank below the published state "
                    f"({n_now} < {self._published_n})"
                )
            appended = np.ascontiguousarray(
                np.asarray(stream.data)[self._published_n:],
                dtype=np.float64,
            )
            appended_keys = stream.export_appended_keys(self._published_n)
            current = {int(c.label): c for c in stream.clusters}
            removed = [
                label
                for label in self._published_clusters
                if label not in current
                or not _same_cluster(
                    self._published_clusters[label], current[label]
                )
            ]
            upserts = [
                cluster
                for label, cluster in current.items()
                if label not in self._published_clusters
                or not _same_cluster(
                    self._published_clusters[label], cluster
                )
            ]
            retired_now = np.flatnonzero(stream.retired_mask).astype(
                np.int64
            )
            newly_retired = np.setdiff1d(
                retired_now, self._published_retired
            )
            delta = SnapshotDelta(
                parent_sha256=self._published_sha,
                parent_n_items=self._published_n,
                sequence=self._sequence,
                appended_data=appended,
                appended_item_keys=appended_keys,
                removed_labels=np.asarray(sorted(removed), dtype=np.int64),
                clusters=sorted(upserts, key=lambda c: int(c.label)),
                retired_rows=newly_retired,
                meta={
                    "published_by": "IngestService",
                    "stream_batches": stream._batches,
                },
            )
            delta.save(path)
            self._published_sha = delta.manifest_sha256
            self._published_n = n_now
            self._published_clusters = current
            self._published_retired = retired_now
            self._sequence += 1
            sequence = self._sequence
            self._journal(
                "publish_delta",
                meta={
                    "sha256": delta.manifest_sha256,
                    "n_items": n_now,
                    "sequence": sequence - 1,
                    "name": pathlib.Path(path).name,
                },
            )
        self._m_publishes.inc()
        if tracer is not None:
            tracer.record(
                "publish_delta",
                t_trace,
                tracer.now(),
                trace_id=f"pub-{sequence - 1}",
                tid=TID_INGEST,
                appended=int(appended.shape[0]),
                removed=len(removed),
                upserts=len(upserts),
            )
        return delta

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        wal: WriteAheadLog | str | pathlib.Path,
        chain_dir: str | pathlib.Path | None = None,
        *,
        repeel: str = "sync",
        registry: MetricsRegistry | None = None,
        tracer=None,
    ) -> "IngestService":
        """Rebuild a service from its journal after a crash.

        Truncates the journal's torn tail (the half-written record a
        crash mid-append leaves), then replays the committed prefix —
        every ``ingest`` and ``retire`` record, in order, through a
        fresh stream built from the ``begin`` record's config.  Replay
        runs synchronously, so a journal written by a ``"sync"``-mode
        service recovers **byte-identical** clusters, LSH state and
        ``entries_computed`` accounting to a run that never crashed.

        Publish markers restore the delta-chain bookkeeping; with
        *chain_dir* given, each marker's manifest SHA-256 is verified
        against the named on-disk artifact, so a journal/artifact
        divergence fails recovery instead of forking the chain.  An
        artifact directory *without* its marker (a crash between save
        and marker append) is simply ignored — the next publish
        overwrites it.

        The recovered service adopts the (now clean) journal for
        further appends and records what happened in
        :attr:`recovery_info` (``records_replayed``,
        ``torn_bytes_truncated``, ``publishes_restored``).

        Raises
        ------
        WALError
            Unreadable journal, no leading ``begin`` record, a replay
            record the stream rejects, or a publish marker whose
            artifact is missing or has a different manifest SHA.
        """
        if repeel not in REPEEL_MODES:
            raise ValidationError(
                f"repeel must be one of {REPEEL_MODES}, got {repeel!r}"
            )
        if isinstance(wal, WriteAheadLog):
            wal.close()
            wal_path = wal.path
        else:
            wal_path = pathlib.Path(wal)
        torn = WriteAheadLog.truncate_torn_tail(wal_path)
        log = WriteAheadLog(wal_path)
        records = log.replay()
        if not records or records[0].kind != "begin":
            raise WALError(
                f"{wal_path}: journal does not start with a begin "
                f"record; nothing to recover from"
            )
        try:
            config = ALIDConfig(**records[0].meta["config"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WALError(
                f"{wal_path}: begin record carries an invalid config: "
                f"{exc}"
            ) from exc
        service = cls(
            StreamingALID(config), repeel="sync", registry=registry
        )
        service._m_recoveries.inc()
        publishes = 0
        service._replaying = True
        try:
            for number, record in enumerate(records[1:], start=1):
                if record.kind == "ingest":
                    service.ingest(record.arrays["points"])
                elif record.kind == "retire":
                    service.retire(record.arrays["indices"])
                elif record.kind in ("publish_base", "publish_delta"):
                    service._restore_publish_marker(record, chain_dir)
                    publishes += 1
                else:
                    raise WALError(
                        f"{wal_path}: unexpected {record.kind!r} record "
                        f"at position {number}"
                    )
        except ValidationError as exc:
            if isinstance(exc, WALError):
                raise
            raise WALError(
                f"{wal_path}: replay failed — the journal and the "
                f"stream disagree: {exc}"
            ) from exc
        finally:
            service._replaying = False
        service._wal = log
        service.tracer = tracer
        service.recovery_info = {
            "records_replayed": len(records),
            "torn_bytes_truncated": int(torn),
            "publishes_restored": publishes,
        }
        if repeel != "sync":
            service._repeel_mode = repeel
            if repeel == "background":
                service._start_repeel_thread()
        return service

    def _restore_publish_marker(
        self, record: WALRecord, chain_dir
    ) -> None:
        """Restore chain bookkeeping from one committed publish marker."""
        meta = record.meta
        sha = meta.get("sha256")
        n_items = meta.get("n_items")
        if not isinstance(sha, str) or not isinstance(n_items, int):
            raise WALError(
                f"malformed {record.kind} marker: {meta!r}"
            )
        if n_items != self._stream.n_items:
            raise WALError(
                f"{record.kind} marker covers {n_items} item(s) but "
                f"replay reached {self._stream.n_items} — the journal "
                f"does not match the run that wrote it"
            )
        if chain_dir is not None and meta.get("name"):
            manifest = (
                pathlib.Path(chain_dir) / meta["name"] / MANIFEST_NAME
            )
            if not manifest.is_file():
                raise WALError(
                    f"{record.kind} marker names {meta['name']!r} but "
                    f"{manifest} does not exist — the committed "
                    f"artifact vanished"
                )
            disk_sha = _sha256_of(manifest)
            if disk_sha != sha:
                raise WALError(
                    f"{record.kind} marker pins "
                    f"{meta['name']!r} at {sha[:12]}... but the disk "
                    f"artifact hashes to {disk_sha[:12]}... — the "
                    f"chain diverged from the journal"
                )
        self._published_sha = sha
        self._published_n = n_items
        self._published_clusters = {
            int(c.label): c for c in self._stream.clusters
        }
        self._published_retired = np.flatnonzero(
            self._stream.retired_mask
        ).astype(np.int64)
        if record.kind == "publish_base":
            self._sequence = 0
        else:
            self._sequence = int(meta.get("sequence", self._sequence)) + 1

    # ------------------------------------------------------------------
    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log (None when not journaling)."""
        return self._wal

    def stats(self) -> dict:
        """Ingest-side counters (lifetime scope, registry-backed)."""
        with self._lock:
            return {
                "n_items": self._stream.n_items,
                "n_clusters": self._stream.n_clusters,
                "ingested": self._m_ingested.value,
                "absorbed": self._m_absorbed.value,
                "retired": self._m_retired.value,
                "pending": len(self._dirty),
                "repeel_runs": self._m_repeel_runs.value,
                "repeel_discoveries": self._m_repeel_discoveries.value,
                "published_sequence": self._sequence,
                "published_n_items": self._published_n,
                "chain_tip": self._published_sha,
                "wal_records": self._m_wal_records.value,
                "recoveries": self._m_recoveries.value,
            }

    def close(self) -> None:
        """Stop the re-peel thread, close the journal (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "IngestService":
        """Context-manager entry (the service is already running)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: stop the re-peel thread."""
        self.close()
