"""Asyncio serving front-end with SLO-adaptive micro-batching.

This is the traffic-facing layer of the serve tier: an
:class:`AsyncFrontend` accepts concurrent ``assign`` requests on an
asyncio event loop, admits them through a bounded
:class:`~repro.serve.admission.AdmissionController`, coalesces queued
requests into micro-batches sized against a latency SLO, and executes
each batch on a backing :class:`~repro.serve.client.ClusterHandle`
(single-process or sharded) in a dedicated executor thread.

Batching policy — *continuous batching*, no timers:

- When the executor is free the dispatcher immediately drains whatever
  is queued (eager flush: an idle front-end adds no artificial latency).
- While a batch is running, new arrivals accumulate; the next drain
  takes them together, up to a row cap derived from the SLO:
  ``cap = slo_ms * headroom / ewma_ms_per_row``, clamped to
  ``[min_batch_rows, max_batch_rows]``.  Load therefore *grows* batches
  (amortising per-batch overhead) until batches threaten the latency
  budget, at which point the cap stops them growing further.

Exactness: batching only concatenates query blocks; assignment of each
row is computed by the backing handle exactly as if the row arrived
alone — labels are byte-identical to the synchronous single-process
:class:`~repro.serve.service.ClusterService`, and scores match up to
the documented micro-batch-split roundoff of the shared BLAS reductions
(bit-identical when the batch composition matches).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Sequence

import numpy as np

from ..exceptions import AdmissionError, ValidationError
from ..obs.metrics import (
    MetricsRegistry,
    default_latency_bounds_ms,
    render_merged,
)
from ..obs.trace import TID_BATCH, TID_REQUEST
from .admission import AdmissionController
from .assigner import SHORTLIST_MODES

__all__ = ["AsyncFrontend", "FrontendReply", "run_open_loop"]

#: Fraction of the SLO budgeted for executing one micro-batch.  The
#: remainder absorbs queueing delay (a request may wait for the batch
#: ahead of it) so that end-to-end latency, not just service time,
#: lands under the SLO.
_SLO_HEADROOM = 0.5

#: Smoothing factor for the per-row service-time estimate.
_EWMA_ALPHA = 0.3


@dataclass(frozen=True)
class FrontendReply:
    """Per-request result sliced out of a served micro-batch.

    Attributes:
        labels: Cluster label per query row (``-1`` = unassigned).
        scores: Theorem 1 margin per query row.
        n_candidates: Shortlisted clusters scored per query row.
        batch_rows: Total rows of the micro-batch this request rode in.
        queued_ms: Time from admission to dispatch.
        service_ms: Executor time of the micro-batch (shared by every
            request in it).
        latency_ms: End-to-end time from admission to completion.
        span: Per-request lifecycle breakdown — ``trace_id`` (the
            deterministic ``req-<seq>`` id the front-end's trace spans
            carry), ``queued_ms`` and ``service_ms``.  The two phases
            sum to ``latency_ms`` exactly (same clock, shared
            endpoints), which the soak lane gates as
            ``span_breakdown_exact``.
    """

    labels: np.ndarray
    scores: np.ndarray
    n_candidates: np.ndarray
    batch_rows: int
    queued_ms: float
    service_ms: float
    latency_ms: float
    span: dict | None = None

    @property
    def n_queries(self) -> int:
        """Number of query rows in this request."""
        return int(self.labels.shape[0])


class _Pending:
    """One admitted request waiting for (or riding in) a micro-batch."""

    __slots__ = ("queries", "future", "t_enqueue", "trace_id")

    def __init__(self, queries, future, t_enqueue, trace_id):
        self.queries = queries
        self.future = future
        self.t_enqueue = t_enqueue
        self.trace_id = trace_id


class AsyncFrontend:
    """Admission-controlled asyncio front-end over a ``ClusterHandle``.

    The front-end owns a single-thread executor so batches execute one
    at a time in arrival order; the backing handle never sees
    concurrent calls from this front-end.  All coroutine methods must
    be called from one event loop (the loop is captured on first use).

    Args:
        handle: Any :class:`~repro.serve.client.ClusterHandle` — an
            in-process ``ClusterService`` or a ``ShardedClusterService``.
        slo_ms: Target end-to-end latency; drives the adaptive batch
            cap and the ``slo_violations`` counter.
        max_batch_rows: Hard ceiling on micro-batch size.
        min_batch_rows: Floor for the adaptive cap (the cap never
            starves the dispatcher below this).
        shortlist: Shortlist mode forwarded to ``handle.assign``.
        admission: A pre-configured controller, or ``None`` to build
            one bounded at ``max_queued_rows``.
        max_queued_rows: Bound for the default controller (ignored when
            ``admission`` is given).
        registry: Optional :class:`~repro.obs.metrics.MetricsRegistry`
            for the front-end's counters and per-request latency
            histograms; a private ``component="frontend"`` registry is
            created when omitted and exposed as :attr:`metrics_registry`
            either way.  :meth:`metrics` renders it merged with the
            admission controller's and the backing handle's.
        tracer: Optional :class:`~repro.obs.trace.TraceRecorder`; when
            set, every request records ``queued`` and ``request`` spans
            (deterministic ``req-<seq>`` trace ids from the admission
            sequence) and every micro-batch a ``batch`` span, all on
            the loop's clock — pass the *same* recorder to a sharded
            backing service and its scatter / shard / merge spans land
            on the same time axis.
    """

    def __init__(
        self,
        handle,
        *,
        slo_ms: float = 50.0,
        max_batch_rows: int = 1024,
        min_batch_rows: int = 1,
        shortlist: str = "lsh",
        admission: AdmissionController | None = None,
        max_queued_rows: int = 4096,
        registry: MetricsRegistry | None = None,
        tracer=None,
    ):
        """Validate knobs; the dispatcher starts lazily on first use."""
        if slo_ms <= 0.0:
            raise ValidationError(f"slo_ms must be > 0, got {slo_ms}")
        if max_batch_rows < 1:
            raise ValidationError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}"
            )
        if not 1 <= min_batch_rows <= max_batch_rows:
            raise ValidationError(
                "min_batch_rows must satisfy 1 <= min_batch_rows <= "
                f"max_batch_rows, got {min_batch_rows}"
            )
        if shortlist not in SHORTLIST_MODES:
            raise ValidationError(
                f"unknown shortlist mode {shortlist!r}; "
                f"expected one of {SHORTLIST_MODES}"
            )
        self._handle = handle
        self.slo_ms = float(slo_ms)
        self.max_batch_rows = int(max_batch_rows)
        self.min_batch_rows = int(min_batch_rows)
        self._shortlist = shortlist
        self._admission = admission or AdmissionController(
            max_queued_rows=max_queued_rows, registry=registry
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._task: asyncio.Task | None = None
        self._wake = asyncio.Event()
        self._closed = False
        self._stats_lock = threading.Lock()
        self._ewma_ms_per_row = 0.0
        self._max_batch_seen = 0
        self._request_seq = 0
        self._batch_seq = 0
        self.tracer = tracer
        self.metrics_registry = (
            MetricsRegistry(component="frontend")
            if registry is None
            else registry
        )
        reg = self.metrics_registry
        self._m_requests = reg.counter(
            "frontend_requests_completed_total", "Requests completed"
        )
        self._m_failed = reg.counter(
            "frontend_requests_failed_total", "Requests failed in serving"
        )
        self._m_rows = reg.counter(
            "frontend_rows_completed_total", "Query rows completed"
        )
        self._m_batches = reg.counter(
            "frontend_batches_total", "Micro-batches dispatched"
        )
        self._m_batched_rows = reg.counter(
            "frontend_batched_rows_total", "Rows across all micro-batches"
        )
        self._m_violations = reg.counter(
            "frontend_slo_violations_total",
            "Requests whose end-to-end latency exceeded the SLO",
        )
        self._g_ewma = reg.gauge(
            "frontend_ewma_ms_per_row",
            "EWMA per-row service time driving the adaptive batch cap",
        )
        bounds = default_latency_bounds_ms()
        self._h_latency = reg.histogram(
            "frontend_latency_ms",
            "End-to-end request latency (admission to completion, ms)",
            bounds=bounds,
        )
        self._h_queued = reg.histogram(
            "frontend_queued_ms",
            "Request queueing delay (admission to dispatch, ms)",
            bounds=bounds,
        )
        self._h_service = reg.histogram(
            "frontend_service_ms",
            "Micro-batch executor time (ms, one observation per batch)",
            bounds=bounds,
        )

    @property
    def admission(self) -> AdmissionController:
        """The admission controller guarding this front-end's queue."""
        return self._admission

    # ------------------------------------------------------------------
    # lifecycle

    def _ensure_started(self) -> None:
        """Capture the running loop and start the dispatcher task."""
        if self._closed:
            raise AdmissionError("front-end is closed")
        if self._task is not None:
            return
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-frontend"
        )
        self._task = loop.create_task(self._dispatch_loop())

    async def close(self) -> None:
        """Stop the dispatcher and fail any still-queued requests.

        Idempotent.  The backing handle is *not* closed — the caller
        owns it and may keep serving synchronously or attach a new
        front-end.
        """
        if self._closed:
            return
        self._closed = True
        if self._task is not None:
            self._wake.set()
            await self._task
            self._task = None
        for _, item, _ in self._admission.drain(2**62):
            if not item.future.done():
                item.future.set_exception(
                    AdmissionError("front-end is closed")
                )
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def __aenter__(self) -> "AsyncFrontend":
        """Start the dispatcher eagerly and return ``self``."""
        self._ensure_started()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Close the front-end on context exit."""
        await self.close()

    # ------------------------------------------------------------------
    # request path

    async def assign(self, queries, *, client: str = "default") -> FrontendReply:
        """Admit one request and await its slice of a served micro-batch.

        Raises :class:`~repro.exceptions.AdmissionError` (with a
        ``retry_after`` hint) when the bounded queue is full, and
        propagates :class:`~repro.exceptions.WorkerError` from the
        backing handle when serving fails.
        """
        self._ensure_started()
        block = np.ascontiguousarray(
            np.atleast_2d(np.asarray(queries, dtype=np.float64))
        )
        if block.ndim != 2 or block.shape[0] < 1:
            raise ValidationError(
                f"queries must be a non-empty 2-D array, got shape "
                f"{block.shape}"
            )
        loop = self._loop
        assert loop is not None
        with self._stats_lock:
            self._request_seq += 1
            seq = self._request_seq
        item = _Pending(
            block, loop.create_future(), loop.time(), f"req-{seq}"
        )
        self._admission.offer(client, item, int(block.shape[0]))
        self._wake.set()
        return await item.future

    # ------------------------------------------------------------------
    # dispatcher

    def _target_rows(self) -> int:
        """SLO-derived row cap for the next micro-batch."""
        per_row = self._ewma_ms_per_row
        if per_row <= 0.0:
            return self.max_batch_rows
        cap = int(self.slo_ms * _SLO_HEADROOM / per_row)
        return max(self.min_batch_rows, min(self.max_batch_rows, cap))

    async def _dispatch_loop(self) -> None:
        """Serve micro-batches until closed; eager flush when idle."""
        while True:
            await self._wake.wait()
            self._wake.clear()
            while True:
                batch = self._admission.drain(self._target_rows())
                if not batch:
                    break
                await self._run_batch([item for _, item, _ in batch])
            if self._closed:
                return

    async def _run_batch(self, items: Sequence[_Pending]) -> None:
        """Execute one micro-batch and deliver per-request slices."""
        loop = self._loop
        assert loop is not None and self._pool is not None
        blocks = [item.queries for item in items]
        big = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        rows = int(big.shape[0])
        t_start = loop.time()
        try:
            assignment = await loop.run_in_executor(
                self._pool,
                partial(self._handle.assign, big, shortlist=self._shortlist),
            )
        except Exception as exc:
            t_done = loop.time()
            self._m_failed.inc(len(items))
            tracer = self.tracer
            for item in items:
                if tracer is not None:
                    tracer.record(
                        "request",
                        item.t_enqueue,
                        t_done,
                        trace_id=item.trace_id,
                        tid=TID_REQUEST,
                        error=type(exc).__name__,
                    )
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        t_done = loop.time()
        service_ms = (t_done - t_start) * 1e3
        self._admission.note_drained(rows, t_done - t_start)
        per_row = service_ms / rows
        violations = 0
        offset = 0
        tracer = self.tracer
        with self._stats_lock:
            self._batch_seq += 1
            batch_seq = self._batch_seq
        if tracer is not None:
            tracer.record(
                "batch",
                t_start,
                t_done,
                trace_id=f"batch-{batch_seq}",
                tid=TID_BATCH,
                rows=rows,
                requests=len(items),
            )
        self._h_service.observe(service_ms)
        for item in items:
            n = int(item.queries.shape[0])
            queued_ms = (t_start - item.t_enqueue) * 1e3
            latency_ms = (t_done - item.t_enqueue) * 1e3
            reply = FrontendReply(
                labels=np.array(assignment.labels[offset : offset + n]),
                scores=np.array(assignment.scores[offset : offset + n]),
                n_candidates=np.array(
                    assignment.n_candidates[offset : offset + n]
                ),
                batch_rows=rows,
                queued_ms=queued_ms,
                service_ms=service_ms,
                latency_ms=latency_ms,
                # queued + service == latency exactly: the three share
                # the same clock readings (t_enqueue, t_start, t_done).
                span={
                    "trace_id": item.trace_id,
                    "batch": f"batch-{batch_seq}",
                    "queued_ms": queued_ms,
                    "service_ms": service_ms,
                },
            )
            offset += n
            self._h_queued.observe(queued_ms)
            self._h_latency.observe(latency_ms)
            if tracer is not None:
                tracer.record(
                    "queued",
                    item.t_enqueue,
                    t_start,
                    trace_id=item.trace_id,
                    tid=TID_REQUEST,
                )
                tracer.record(
                    "request",
                    item.t_enqueue,
                    t_done,
                    trace_id=item.trace_id,
                    tid=TID_REQUEST,
                    rows=n,
                    batch=f"batch-{batch_seq}",
                )
            if latency_ms > self.slo_ms:
                violations += 1
            if not item.future.done():
                item.future.set_result(reply)
        self._m_batches.inc()
        self._m_batched_rows.inc(rows)
        self._m_requests.inc(len(items))
        self._m_rows.inc(rows)
        if violations:
            self._m_violations.inc(violations)
        with self._stats_lock:
            if self._ewma_ms_per_row <= 0.0:
                self._ewma_ms_per_row = per_row
            else:
                self._ewma_ms_per_row += _EWMA_ALPHA * (
                    per_row - self._ewma_ms_per_row
                )
            self._max_batch_seen = max(self._max_batch_seen, rows)
            ewma = self._ewma_ms_per_row
        self._g_ewma.set(ewma)

    # ------------------------------------------------------------------
    # introspection

    def stats(self) -> dict:
        """Return front-end counters plus the nested admission stats.

        The counters read the same registry metrics a :meth:`metrics`
        scrape renders — stats and exposition can never disagree.
        """
        batches = self._m_batches.value
        batched_rows = self._m_batched_rows.value
        with self._stats_lock:
            ewma = self._ewma_ms_per_row
            max_seen = self._max_batch_seen
        out = {
            "slo_ms": self.slo_ms,
            "shortlist": self._shortlist,
            "max_batch_rows": self.max_batch_rows,
            "min_batch_rows": self.min_batch_rows,
            "requests_completed": self._m_requests.value,
            "requests_failed": self._m_failed.value,
            "rows_completed": self._m_rows.value,
            "batches": batches,
            "mean_batch_rows": (
                batched_rows / batches if batches else 0.0
            ),
            "max_batch_rows_seen": max_seen,
            "ewma_ms_per_row": ewma,
            "slo_violations": self._m_violations.value,
        }
        out["admission"] = self._admission.stats()
        return out

    async def metrics(self) -> str:
        """One Prometheus-style exposition across the serving stack.

        Merges the front-end's registry with the admission controller's
        and the backing handle's (when it exposes one) via
        :func:`~repro.obs.metrics.render_merged` — a single scrape sees
        request latencies, queue backlog, serving counters and the
        per-shard histograms the workers shipped up.  Runs on the
        executor so a scrape never blocks the event loop on the
        registry locks.
        """
        self._ensure_started()
        loop = self._loop
        assert loop is not None and self._pool is not None
        registries = [
            self.metrics_registry,
            getattr(self._admission, "registry", None),
            getattr(self._handle, "metrics_registry", None),
        ]
        return await loop.run_in_executor(
            self._pool, partial(render_merged, registries)
        )


async def run_open_loop(
    frontend: AsyncFrontend,
    requests: Sequence[np.ndarray],
    arrival_times: Sequence[float],
    *,
    clients: Sequence[str] | None = None,
) -> list[dict[str, Any]]:
    """Replay an open-loop arrival schedule through a front-end.

    Open-loop means arrivals fire at their scheduled offsets (seconds,
    relative to the start of the replay) regardless of completions —
    the arrival process does not slow down when the service lags, which
    is what makes soak throughput comparable across machines.

    Returns one record per request, in schedule order: ``status`` is
    ``"ok"`` (with the :class:`FrontendReply` under ``"reply"``),
    ``"rejected"`` (with the ``retry_after`` hint) or ``"error"``.
    Used by ``benchmarks/bench_soak.py`` and the ``repro serve`` CLI.
    """
    if len(requests) != len(arrival_times):
        raise ValidationError(
            f"requests ({len(requests)}) and arrival_times "
            f"({len(arrival_times)}) must have equal length"
        )
    if clients is not None and len(clients) != len(requests):
        raise ValidationError(
            f"clients ({len(clients)}) must match requests "
            f"({len(requests)})"
        )
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    records: list[dict[str, Any] | None] = [None] * len(requests)

    async def _fire(i: int) -> None:
        delay = arrival_times[i] - (loop.time() - t0)
        if delay > 0.0:
            await asyncio.sleep(delay)
        n_rows = int(np.atleast_2d(requests[i]).shape[0])
        client = clients[i] if clients is not None else "default"
        try:
            reply = await frontend.assign(requests[i], client=client)
        except AdmissionError as exc:
            records[i] = {
                "status": "rejected",
                "n_rows": n_rows,
                "retry_after": exc.retry_after,
            }
        except Exception as exc:  # WorkerError etc: record, don't abort
            records[i] = {
                "status": "error",
                "n_rows": n_rows,
                "error": f"{type(exc).__name__}: {exc}",
            }
        else:
            records[i] = {"status": "ok", "n_rows": n_rows, "reply": reply}

    await asyncio.gather(*(_fire(i) for i in range(len(requests))))
    return [r for r in records if r is not None]
