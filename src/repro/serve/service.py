"""ClusterService: a long-lived assignment front over snapshot artifacts.

The service owns one loaded snapshot + assigner pair and exposes the
operations a serving process needs:

* :meth:`ClusterService.assign` — batch assignment, delegated to the
  current :class:`~repro.serve.assigner.ClusterAssigner`;
* :meth:`ClusterService.reload` — **atomic hot-reload**: a newer
  snapshot is loaded and validated completely off to the side, then
  swapped in with one reference assignment.  In-flight batches finish
  against the snapshot they started with, and a failed load (corrupt
  artifact, future schema) leaves the old snapshot serving — the
  service never degrades to partial state;
* :meth:`ClusterService.stats` — serving counters at two scopes.  The
  top-level counters (queries, batches, coverage, affinity work,
  reloads) are **lifetime** totals: they span the service's whole life
  and survive every hot reload.  The nested ``"snapshot"`` block holds
  the same counters scoped to the **currently served snapshot**: a
  successful :meth:`ClusterService.reload` resets them to zero (a
  failed reload, which keeps the old snapshot serving, resets
  nothing).  Work is accumulated under the service lock from each
  batch's race-free
  :attr:`~repro.serve.assigner.Assignment.entries_computed`, so the
  totals stay exact even when batches run concurrently.

This mirrors the paper's §4.6 deployment shape: fitted state (hash
tables + items) lives in a server database; query-time workers read it
and answer membership questions without ever refitting.
"""

from __future__ import annotations

import pathlib
import threading
import time

import numpy as np

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry, default_latency_bounds_ms
from repro.obs.trace import TID_ROUTER
from repro.serve.assigner import Assignment, ClusterAssigner
from repro.serve.snapshot import DetectionSnapshot, SnapshotDelta

__all__ = ["ClusterService", "SERVING_STATS_SCHEMA"]

#: The single declaration both stats scopes (and both service fronts)
#: derive from: ``(stats key, backing metric, help, flags)``.  Flags:
#: ``"derived"`` — computed from other fields (no backing counter);
#: ``"lifetime"`` — present only at the top-level (lifetime) scope;
#: ``"degraded"`` — emitted only when the caller asks for the degraded
#: fields (both fronts do, so the schemas cannot drift; the
#: single-process service simply never advances them);
#: ``"gauge"`` — current-state value backed by a registry gauge (set at
#: install/reload, identical in both scopes — gauges describe the
#: served snapshot, not an accumulation since some point).  The parity
#: test in ``tests/test_serve_faults.py`` checks the *rendered* dicts;
#: this table is why the check can't silently rot.
SERVING_STATS_SCHEMA = (
    ("batches", "serve_batches_total", "Query batches served", ""),
    ("queries", "serve_queries_total", "Query rows served", ""),
    (
        "assigned",
        "serve_assigned_total",
        "Query rows assigned to a dominant cluster",
        "",
    ),
    ("coverage", None, "assigned / queries (derived)", "derived"),
    (
        "reloads",
        "serve_reloads_total",
        "Successful hot reloads (full or delta)",
        "lifetime",
    ),
    (
        "entries_computed",
        "serve_entries_computed_total",
        "Serve-side affinity entries computed",
        "",
    ),
    (
        "quality_clusters",
        "serve_quality_clusters",
        "Clusters carrying quality annotations in the served snapshot",
        "gauge",
    ),
    (
        "degraded_batches",
        "serve_degraded_batches_total",
        "Batches served with at least one shard missing",
        "degraded",
    ),
    (
        "respawns",
        "serve_respawns_total",
        "Replacement shard workers spawned by heals",
        "degraded",
    ),
    (
        "healed_shards",
        "serve_healed_shards_total",
        "Shards returned to the pool by heals",
        "degraded",
    ),
)


class _ServingCounters:
    """Two-scope serving counters shared by both service fronts.

    Backed by :class:`~repro.obs.metrics.MetricsRegistry` counters —
    the lifetime scope reads the counters directly, the snapshot scope
    is the diff against a checkpoint taken at the last successful hot
    reload (a heal advances counters but never moves the checkpoint:
    the served snapshot did not change).  Both scopes render from
    :data:`SERVING_STATS_SCHEMA`, so :class:`ClusterService` and
    :class:`~repro.serve.sharded.ShardedClusterService` cannot drift on
    the documented stats semantics.

    Instances are not thread-safe on their own — both services mutate
    them under their service lock (the metric objects add their own
    registry lock, which keeps concurrent scrapes consistent).
    """

    __slots__ = (
        "registry",
        "_counters",
        "_gauges",
        "_snapshot_base",
        "_quality_labels",
    )

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = (
            MetricsRegistry(component="serve")
            if registry is None
            else registry
        )
        self._counters = {
            key: self.registry.counter(metric, help)
            for key, metric, help, flags in SERVING_STATS_SCHEMA
            if metric is not None and flags != "gauge"
        }
        self._gauges = {
            key: self.registry.gauge(metric, help)
            for key, metric, help, flags in SERVING_STATS_SCHEMA
            if flags == "gauge"
        }
        self._snapshot_base = {
            key: counter.value for key, counter in self._counters.items()
        }
        self._quality_labels: set[tuple[int, str]] = set()

    def record_batch(
        self,
        n_queries: int,
        assigned: int,
        entries: int,
        *,
        degraded: bool = False,
    ) -> None:
        """Account one served batch (both scopes read the same counters)."""
        self._counters["batches"].inc()
        self._counters["queries"].inc(int(n_queries))
        self._counters["assigned"].inc(int(assigned))
        self._counters["entries_computed"].inc(int(entries))
        if degraded:
            self._counters["degraded_batches"].inc()

    def record_reload(self) -> None:
        """Account a successful hot reload: snapshot scope starts over."""
        self._counters["reloads"].inc()
        self._snapshot_base = {
            key: counter.value for key, counter in self._counters.items()
        }

    def set_quality(
        self, quality: dict[int, dict[str, float]] | None
    ) -> None:
        """Export the served snapshot's quality block as gauges.

        One ``serve_cluster_quality{cluster=..., metric=...}`` gauge
        per (cluster, metric) pair, plus the schema-level
        ``serve_quality_clusters`` count.  Gauges of (cluster, metric)
        pairs from a previously served snapshot that are absent from
        *quality* are reset to 0 — a reload to an unannotated snapshot
        must not keep scraping stale per-cluster scores.
        """
        fresh: set[tuple[int, str]] = set()
        for label, scores in (quality or {}).items():
            for metric, score in scores.items():
                self.registry.gauge(
                    "serve_cluster_quality",
                    "Per-cluster quality score of the served snapshot",
                    cluster=str(int(label)),
                    metric=str(metric),
                ).set(float(score))
                fresh.add((int(label), str(metric)))
        for label, metric in self._quality_labels - fresh:
            self.registry.gauge(
                "serve_cluster_quality",
                "Per-cluster quality score of the served snapshot",
                cluster=str(label),
                metric=metric,
            ).set(0.0)
        self._quality_labels = fresh
        self._gauges["quality_clusters"].set(len(quality or {}))

    def record_heal(self, n_workers: int, n_shards: int) -> None:
        """Account one successful heal (checkpoint stays put).

        ``n_workers`` counts replacement worker processes spawned;
        ``n_shards`` counts shards returned to the serving pool (equal
        today — one worker per shard — but kept distinct so a future
        split-shard planner can heal partially).
        """
        self._counters["respawns"].inc(int(n_workers))
        self._counters["healed_shards"].inc(int(n_shards))

    def _render(self, snapshot_scope: bool, with_degraded: bool) -> dict:
        """Render one scope from :data:`SERVING_STATS_SCHEMA`."""
        values = {
            key: (
                counter.value - self._snapshot_base.get(key, 0)
                if snapshot_scope
                else counter.value
            )
            for key, counter in self._counters.items()
        }
        out: dict = {}
        for key, metric, _help, flags in SERVING_STATS_SCHEMA:
            if flags == "lifetime" and snapshot_scope:
                continue
            if flags == "degraded" and not with_degraded:
                continue
            if flags == "gauge":
                out[key] = self._gauges[key].value
            elif flags == "derived":
                out[key] = (
                    values["assigned"] / values["queries"]
                    if values["queries"]
                    else 0.0
                )
            else:
                out[key] = values[key]
        return out

    def lifetime_dict(self, *, with_degraded: bool = False) -> dict:
        """The top-level (lifetime) stats fields."""
        return self._render(False, with_degraded)

    def snapshot_dict(self, *, with_degraded: bool = False) -> dict:
        """The nested per-snapshot stats block."""
        return self._render(True, with_degraded)


class ClusterService:
    """Serve cluster assignments from a snapshot, with hot reload.

    Parameters
    ----------
    source:
        A snapshot directory path, or an in-memory
        :class:`~repro.serve.snapshot.DetectionSnapshot`.
    mmap:
        When *source* is a path, map the array files read-only instead
        of copying them into memory (identical results, smaller
        residency).
    registry:
        An optional :class:`~repro.obs.metrics.MetricsRegistry` to
        record serving metrics into (counters behind :meth:`stats` plus
        a ``serve_assign_ms`` latency histogram); a private
        ``component="serve"`` registry is created when omitted and
        exposed as :attr:`metrics_registry` either way.
    tracer:
        An optional :class:`~repro.obs.trace.TraceRecorder`; when set,
        every :meth:`assign` records an ``assign`` span on the router
        lane with a deterministic ``svc-<seq>`` trace id.

    Example
    -------
    >>> from repro import ALID, ALIDConfig, make_synthetic_mixture
    >>> from repro.serve import ClusterService, DetectionSnapshot
    >>> ds = make_synthetic_mixture(n=300, regime="bounded", seed=0)
    >>> detector = ALID(ALIDConfig(delta=200, seed=0))
    >>> snap = DetectionSnapshot.from_result(detector, detector.fit(ds.data))
    >>> service = ClusterService(snap)
    >>> service.assign(ds.data[:8]).n_queries
    8
    """

    def __init__(
        self,
        source,
        *,
        mmap: bool = False,
        registry: MetricsRegistry | None = None,
        tracer=None,
    ):
        self._lock = threading.Lock()
        self._counters = _ServingCounters(registry)
        self.metrics_registry = self._counters.registry
        self.tracer = tracer
        self._assign_ms = self.metrics_registry.histogram(
            "serve_assign_ms",
            "Single-service batch assign latency (ms)",
            bounds=default_latency_bounds_ms(),
        )
        self._assign_seq = 0
        self._source = None
        self._closed = False
        self._snapshot: DetectionSnapshot | None = None
        self._assigner: ClusterAssigner | None = None
        self._install(source, mmap)

    # ------------------------------------------------------------------
    def _install(self, source, mmap: bool) -> None:
        """Load + validate a snapshot fully, then swap it in atomically."""
        if isinstance(source, DetectionSnapshot):
            snapshot = source
            described = "<in-memory>"
        else:
            snapshot = DetectionSnapshot.load(source, mmap=mmap)
            described = str(pathlib.Path(source))
        # Everything heavy (checksums, CSR rebuild, ownership map)
        # happens above; the swap below is one tuple of reference
        # assignments under the lock.
        assigner = ClusterAssigner(snapshot)
        with self._lock:
            self._snapshot = snapshot
            self._assigner = assigner
            self._source = described
            self._counters.set_quality(snapshot.quality)

    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> DetectionSnapshot:
        """The currently served snapshot."""
        return self._snapshot

    @property
    def n_clusters(self) -> int:
        """Number of assignable clusters in the current snapshot."""
        return self._assigner.n_clusters

    def assign(
        self, queries: np.ndarray, *, shortlist: str = "lsh"
    ) -> Assignment:
        """Assign a query batch against the current snapshot.

        The assigner reference is captured once, so a concurrent
        :meth:`reload` never switches snapshots mid-batch.
        """
        assigner = self._assigner
        if assigner is None:
            raise ValidationError("service is closed")
        t_start = time.monotonic()
        result = assigner.assign(queries, shortlist=shortlist)
        t_done = time.monotonic()
        with self._lock:
            self._counters.record_batch(
                result.n_queries,
                int(result.assigned_mask.sum()),
                int(result.entries_computed),
            )
            self._assign_seq += 1
            seq = self._assign_seq
        self._assign_ms.observe((t_done - t_start) * 1e3)
        if self.tracer is not None:
            self.tracer.record(
                "assign",
                t_start,
                t_done,
                trace_id=f"svc-{seq}",
                tid=TID_ROUTER,
                rows=int(result.n_queries),
            )
        return result

    def reload(self, source, *, mmap: bool = False) -> None:
        """Hot-swap to a newer snapshot.

        The new artifact is loaded and checksum-validated completely
        before the swap; any
        :class:`~repro.exceptions.SnapshotError` propagates and the
        previous snapshot keeps serving untouched (including its
        per-snapshot counters).  On success the lifetime counters carry
        on unchanged while the per-snapshot counters of :meth:`stats`
        restart at zero for the new artifact.
        """
        if self._closed:
            raise ValidationError("service is closed")
        self._install(source, mmap)
        with self._lock:
            self._counters.record_reload()

    def apply_delta(self, source, *, mmap: bool = False) -> None:
        """Hot-apply an incremental :class:`SnapshotDelta`.

        *source* is a delta directory path or a loaded
        :class:`~repro.serve.snapshot.SnapshotDelta`.  The delta is
        loaded, checksum-verified and applied to the **currently
        served** snapshot entirely off to the side —
        :meth:`SnapshotDelta.apply` refuses a delta whose recorded
        parent manifest SHA does not match the serving snapshot's, so
        chains cannot be applied out of order — and the result swaps in
        through the same atomic path as :meth:`reload`.  Any
        :class:`~repro.exceptions.SnapshotError` propagates with the
        old snapshot still serving; a successful apply counts as a
        reload in :meth:`stats` (snapshot-scope counters restart).
        """
        if self._closed:
            raise ValidationError("service is closed")
        if isinstance(source, SnapshotDelta):
            delta = source
        else:
            delta = SnapshotDelta.load(source, mmap=mmap)
        self._install(delta.apply(self._snapshot), mmap)
        with self._lock:
            self._counters.record_reload()

    def close(self) -> None:
        """Release the snapshot; later :meth:`assign` calls raise.

        Idempotent.  Mirrors
        :meth:`~repro.serve.sharded.ShardedClusterService.close` so the
        unified :func:`~repro.serve.client.connect` handle can always
        be closed regardless of backend.
        """
        with self._lock:
            self._closed = True
            self._snapshot = None
            self._assigner = None

    def __enter__(self) -> "ClusterService":
        """Context-manager entry."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: release the snapshot."""
        self.close()

    def stats(self) -> dict:
        """Serving statistics at lifetime and per-snapshot scope.

        The top-level counters are **lifetime** totals spanning every
        hot reload; the nested ``"snapshot"`` dict carries the same
        counters for the currently served snapshot only (zeroed by each
        successful :meth:`reload`).  Every number is accumulated under
        the service lock from per-batch results, so the totals stay
        exact under concurrent :meth:`assign` calls.
        """
        with self._lock:
            snapshot = self._snapshot
            return {
                "source": self._source,
                "n_items": 0 if snapshot is None else snapshot.n_items,
                "n_clusters": (
                    0 if snapshot is None else len(snapshot.clusters)
                ),
                **self._counters.lifetime_dict(with_degraded=True),
                "snapshot": self._counters.snapshot_dict(
                    with_degraded=True
                ),
            }
