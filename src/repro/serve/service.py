"""ClusterService: a long-lived assignment front over snapshot artifacts.

The service owns one loaded snapshot + assigner pair and exposes the
operations a serving process needs:

* :meth:`ClusterService.assign` — batch assignment, delegated to the
  current :class:`~repro.serve.assigner.ClusterAssigner`;
* :meth:`ClusterService.reload` — **atomic hot-reload**: a newer
  snapshot is loaded and validated completely off to the side, then
  swapped in with one reference assignment.  In-flight batches finish
  against the snapshot they started with, and a failed load (corrupt
  artifact, future schema) leaves the old snapshot serving — the
  service never degrades to partial state;
* :meth:`ClusterService.stats` — serving counters at two scopes.  The
  top-level counters (queries, batches, coverage, affinity work,
  reloads) are **lifetime** totals: they span the service's whole life
  and survive every hot reload.  The nested ``"snapshot"`` block holds
  the same counters scoped to the **currently served snapshot**: a
  successful :meth:`ClusterService.reload` resets them to zero (a
  failed reload, which keeps the old snapshot serving, resets
  nothing).  Work is accumulated under the service lock from each
  batch's race-free
  :attr:`~repro.serve.assigner.Assignment.entries_computed`, so the
  totals stay exact even when batches run concurrently.

This mirrors the paper's §4.6 deployment shape: fitted state (hash
tables + items) lives in a server database; query-time workers read it
and answer membership questions without ever refitting.
"""

from __future__ import annotations

import pathlib
import threading

import numpy as np

from repro.exceptions import ValidationError
from repro.serve.assigner import Assignment, ClusterAssigner
from repro.serve.snapshot import DetectionSnapshot, SnapshotDelta

__all__ = ["ClusterService"]


class _ServingCounters:
    """Two-scope serving counters shared by both service fronts.

    Lifetime counters span the service's whole life; the snapshot scope
    resets on every successful hot reload.  Instances are not
    thread-safe on their own — both services mutate them under their
    service lock — which is exactly why the bookkeeping lives in one
    place: :class:`ClusterService` and
    :class:`~repro.serve.sharded.ShardedClusterService` must never
    drift on the documented stats semantics.
    """

    __slots__ = (
        "batches",
        "queries",
        "assigned",
        "entries",
        "degraded",
        "reloads",
        "respawns",
        "healed",
        "snap_batches",
        "snap_queries",
        "snap_assigned",
        "snap_entries",
        "snap_degraded",
        "snap_respawns",
        "snap_healed",
    )

    def __init__(self) -> None:
        self.reloads = 0
        self.batches = self.queries = self.assigned = self.entries = 0
        self.degraded = 0
        self.respawns = self.healed = 0
        self._reset_snapshot_scope()

    def _reset_snapshot_scope(self) -> None:
        self.snap_batches = self.snap_queries = 0
        self.snap_assigned = self.snap_entries = 0
        self.snap_degraded = 0
        self.snap_respawns = self.snap_healed = 0

    def record_batch(
        self,
        n_queries: int,
        assigned: int,
        entries: int,
        *,
        degraded: bool = False,
    ) -> None:
        """Account one served batch at both scopes."""
        self.batches += 1
        self.queries += int(n_queries)
        self.assigned += int(assigned)
        self.entries += int(entries)
        self.snap_batches += 1
        self.snap_queries += int(n_queries)
        self.snap_assigned += int(assigned)
        self.snap_entries += int(entries)
        if degraded:
            self.degraded += 1
            self.snap_degraded += 1

    def record_reload(self) -> None:
        """Account a successful hot reload: snapshot scope starts over."""
        self.reloads += 1
        self._reset_snapshot_scope()

    def record_heal(self, n_workers: int, n_shards: int) -> None:
        """Account one successful heal at both scopes.

        ``n_workers`` counts replacement worker processes spawned;
        ``n_shards`` counts shards returned to the serving pool (equal
        today — one worker per shard — but kept distinct so a future
        split-shard planner can heal partially).
        """
        self.respawns += int(n_workers)
        self.healed += int(n_shards)
        self.snap_respawns += int(n_workers)
        self.snap_healed += int(n_shards)

    def lifetime_dict(self, *, with_degraded: bool = False) -> dict:
        """The top-level (lifetime) stats fields."""
        out = {
            "batches": self.batches,
            "queries": self.queries,
            "assigned": self.assigned,
            "coverage": self.assigned / self.queries if self.queries else 0.0,
            "reloads": self.reloads,
            "entries_computed": self.entries,
        }
        if with_degraded:
            out["degraded_batches"] = self.degraded
            out["respawns"] = self.respawns
            out["healed_shards"] = self.healed
        return out

    def snapshot_dict(self, *, with_degraded: bool = False) -> dict:
        """The nested per-snapshot stats block."""
        out = {
            "batches": self.snap_batches,
            "queries": self.snap_queries,
            "assigned": self.snap_assigned,
            "coverage": (
                self.snap_assigned / self.snap_queries
                if self.snap_queries
                else 0.0
            ),
            "entries_computed": self.snap_entries,
        }
        if with_degraded:
            out["degraded_batches"] = self.snap_degraded
            out["respawns"] = self.snap_respawns
            out["healed_shards"] = self.snap_healed
        return out


class ClusterService:
    """Serve cluster assignments from a snapshot, with hot reload.

    Parameters
    ----------
    source:
        A snapshot directory path, or an in-memory
        :class:`~repro.serve.snapshot.DetectionSnapshot`.
    mmap:
        When *source* is a path, map the array files read-only instead
        of copying them into memory (identical results, smaller
        residency).

    Example
    -------
    >>> from repro import ALID, ALIDConfig, make_synthetic_mixture
    >>> from repro.serve import ClusterService, DetectionSnapshot
    >>> ds = make_synthetic_mixture(n=300, regime="bounded", seed=0)
    >>> detector = ALID(ALIDConfig(delta=200, seed=0))
    >>> snap = DetectionSnapshot.from_result(detector, detector.fit(ds.data))
    >>> service = ClusterService(snap)
    >>> service.assign(ds.data[:8]).n_queries
    8
    """

    def __init__(self, source, *, mmap: bool = False):
        self._lock = threading.Lock()
        self._counters = _ServingCounters()
        self._source = None
        self._closed = False
        self._snapshot: DetectionSnapshot | None = None
        self._assigner: ClusterAssigner | None = None
        self._install(source, mmap)

    # ------------------------------------------------------------------
    def _install(self, source, mmap: bool) -> None:
        """Load + validate a snapshot fully, then swap it in atomically."""
        if isinstance(source, DetectionSnapshot):
            snapshot = source
            described = "<in-memory>"
        else:
            snapshot = DetectionSnapshot.load(source, mmap=mmap)
            described = str(pathlib.Path(source))
        # Everything heavy (checksums, CSR rebuild, ownership map)
        # happens above; the swap below is one tuple of reference
        # assignments under the lock.
        assigner = ClusterAssigner(snapshot)
        with self._lock:
            self._snapshot = snapshot
            self._assigner = assigner
            self._source = described

    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> DetectionSnapshot:
        """The currently served snapshot."""
        return self._snapshot

    @property
    def n_clusters(self) -> int:
        """Number of assignable clusters in the current snapshot."""
        return self._assigner.n_clusters

    def assign(
        self, queries: np.ndarray, *, shortlist: str = "lsh"
    ) -> Assignment:
        """Assign a query batch against the current snapshot.

        The assigner reference is captured once, so a concurrent
        :meth:`reload` never switches snapshots mid-batch.
        """
        assigner = self._assigner
        if assigner is None:
            raise ValidationError("service is closed")
        result = assigner.assign(queries, shortlist=shortlist)
        with self._lock:
            self._counters.record_batch(
                result.n_queries,
                int(result.assigned_mask.sum()),
                int(result.entries_computed),
            )
        return result

    def reload(self, source, *, mmap: bool = False) -> None:
        """Hot-swap to a newer snapshot.

        The new artifact is loaded and checksum-validated completely
        before the swap; any
        :class:`~repro.exceptions.SnapshotError` propagates and the
        previous snapshot keeps serving untouched (including its
        per-snapshot counters).  On success the lifetime counters carry
        on unchanged while the per-snapshot counters of :meth:`stats`
        restart at zero for the new artifact.
        """
        if self._closed:
            raise ValidationError("service is closed")
        self._install(source, mmap)
        with self._lock:
            self._counters.record_reload()

    def apply_delta(self, source, *, mmap: bool = False) -> None:
        """Hot-apply an incremental :class:`SnapshotDelta`.

        *source* is a delta directory path or a loaded
        :class:`~repro.serve.snapshot.SnapshotDelta`.  The delta is
        loaded, checksum-verified and applied to the **currently
        served** snapshot entirely off to the side —
        :meth:`SnapshotDelta.apply` refuses a delta whose recorded
        parent manifest SHA does not match the serving snapshot's, so
        chains cannot be applied out of order — and the result swaps in
        through the same atomic path as :meth:`reload`.  Any
        :class:`~repro.exceptions.SnapshotError` propagates with the
        old snapshot still serving; a successful apply counts as a
        reload in :meth:`stats` (snapshot-scope counters restart).
        """
        if self._closed:
            raise ValidationError("service is closed")
        if isinstance(source, SnapshotDelta):
            delta = source
        else:
            delta = SnapshotDelta.load(source, mmap=mmap)
        self._install(delta.apply(self._snapshot), mmap)
        with self._lock:
            self._counters.record_reload()

    def close(self) -> None:
        """Release the snapshot; later :meth:`assign` calls raise.

        Idempotent.  Mirrors
        :meth:`~repro.serve.sharded.ShardedClusterService.close` so the
        unified :func:`~repro.serve.client.connect` handle can always
        be closed regardless of backend.
        """
        with self._lock:
            self._closed = True
            self._snapshot = None
            self._assigner = None

    def __enter__(self) -> "ClusterService":
        """Context-manager entry."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: release the snapshot."""
        self.close()

    def stats(self) -> dict:
        """Serving statistics at lifetime and per-snapshot scope.

        The top-level counters are **lifetime** totals spanning every
        hot reload; the nested ``"snapshot"`` dict carries the same
        counters for the currently served snapshot only (zeroed by each
        successful :meth:`reload`).  Every number is accumulated under
        the service lock from per-batch results, so the totals stay
        exact under concurrent :meth:`assign` calls.
        """
        with self._lock:
            snapshot = self._snapshot
            return {
                "source": self._source,
                "n_items": 0 if snapshot is None else snapshot.n_items,
                "n_clusters": (
                    0 if snapshot is None else len(snapshot.clusters)
                ),
                **self._counters.lifetime_dict(with_degraded=True),
                "snapshot": self._counters.snapshot_dict(
                    with_degraded=True
                ),
            }
