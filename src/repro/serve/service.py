"""ClusterService: a long-lived assignment front over snapshot artifacts.

The service owns one loaded snapshot + assigner pair and exposes the
operations a serving process needs:

* :meth:`ClusterService.assign` — batch assignment, delegated to the
  current :class:`~repro.serve.assigner.ClusterAssigner`;
* :meth:`ClusterService.reload` — **atomic hot-reload**: a newer
  snapshot is loaded and validated completely off to the side, then
  swapped in with one reference assignment.  In-flight batches finish
  against the snapshot they started with, and a failed load (corrupt
  artifact, future schema) leaves the old snapshot serving — the
  service never degrades to partial state;
* :meth:`ClusterService.stats` — cumulative serving counters (queries,
  batches, coverage, affinity work, reloads) across the service's whole
  lifetime, spanning reloads.  Work is accumulated under the service
  lock from each batch's race-free
  :attr:`~repro.serve.assigner.Assignment.entries_computed`, so the
  totals stay exact even when batches run concurrently.

This mirrors the paper's §4.6 deployment shape: fitted state (hash
tables + items) lives in a server database; query-time workers read it
and answer membership questions without ever refitting.
"""

from __future__ import annotations

import pathlib
import threading

import numpy as np

from repro.serve.assigner import Assignment, ClusterAssigner
from repro.serve.snapshot import DetectionSnapshot

__all__ = ["ClusterService"]


class ClusterService:
    """Serve cluster assignments from a snapshot, with hot reload.

    Parameters
    ----------
    source:
        A snapshot directory path, or an in-memory
        :class:`~repro.serve.snapshot.DetectionSnapshot`.
    mmap:
        When *source* is a path, map the array files read-only instead
        of copying them into memory (identical results, smaller
        residency).

    Example
    -------
    >>> from repro import ALID, ALIDConfig, make_synthetic_mixture
    >>> from repro.serve import ClusterService, DetectionSnapshot
    >>> ds = make_synthetic_mixture(n=300, regime="bounded", seed=0)
    >>> detector = ALID(ALIDConfig(delta=200, seed=0))
    >>> snap = DetectionSnapshot.from_result(detector, detector.fit(ds.data))
    >>> service = ClusterService(snap)
    >>> service.assign(ds.data[:8]).n_queries
    8
    """

    def __init__(self, source, *, mmap: bool = False):
        self._lock = threading.Lock()
        self._queries = 0
        self._batches = 0
        self._assigned = 0
        self._entries = 0
        self._reloads = 0
        self._source = None
        self._snapshot: DetectionSnapshot | None = None
        self._assigner: ClusterAssigner | None = None
        self._install(source, mmap)

    # ------------------------------------------------------------------
    def _install(self, source, mmap: bool) -> None:
        """Load + validate a snapshot fully, then swap it in atomically."""
        if isinstance(source, DetectionSnapshot):
            snapshot = source
            described = "<in-memory>"
        else:
            snapshot = DetectionSnapshot.load(source, mmap=mmap)
            described = str(pathlib.Path(source))
        # Everything heavy (checksums, CSR rebuild, ownership map)
        # happens above; the swap below is one tuple of reference
        # assignments under the lock.
        assigner = ClusterAssigner(snapshot)
        with self._lock:
            self._snapshot = snapshot
            self._assigner = assigner
            self._source = described

    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> DetectionSnapshot:
        """The currently served snapshot."""
        return self._snapshot

    @property
    def n_clusters(self) -> int:
        """Number of assignable clusters in the current snapshot."""
        return self._assigner.n_clusters

    def assign(
        self, queries: np.ndarray, *, shortlist: str = "lsh"
    ) -> Assignment:
        """Assign a query batch against the current snapshot.

        The assigner reference is captured once, so a concurrent
        :meth:`reload` never switches snapshots mid-batch.
        """
        assigner = self._assigner
        result = assigner.assign(queries, shortlist=shortlist)
        with self._lock:
            self._batches += 1
            self._queries += result.n_queries
            self._assigned += int(result.assigned_mask.sum())
            self._entries += int(result.entries_computed)
        return result

    def reload(self, source, *, mmap: bool = False) -> None:
        """Hot-swap to a newer snapshot.

        The new artifact is loaded and checksum-validated completely
        before the swap; any
        :class:`~repro.exceptions.SnapshotError` propagates and the
        previous snapshot keeps serving untouched.
        """
        self._install(source, mmap)
        with self._lock:
            self._reloads += 1

    def stats(self) -> dict:
        """Cumulative serving statistics (spanning hot reloads).

        Every number is accumulated under the service lock from
        per-batch results, so the totals stay exact under concurrent
        :meth:`assign` calls.
        """
        with self._lock:
            return {
                "source": self._source,
                "n_items": self._snapshot.n_items,
                "n_clusters": len(self._snapshot.clusters),
                "batches": self._batches,
                "queries": self._queries,
                "assigned": self._assigned,
                "coverage": (
                    self._assigned / self._queries if self._queries else 0.0
                ),
                "reloads": self._reloads,
                "entries_computed": self._entries,
            }
