"""Offline artifact audit: snapshots, delta chains, write-ahead logs.

The read-only integrity half of the durability story: everything the
serving and recovery paths check *implicitly* (array checksums,
manifest envelopes, delta parent-SHA links, WAL record CRCs, publish
markers) is checkable here *explicitly*, without standing up a service
or touching any state.  ``repro verify`` is the CLI face: exit 0 with
a summary line per artifact, or exit 2 with a one-line diagnosis.

Every checker returns a small report dict on success and raises
:class:`~repro.exceptions.SnapshotError` (or its
:class:`~repro.exceptions.WALError` subclass) on the first problem —
the same errors the serving paths would hit, surfaced before anything
depends on the artifact.  A torn WAL tail *is* reported as an error
here: it is recoverable damage (``IngestService.recover`` truncates
it), but an audit's job is to say the file is damaged.
"""

from __future__ import annotations

import json
import pathlib

from repro.exceptions import SnapshotError, WALError
from repro.serve.compact import BASE_NAME, chain_artifacts
from repro.serve.snapshot import (
    DELTA_FORMAT,
    MANIFEST_NAME,
    SNAPSHOT_FORMAT,
    DetectionSnapshot,
    SnapshotDelta,
)
from repro.serve.wal import WAL_MAGIC, read_records

__all__ = [
    "verify_artifact",
    "verify_chain",
    "verify_delta",
    "verify_snapshot",
    "verify_wal",
]


def verify_snapshot(path) -> dict:
    """Audit one snapshot directory; return its summary or raise.

    A full :meth:`~repro.serve.snapshot.DetectionSnapshot.load` —
    manifest envelope, every array's existence, size and SHA-256 —
    without keeping the arrays (``mmap`` keeps residency trivial).
    """
    snapshot = DetectionSnapshot.load(path, mmap=True)
    return {
        "kind": "snapshot",
        "path": str(path),
        "n_items": snapshot.n_items,
        "n_clusters": snapshot.n_clusters,
        "manifest_sha256": snapshot.manifest_sha256,
    }


def verify_delta(path) -> dict:
    """Audit one delta directory; return its summary or raise."""
    delta = SnapshotDelta.load(path, mmap=True)
    return {
        "kind": "delta",
        "path": str(path),
        "sequence": delta.sequence,
        "n_appended": delta.n_appended,
        "n_removed": delta.n_removed,
        "n_upserted": delta.n_upserted,
        "n_retired_rows": delta.n_retired_rows,
        "parent_sha256": delta.parent_sha256,
        "manifest_sha256": delta.manifest_sha256,
    }


def verify_wal(path, *, allow_torn_tail: bool = False) -> dict:
    """Audit a write-ahead log; return its summary or raise.

    Checks the header magic and every record's framing and CRC-32.
    Uncommitted tail bytes (a crash mid-append) raise unless
    *allow_torn_tail* — an audit reports damage even when recovery
    could truncate it.
    """
    records, committed, total = read_records(path)
    torn = total - committed
    if torn and not allow_torn_tail:
        raise WALError(
            f"{path}: torn tail — {torn} uncommitted byte(s) after "
            f"record {len(records)} (recoverable: "
            f"IngestService.recover() truncates and replays)"
        )
    kinds: dict[str, int] = {}
    for record in records:
        kinds[record.kind] = kinds.get(record.kind, 0) + 1
    return {
        "kind": "wal",
        "path": str(path),
        "n_records": len(records),
        "record_kinds": kinds,
        "committed_bytes": committed,
        "torn_bytes": torn,
    }


def verify_chain(path, *, allow_torn_tail: bool = False) -> dict:
    """Audit a whole chain directory: base, deltas, links, journal.

    Beyond the per-artifact checks, verifies what only the chain as a
    whole can promise: each delta's ``parent_sha256`` equals the
    manifest SHA-256 of the artifact before it, sequence numbers are
    gapless, and — when an ``ingest.wal`` journal rides along — every
    committed publish marker pins an on-disk artifact with the exact
    manifest SHA it recorded.
    """
    path = pathlib.Path(path)
    base_path, delta_paths = chain_artifacts(path)
    base_report = verify_snapshot(base_path)
    parent_sha = base_report["manifest_sha256"]
    artifact_shas = {BASE_NAME: parent_sha}
    delta_reports = []
    for position, delta_path in enumerate(delta_paths):
        report = verify_delta(delta_path)
        if report["sequence"] != position:
            raise SnapshotError(
                f"{delta_path}: sequence {report['sequence']} at chain "
                f"position {position}"
            )
        if report["parent_sha256"] != parent_sha:
            raise SnapshotError(
                f"{delta_path}: parent link broken — expects "
                f"{report['parent_sha256'][:12]}..., previous artifact "
                f"is {str(parent_sha)[:12]}..."
            )
        parent_sha = report["manifest_sha256"]
        artifact_shas[delta_path.name] = parent_sha
        delta_reports.append(report)
    wal_report = None
    wal_path = path / "ingest.wal"
    if wal_path.is_file():
        wal_report = verify_wal(
            wal_path, allow_torn_tail=allow_torn_tail
        )
        records, _, _ = read_records(wal_path)
        for number, record in enumerate(records):
            if record.kind not in ("publish_base", "publish_delta"):
                continue
            name = record.meta.get("name")
            sha = record.meta.get("sha256")
            if name not in artifact_shas:
                raise WALError(
                    f"{wal_path}: record {number} marks a publish of "
                    f"{name!r} but the chain holds no such committed "
                    f"artifact"
                )
            if artifact_shas[name] != sha:
                raise WALError(
                    f"{wal_path}: record {number} pins {name!r} at "
                    f"{str(sha)[:12]}... but the artifact hashes to "
                    f"{artifact_shas[name][:12]}..."
                )
    return {
        "kind": "chain",
        "path": str(path),
        "base": base_report,
        "deltas": delta_reports,
        "tip_sha256": parent_sha,
        "wal": wal_report,
    }


def verify_artifact(path, *, allow_torn_tail: bool = False) -> dict:
    """Audit *path*, whatever artifact kind it is.

    Dispatches on shape: a file starting with the WAL magic is a
    journal; a directory with a ``base/`` sub-snapshot is a chain; a
    directory whose manifest declares the snapshot or delta format is
    that.  Anything else raises with a one-line diagnosis.
    """
    path = pathlib.Path(path)
    if path.is_file():
        with open(path, "rb") as handle:
            head = handle.read(len(WAL_MAGIC))
        if head == WAL_MAGIC:
            return verify_wal(path, allow_torn_tail=allow_torn_tail)
        raise SnapshotError(
            f"{path} is not a known artifact: not a write-ahead log, "
            f"and artifacts are directories"
        )
    if not path.is_dir():
        raise SnapshotError(f"{path} does not exist")
    if (path / BASE_NAME / MANIFEST_NAME).is_file() or (
        (path / BASE_NAME).is_dir()
        and not (path / MANIFEST_NAME).is_file()
    ):
        return verify_chain(path, allow_torn_tail=allow_torn_tail)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotError(
            f"{path} is not a known artifact: no {MANIFEST_NAME} and "
            f"no {BASE_NAME}/ chain anchor"
        )
    try:
        fmt = json.loads(manifest_path.read_text()).get("format")
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(
            f"{manifest_path} is not readable JSON: {exc}"
        ) from exc
    if fmt == SNAPSHOT_FORMAT:
        return verify_snapshot(path)
    if fmt == DELTA_FORMAT:
        return verify_delta(path)
    raise SnapshotError(
        f"{path}: manifest declares unknown format {fmt!r}"
    )
