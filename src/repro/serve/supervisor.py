"""ShardSupervisor: watch a sharded pool and heal dead workers.

:class:`~repro.serve.sharded.ShardedClusterService` survives worker
crashes in degraded mode (``on_worker_error="skip"``) and can repair
itself on demand via :meth:`~repro.serve.sharded.ShardedClusterService.heal`;
the :class:`ShardSupervisor` closes the loop by doing the watching.  A
background thread polls :meth:`dead_shard_ids` at a fixed interval and
triggers a heal whenever the pool has holes, so a SIGKILLed worker is
back within roughly ``interval`` plus one worker startup — no operator
action, no reload, no snapshot change.

Failure discipline: a heal that raises (e.g. the shard artifact was
damaged *after* the crash) is recorded — last error string, consecutive
failure count — and retried on the next poll with exponential back-off,
while the pool keeps serving degraded.  The supervisor never takes the
service down; the worst it does is log failure in its stats.

Determinism for tests: :meth:`ShardSupervisor.poll_now` runs one
synchronous poll/heal cycle on the caller's thread, so fault-injection
tests do not need to sleep until the background thread gets around to
it.
"""

from __future__ import annotations

import random
import threading

from ..exceptions import ValidationError
from ..obs.metrics import MetricsRegistry

__all__ = ["ShardSupervisor"]

#: Cap on the exponential retry back-off, in units of poll intervals.
_MAX_BACKOFF_POLLS = 64


class ShardSupervisor:
    """Background watcher that heals a sharded service's dead workers.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.sharded.ShardedClusterService` to
        watch.  Any object with ``dead_shard_ids()`` and ``heal()`` is
        accepted (duck-typed so tests can instrument either call).
    interval:
        Seconds between liveness polls of the background thread.
    on_heal:
        Optional callback invoked as ``on_heal(shard_ids)`` after every
        successful heal (from the supervisor thread — keep it cheap).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` the
        poll/heal counters live in.  Defaults to the watched service's
        ``metrics_registry`` when it has one (so one scrape covers the
        whole pool, with these metrics labelled
        ``component="supervisor"``), else a private registry.
    backoff_jitter_seed:
        Seed for the retry back-off jitter.  Repeated heal failures
        back off exponentially plus a jittered share of the base, so a
        fleet of supervisors (give each a distinct seed) does not
        hammer a struggling artifact store in lockstep — while any
        *one* supervisor's retry schedule stays fully deterministic
        and can be pinned by tests.

    Use as a context manager, or call :meth:`start` / :meth:`stop`
    explicitly.  Stopping the supervisor never touches the service.
    """

    def __init__(
        self,
        service,
        *,
        interval: float = 0.25,
        on_heal=None,
        registry: MetricsRegistry | None = None,
        backoff_jitter_seed: int = 0,
    ):
        """Validate the poll interval and the service's heal surface."""
        if interval <= 0.0:
            raise ValidationError(
                f"interval must be > 0, got {interval}"
            )
        for required in ("dead_shard_ids", "heal"):
            if not callable(getattr(service, required, None)):
                raise ValidationError(
                    "service does not expose a callable "
                    f"{required}(); ShardSupervisor needs a "
                    "ShardedClusterService-like object"
                )
        self._service = service
        self.interval = float(interval)
        self._on_heal = on_heal
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        if registry is None:
            registry = getattr(service, "metrics_registry", None)
        if registry is None:
            registry = MetricsRegistry(component="supervisor")
        self.registry = registry
        component = {"component": "supervisor"}
        self._m_polls = registry.counter(
            "supervisor_polls_total", "Liveness polls run", **component
        )
        self._m_heals = registry.counter(
            "supervisor_heals_total", "Successful heal cycles", **component
        )
        self._m_healed_shards = registry.counter(
            "supervisor_healed_shards_total",
            "Shards healed across all cycles",
            **component,
        )
        self._m_heal_failures = registry.counter(
            "supervisor_heal_failures_total",
            "Heal attempts that raised",
            **component,
        )
        self._g_consecutive = registry.gauge(
            "supervisor_consecutive_failures",
            "Heal failures since the last success",
            **component,
        )
        self._g_backoff = registry.gauge(
            "supervisor_backoff_polls_remaining",
            "Polls the watcher will skip before retrying a heal",
            **component,
        )
        self._last_error: str | None = None
        self._backoff_remaining = 0
        self._consecutive_failures = 0
        self._backoff_rng = random.Random(backoff_jitter_seed)

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def running(self) -> bool:
        """Whether the background watcher thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "ShardSupervisor":
        """Start the background watcher (idempotent); returns ``self``."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._watch,
                name="repro-shard-supervisor",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the watcher thread and join it (idempotent)."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "ShardSupervisor":
        """Start watching on context entry."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop watching on context exit."""
        self.stop()

    # ------------------------------------------------------------------
    # the watch loop

    def _watch(self) -> None:
        """Poll until stopped; heal (with back-off) when holes appear."""
        while not self._stop_event.wait(self.interval):
            with self._lock:
                if self._backoff_remaining > 0:
                    self._backoff_remaining -= 1
                    continue
            try:
                self.poll_now()
            except Exception:  # pragma: no cover - service closed mid-stop
                # A racing close() makes every service call raise; the
                # owner is tearing things down, so just stop watching.
                return

    def poll_now(self) -> list[int]:
        """Run one poll/heal cycle synchronously; returns healed ids.

        A heal failure (corrupt artifact, spawn failure) is absorbed
        into the supervisor's failure stats and schedules exponential
        back-off for the background loop; the caller gets an empty
        list, the degraded pool keeps serving, and the next cycle
        retries.  Only errors from the *poll* (e.g. a closed service)
        propagate.
        """
        self._m_polls.inc()
        if not self._service.dead_shard_ids():
            return []
        try:
            healed = self._service.heal()
        except Exception as exc:  # noqa: BLE001 - surfaced in stats
            self._m_heal_failures.inc()
            with self._lock:
                self._consecutive_failures += 1
                self._last_error = f"{type(exc).__name__}: {exc}"
                base = 2 ** min(self._consecutive_failures, 16)
                jitter = self._backoff_rng.randrange(1 + base // 2)
                self._backoff_remaining = min(
                    base + jitter, _MAX_BACKOFF_POLLS
                )
                self._g_consecutive.set(self._consecutive_failures)
                self._g_backoff.set(self._backoff_remaining)
            return []
        with self._lock:
            self._consecutive_failures = 0
            self._backoff_remaining = 0
            self._g_consecutive.set(0)
            self._g_backoff.set(0)
            if healed:
                self._last_error = None
        if healed:
            self._m_heals.inc()
            self._m_healed_shards.inc(len(healed))
        if healed and self._on_heal is not None:
            self._on_heal(list(healed))
        return list(healed)

    # ------------------------------------------------------------------
    # introspection

    def stats(self) -> dict:
        """Supervisor counters: polls, heals, failures, back-off state.

        Counter fields read the backing registry metrics — the same
        numbers a metrics scrape of the watched service renders.
        """
        with self._lock:
            return {
                "running": self.running,
                "interval": self.interval,
                "polls": self._m_polls.value,
                "heals": self._m_heals.value,
                "healed_shards": self._m_healed_shards.value,
                "heal_failures": self._m_heal_failures.value,
                "consecutive_failures": self._consecutive_failures,
                "backoff_polls_remaining": self._backoff_remaining,
                "last_error": self._last_error,
            }
