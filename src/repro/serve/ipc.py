"""Out-of-band pickle transport for the shard-worker pipes (PEP 574).

Shard workers and the router exchange query blocks and partial-verdict
arrays over ``multiprocessing`` pipes.  The stock ``Connection.send``
pickles with the default protocol, which embeds every NumPy buffer
*inside* the pickle stream — one full copy on the way in, and a second
copy on the way out when the unpickler rebuilds each array from the
embedded bytes.  At serving batch sizes that per-micro-batch copy tax
is what eats the multi-worker speedup on small batches (ROADMAP item).

This module frames messages with ``pickle.dumps(..., protocol=5)`` and
an out-of-band ``buffer_callback``: the pickle stream carries only the
object skeleton, the raw array buffers ride behind it in the same pipe
message, and :func:`recv_message` rebuilds every array as a **zero-copy
view** into the single received blob (``pickle.loads(...,
buffers=...)``).  Received arrays are therefore read-only; both sides
of the shard protocol only read what they receive (the router merges
into freshly allocated outputs, the worker scores the query block
without mutating it).

Wire format of one pipe message (all little-endian)::

    [u32 frame_count] [u64 size] * frame_count [frame bytes...]

where frame 0 is the pickle stream and frames 1.. are the out-of-band
buffers in callback order.
"""

from __future__ import annotations

import pickle
import struct

__all__ = ["recv_message", "send_message"]

_COUNT = struct.Struct("<I")
_SIZE = struct.Struct("<Q")


def send_message(conn, obj) -> None:
    """Send *obj* over *conn* with out-of-band buffer framing.

    Any picklable object is accepted; contiguous NumPy arrays anywhere
    inside it travel as raw frames instead of pickle opcodes
    (non-contiguous arrays transparently fall back to in-band pickling,
    as defined by NumPy's protocol-5 reducer).
    """
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    raws = [b.raw() for b in buffers]
    sizes = [len(payload)]
    sizes.extend(r.nbytes for r in raws)
    parts = [_COUNT.pack(len(sizes))]
    parts.extend(_SIZE.pack(s) for s in sizes)
    parts.append(payload)
    parts.extend(raws)
    conn.send_bytes(b"".join(parts))


def recv_message(conn):
    """Receive one :func:`send_message` frame and rebuild the object.

    Arrays reconstructed from out-of-band frames are read-only views
    into the received message blob (no copy); they stay valid for the
    lifetime of the returned object, which holds the blob alive.
    """
    view = memoryview(conn.recv_bytes())
    (count,) = _COUNT.unpack_from(view, 0)
    offset = _COUNT.size
    sizes = []
    for _ in range(count):
        (size,) = _SIZE.unpack_from(view, offset)
        sizes.append(size)
        offset += _SIZE.size
    payload = view[offset : offset + sizes[0]]
    offset += sizes[0]
    buffers = []
    for size in sizes[1:]:
        buffers.append(view[offset : offset + size])
        offset += size
    return pickle.loads(payload, buffers=buffers)
