"""Versioned on-disk snapshots of a fitted detection.

A snapshot is a directory holding plain ``.npy`` arrays plus a JSON
manifest (``manifest.json``) with a schema version and a SHA-256
checksum per array file.  It captures everything a serve-time process
needs to answer "which dominant cluster does this query belong to?"
without refitting:

* the data matrix (the paper's ``V``, the items the clusters live over);
* the fitted LSH state — Gaussian projections, segment offsets, key
  mixers and per-item bucket keys of every table
  (:meth:`repro.lsh.index.LSHIndex.export_state`), from which the CSR
  tables are rebuilt deterministically;
* the calibrated kernel (scaling factor ``k``, norm order ``p``) and
  the full :class:`~repro.core.config.ALIDConfig`;
* every dominant cluster's support and converged strategy
  (:func:`repro.core.results.pack_clusters` — the same packing the
  detection archive of :mod:`repro.io` uses).

Design rules:

* **Loads are all-or-nothing.**  A missing or truncated array file, a
  checksum mismatch, a malformed manifest, or a schema version newer
  than this library raises
  :class:`~repro.exceptions.SnapshotError`; corrupt state is never
  returned.
* **Round-trips are bit-identical.** ``load(save(state))`` restores hash
  keys, CSR tables, kernel and strategies exactly, so a reloaded
  snapshot assigns every query the same cluster and score the original
  process would.
* **Arrays are plain ``.npy`` files** so ``mmap=True`` can map the big
  payloads (data matrix, bucket keys) read-only instead of copying them
  — a multi-GB snapshot serves without materialising its matrix.
* **The manifest is written last**, so a directory with a readable
  manifest is a complete snapshot; interrupted saves are detected as
  missing-manifest errors, never as silent partial state.

Incremental deltas
------------------
:class:`SnapshotDelta` is the *incremental* sibling of the full
snapshot: a checksummed, versioned directory recording only what one
ingest round changed against a parent artifact — appended data rows,
their per-table LSH bucket keys (the insert state of
:meth:`repro.lsh.index.LSHIndex.insert`), retired/replaced cluster
labels, and the replacement/new clusters.  Deltas chain: each records
the SHA-256 of the manifest of the artifact it applies on top of (the
base snapshot's for the first delta, the previous delta's afterwards),
so a serving process can refuse out-of-order or foreign deltas before
touching any state.  The same all-or-nothing load rules apply — every
array is size- and checksum-verified, and :meth:`SnapshotDelta.apply`
validates parentage and shape before building the new in-memory
snapshot, so a failed application leaves the serving snapshot untouched.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib

import numpy as np

from repro.affinity.kernel import LaplacianKernel
from repro.affinity.oracle import AffinityCounters, AffinityOracle
from repro.core.config import ALIDConfig
from repro.core.results import Cluster, pack_clusters, unpack_clusters
from repro.exceptions import SnapshotError, ValidationError
from repro.lsh.index import LSHIndex

__all__ = [
    "DetectionSnapshot",
    "SnapshotDelta",
    "SCHEMA_VERSION",
    "SNAPSHOT_FORMAT",
    "DELTA_SCHEMA_VERSION",
    "DELTA_FORMAT",
]

# v2 added the optional per-cluster ``quality`` manifest block
# (``repro.arena.quality``); v1 snapshots load fine with quality=None.
SCHEMA_VERSION = 2
SNAPSHOT_FORMAT = "repro-alid-detection-snapshot"
# Delta v2 added the ``retired_rows`` tombstone array (retirement
# deltas: expiring items/clusters no longer republishes a base); v1
# deltas load fine with an empty retirement set.
DELTA_SCHEMA_VERSION = 2
DELTA_FORMAT = "repro-alid-snapshot-delta"
MANIFEST_NAME = "manifest.json"
ARRAY_DIR = "arrays"

# Every array a complete snapshot must carry.  The cluster_* entries are
# the pack_clusters() keys with a "cluster_" prefix.
_INDEX_ARRAYS = (
    "projections",
    "hash_offsets",
    "mixers",
    "item_keys",
    "active",
)
_CLUSTER_ARRAYS = (
    "cluster_members",
    "cluster_weights",
    "cluster_offsets",
    "cluster_densities",
    "cluster_labels",
    "cluster_seeds",
)
_REQUIRED_ARRAYS = ("data",) + _INDEX_ARRAYS + _CLUSTER_ARRAYS

# Every array a complete delta must carry: the appended rows and their
# per-table LSH insert state, the retired/replaced labels, the
# tombstoned data rows (v2), and the upserted clusters in the same
# pack_clusters() layout snapshots use.
_DELTA_ARRAYS_V1 = (
    "appended_data",
    "appended_item_keys",
    "removed_labels",
) + _CLUSTER_ARRAYS
_DELTA_ARRAYS = (
    "appended_data",
    "appended_item_keys",
    "removed_labels",
    "retired_rows",
) + _CLUSTER_ARRAYS

_HASH_CHUNK = 1 << 20


def _json_default(value):
    """Coerce numpy scalars for the manifest; reject anything else.

    ``default=str`` would silently stringify unknown values (e.g. a
    ``delta`` passed as ``np.int32``), writing a manifest whose config
    section can never be loaded back — a snapshot bricked at save time.
    Coercing the common numpy cases keeps such configs round-tripping;
    genuinely unserialisable values fail the *save*, loudly.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"manifest value {value!r} ({type(value).__name__}) is not "
        f"JSON-serializable"
    )


def _sha256_of(path: pathlib.Path) -> str:
    """Streamed SHA-256 of a file (constant memory, works on huge arrays)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_HASH_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _write_array(array_dir: pathlib.Path, name: str, array) -> dict:
    """Write one ``.npy`` (write-to-temp + rename) and return its manifest entry.

    Never truncates an existing ``.npy`` in place: an artifact loaded
    with ``mmap=True`` from this very directory keeps reading its (now
    anonymous) old inode, and a crash mid-write leaves the previous
    array file intact.
    """
    file_path = array_dir / f"{name}.npy"
    tmp_path = array_dir / f"{name}.tmp.npy"  # np.save keeps .npy
    np.save(tmp_path, array)
    tmp_path.replace(file_path)
    return {
        "file": f"{ARRAY_DIR}/{name}.npy",
        "sha256": _sha256_of(file_path),
        "bytes": file_path.stat().st_size,
        "shape": list(np.asarray(array).shape),
        "dtype": str(np.asarray(array).dtype),
    }


def _load_verified_array(
    path: pathlib.Path, name: str, entry, *, mmap: bool
) -> np.ndarray:
    """Existence-, size- and checksum-verify one array entry, then load it.

    Shared by snapshot and delta loads so the two artifact kinds cannot
    drift on integrity rules.  Raises :class:`SnapshotError` on any
    mismatch; verification streams the file, so even ``mmap=True``
    loads never hold a full copy in memory.
    """
    if not isinstance(entry, dict) or "file" not in entry:
        raise SnapshotError(
            f"{path}: manifest has no array entry for {name!r}"
        )
    file_path = path / entry["file"]
    if not file_path.is_file():
        raise SnapshotError(
            f"{path}: array file {entry['file']} is missing"
        )
    expected_bytes = entry.get("bytes")
    actual_bytes = file_path.stat().st_size
    if expected_bytes is not None and actual_bytes != expected_bytes:
        raise SnapshotError(
            f"{path}: array file {entry['file']} is truncated or "
            f"padded ({actual_bytes} bytes, manifest says "
            f"{expected_bytes})"
        )
    digest = _sha256_of(file_path)
    if digest != entry.get("sha256"):
        raise SnapshotError(
            f"{path}: checksum mismatch for {entry['file']} "
            f"(file {digest[:12]}..., manifest "
            f"{str(entry.get('sha256'))[:12]}...)"
        )
    try:
        return np.load(
            file_path,
            mmap_mode="r" if mmap else None,
            allow_pickle=False,
        )
    except ValueError as exc:
        raise SnapshotError(
            f"{path}: array file {entry['file']} is not a valid "
            f".npy payload: {exc}"
        ) from exc


def _read_manifest(
    path: pathlib.Path, *, fmt: str, max_version: int, kind: str
) -> dict:
    """Read + validate a manifest's format/version envelope, or raise."""
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotError(
            f"{path} is not a {kind} directory: no {MANIFEST_NAME} "
            f"(an interrupted save never writes one)"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(
            f"{manifest_path} is not readable JSON: {exc}"
        ) from exc
    if manifest.get("format") != fmt:
        raise SnapshotError(
            f"{path}: manifest format {manifest.get('format')!r} is not "
            f"{fmt!r}"
        )
    version = manifest.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise SnapshotError(
            f"{path}: invalid schema_version {version!r}"
        )
    if version > max_version:
        raise SnapshotError(
            f"{path}: {kind} schema_version {version} is newer than "
            f"this library understands (max {max_version}); upgrade "
            f"the library instead of serving corrupt state"
        )
    return manifest


@dataclasses.dataclass
class DetectionSnapshot:
    """A fitted detection, ready to persist or serve.

    Attributes
    ----------
    data:
        Data matrix ``(n, d)`` the detection ran over (may be a
        read-only memory map after an ``mmap=True`` load).
    config:
        The :class:`~repro.core.config.ALIDConfig` of the fit; serving
        reuses its ``tol`` as the Theorem 1 immunity tolerance.
    kernel:
        The calibrated Laplacian kernel (frozen scaling factor).
    lsh_r:
        Segment length the LSH tables were built with.
    index_arrays:
        The :meth:`repro.lsh.index.LSHIndex.export_state` dict.
    clusters:
        Dominant clusters with converged strategies (members, weights,
        density, label, seed).
    meta:
        Free-form provenance (method name, fit counters, ...).
    quality:
        Optional per-cluster quality scores
        ``{label: {metric: score}}`` as produced by
        :func:`repro.arena.quality.annotate_snapshot`; ``None`` for
        unannotated snapshots (including every pre-v2 artifact).
        Inert for assignment — serving only exports it as gauges.
    manifest_sha256:
        SHA-256 of the snapshot's ``manifest.json``, set by
        :meth:`save` and :meth:`load`; ``None`` for in-memory snapshots
        that were never persisted.  This is the identity a
        :class:`SnapshotDelta` chain anchors to.
    """

    data: np.ndarray
    config: ALIDConfig
    kernel: LaplacianKernel
    lsh_r: float
    index_arrays: dict[str, np.ndarray]
    clusters: list[Cluster]
    meta: dict = dataclasses.field(default_factory=dict)
    quality: dict[int, dict[str, float]] | None = None
    manifest_sha256: str | None = dataclasses.field(
        default=None, compare=False
    )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_engine(
        cls,
        engine,
        clusters: list[Cluster],
        *,
        meta: dict | None = None,
    ) -> "DetectionSnapshot":
        """Capture a fitted :class:`~repro.core.alid.ALIDEngine`.

        Works for any engine-shaped object exposing ``oracle``,
        ``kernel``, ``config``, ``lsh_r`` and ``index`` — the batch
        engine and the streaming engine both qualify (the paper's §4.6
        server database holds exactly this state).
        """
        return cls(
            data=engine.oracle.data,
            config=engine.config,
            kernel=engine.kernel,
            lsh_r=float(engine.lsh_r),
            index_arrays=engine.index.export_state(),
            clusters=list(clusters),
            meta=dict(meta or {}),
        )

    @classmethod
    def from_result(cls, detector, result) -> "DetectionSnapshot":
        """Capture an :class:`~repro.core.alid.ALID` fit and its result.

        Persists the *dominant* clusters of ``result`` — the serve-time
        assignment targets — plus fit provenance in ``meta``.
        """
        if getattr(detector, "engine_", None) is None:
            raise SnapshotError(
                "detector has no fitted engine_; call fit() before "
                "snapshotting"
            )
        meta = {
            "method": result.method,
            "n_items": int(result.n_items),
            "fit_entries_computed": (
                int(result.counters.entries_computed)
                if result.counters is not None
                else None
            ),
        }
        return cls.from_engine(detector.engine_, result.clusters, meta=meta)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        """Number of indexed items."""
        return int(self.data.shape[0])

    @property
    def dim(self) -> int:
        """Feature dimensionality."""
        return int(self.data.shape[1])

    @property
    def n_clusters(self) -> int:
        """Number of persisted dominant clusters."""
        return len(self.clusters)

    # ------------------------------------------------------------------
    # runtime reconstruction
    # ------------------------------------------------------------------
    def restore_index(self) -> LSHIndex:
        """Rebuild the LSH index (bit-identical buckets, no re-hashing)."""
        return LSHIndex.from_state(
            self.data, r=self.lsh_r, **self.index_arrays
        )

    def make_oracle(
        self, counters: AffinityCounters | None = None
    ) -> AffinityOracle:
        """An instrumented oracle over the snapshot's data and kernel."""
        return AffinityOracle(
            self.data,
            self.kernel,
            counters=counters if counters is not None else AffinityCounters(),
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> pathlib.Path:
        """Write the snapshot directory and return its resolved path.

        Arrays are written first, the manifest last — a readable
        manifest therefore certifies a complete snapshot.  When saving
        into an existing snapshot directory, any previous manifest is
        removed *before* the arrays are touched, so an interrupted
        overwrite is detected as a missing manifest (never as a stale
        manifest over mixed old/new arrays).  Serving processes should
        :meth:`load` a snapshot fully and swap atomically in memory
        rather than read a directory being rewritten.
        """
        path = pathlib.Path(path)
        array_dir = path / ARRAY_DIR
        array_dir.mkdir(parents=True, exist_ok=True)
        (path / MANIFEST_NAME).unlink(missing_ok=True)
        arrays: dict[str, np.ndarray] = {
            "data": np.ascontiguousarray(self.data, dtype=np.float64)
        }
        arrays.update(self.index_arrays)
        packed = pack_clusters(self.clusters)
        arrays.update({f"cluster_{k}": v for k, v in packed.items()})
        manifest_arrays = {
            name: _write_array(array_dir, name, arrays[name])
            for name in _REQUIRED_ARRAYS
        }
        manifest = {
            "format": SNAPSHOT_FORMAT,
            "schema_version": SCHEMA_VERSION,
            "config": dataclasses.asdict(self.config),
            "kernel": {"k": self.kernel.k, "p": self.kernel.p},
            "lsh": {"r": float(self.lsh_r)},
            "counts": {
                "n_items": self.n_items,
                "dim": self.dim,
                "n_clusters": self.n_clusters,
            },
            "meta": self.meta,
            "arrays": manifest_arrays,
        }
        if self.quality is not None:
            manifest["quality"] = {
                str(int(label)): {
                    str(metric): float(score)
                    for metric, score in scores.items()
                }
                for label, scores in self.quality.items()
            }
        try:
            payload = json.dumps(
                manifest, indent=2, sort_keys=True, default=_json_default
            )
        except TypeError as exc:
            raise SnapshotError(
                f"snapshot config/meta cannot be persisted: {exc}"
            ) from exc
        tmp = path / (MANIFEST_NAME + ".tmp")
        tmp.write_text(payload + "\n")
        tmp.replace(path / MANIFEST_NAME)
        self.manifest_sha256 = _sha256_of(path / MANIFEST_NAME)
        return path

    @classmethod
    def load(cls, path, *, mmap: bool = False) -> "DetectionSnapshot":
        """Load and validate a snapshot directory.

        Every array file is existence-, size- and checksum-verified
        before anything is constructed (verification streams the file,
        so even ``mmap=True`` loads never hold a full copy in memory).

        Parameters
        ----------
        path:
            Snapshot directory written by :meth:`save`.
        mmap:
            Map array files read-only (``numpy.load(mmap_mode="r")``)
            instead of reading them into memory.  Results are pinned
            identical to an eager load; only residency differs.

        Raises
        ------
        SnapshotError
            Missing/unreadable manifest, wrong format, schema version
            newer than :data:`SCHEMA_VERSION`, missing array entry or
            file, truncated file, or checksum mismatch.
        """
        path = pathlib.Path(path)
        manifest = _read_manifest(
            path,
            fmt=SNAPSHOT_FORMAT,
            max_version=SCHEMA_VERSION,
            kind="snapshot",
        )
        entries = manifest.get("arrays", {})
        arrays: dict[str, np.ndarray] = {
            name: _load_verified_array(
                path, name, entries.get(name), mmap=mmap
            )
            for name in _REQUIRED_ARRAYS
        }
        try:
            config = ALIDConfig(**manifest["config"])
            kernel = LaplacianKernel(
                k=float(manifest["kernel"]["k"]),
                p=float(manifest["kernel"]["p"]),
            )
            lsh_r = float(manifest["lsh"]["r"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"{path}: manifest config/kernel section is invalid: {exc}"
            ) from exc
        try:
            clusters = unpack_clusters(
                {
                    key[len("cluster_"):]: arrays[key]
                    for key in _CLUSTER_ARRAYS
                },
                n_items=int(arrays["data"].shape[0]),
            )
        except ValidationError as exc:
            raise SnapshotError(
                f"{path}: cluster arrays are inconsistent: {exc}"
            ) from exc
        quality_block = manifest.get("quality")
        quality = (
            None
            if quality_block is None
            else {
                int(label): {
                    str(metric): float(score)
                    for metric, score in scores.items()
                }
                for label, scores in quality_block.items()
            }
        )
        return cls(
            data=arrays["data"],
            config=config,
            kernel=kernel,
            lsh_r=lsh_r,
            index_arrays={name: arrays[name] for name in _INDEX_ARRAYS},
            clusters=clusters,
            meta=dict(manifest.get("meta", {})),
            quality=quality,
            manifest_sha256=_sha256_of(path / MANIFEST_NAME),
        )


@dataclasses.dataclass
class SnapshotDelta:
    """One ingest round's changes against a parent snapshot artifact.

    A delta is the incremental publish unit of the live-corpus pipeline
    (:class:`~repro.serve.ingest.IngestService`): instead of rewriting a
    full :class:`DetectionSnapshot` after every batch, only the appended
    rows, their per-table LSH bucket keys, and the retired/replaced
    clusters are persisted.  Its size scales with what changed, not with
    the corpus.

    Deltas form a chain anchored at a *saved* base snapshot:
    ``parent_sha256`` is the SHA-256 of the manifest of the artifact the
    delta applies on top of — the base snapshot's manifest for
    ``sequence == 0``, the previous delta's manifest afterwards.
    :meth:`apply` verifies that chain plus every shape before building
    anything, so an out-of-order, foreign, or corrupt delta never
    touches the serving snapshot.

    Attributes
    ----------
    parent_sha256:
        Manifest SHA-256 of the immediate parent artifact.
    parent_n_items:
        Item count of the state this delta applies to (base items plus
        all previously appended rows).
    sequence:
        0-based position in the delta chain.
    appended_data:
        New data rows ``(m, d)``; ``m`` may be zero (a pure
        cluster-churn delta).
    appended_item_keys:
        Per-table LSH bucket keys of the appended rows ``(l, m)`` — the
        exported insert state of
        :meth:`repro.lsh.index.LSHIndex.insert`, so the parent's tables
        extend without re-hashing.
    removed_labels:
        Labels of parent clusters that retired or were replaced.
    clusters:
        Upserted clusters (replacements and brand-new ones), member
        indices global into the post-append matrix.
    retired_rows:
        Data rows tombstoned since the parent (schema v2), indices
        global into the post-append matrix.  Retired rows stay in the
        matrix (index stability) but are marked inactive in the LSH
        state; the cluster churn a retirement caused (shrunk or
        dissolved clusters) rides in ``removed_labels`` / ``clusters``
        like any other churn.  v1 deltas load with an empty set.
    meta:
        Free-form provenance (ingest counters, ...).
    manifest_sha256:
        SHA-256 of this delta's own manifest, set by :meth:`save` /
        :meth:`load`; the next delta in the chain records it as its
        ``parent_sha256``.
    """

    parent_sha256: str
    parent_n_items: int
    sequence: int
    appended_data: np.ndarray
    appended_item_keys: np.ndarray
    removed_labels: np.ndarray
    clusters: list[Cluster]
    retired_rows: np.ndarray = dataclasses.field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    meta: dict = dataclasses.field(default_factory=dict)
    manifest_sha256: str | None = dataclasses.field(
        default=None, compare=False
    )

    # ------------------------------------------------------------------
    @property
    def n_appended(self) -> int:
        """Number of appended data rows."""
        return int(np.asarray(self.appended_data).shape[0])

    @property
    def n_removed(self) -> int:
        """Number of retired/replaced parent cluster labels."""
        return int(np.asarray(self.removed_labels).size)

    @property
    def n_retired_rows(self) -> int:
        """Number of data rows this delta tombstones."""
        return int(np.asarray(self.retired_rows).size)

    @property
    def n_upserted(self) -> int:
        """Number of upserted (replacement or new) clusters."""
        return len(self.clusters)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> pathlib.Path:
        """Write the delta directory and return its resolved path.

        Same discipline as :meth:`DetectionSnapshot.save`: any previous
        manifest is removed first, arrays are written via temp + rename,
        the manifest last — a readable manifest certifies a complete
        delta, and interrupted saves read as missing-manifest errors.
        """
        path = pathlib.Path(path)
        array_dir = path / ARRAY_DIR
        array_dir.mkdir(parents=True, exist_ok=True)
        (path / MANIFEST_NAME).unlink(missing_ok=True)
        arrays: dict[str, np.ndarray] = {
            "appended_data": np.ascontiguousarray(
                self.appended_data, dtype=np.float64
            ),
            "appended_item_keys": np.ascontiguousarray(
                self.appended_item_keys, dtype=np.uint64
            ),
            "removed_labels": np.asarray(
                self.removed_labels, dtype=np.int64
            ),
            "retired_rows": np.asarray(
                self.retired_rows, dtype=np.int64
            ),
        }
        packed = pack_clusters(self.clusters)
        arrays.update({f"cluster_{k}": v for k, v in packed.items()})
        manifest_arrays = {
            name: _write_array(array_dir, name, arrays[name])
            for name in _DELTA_ARRAYS
        }
        manifest = {
            "format": DELTA_FORMAT,
            "schema_version": DELTA_SCHEMA_VERSION,
            "parent": {
                "sha256": self.parent_sha256,
                "n_items": int(self.parent_n_items),
                "sequence": int(self.sequence),
            },
            "counts": {
                "n_appended": self.n_appended,
                "n_removed": self.n_removed,
                "n_upserted": self.n_upserted,
                "n_retired_rows": self.n_retired_rows,
            },
            "meta": self.meta,
            "arrays": manifest_arrays,
        }
        try:
            payload = json.dumps(
                manifest, indent=2, sort_keys=True, default=_json_default
            )
        except TypeError as exc:
            raise SnapshotError(
                f"delta meta cannot be persisted: {exc}"
            ) from exc
        tmp = path / (MANIFEST_NAME + ".tmp")
        tmp.write_text(payload + "\n")
        tmp.replace(path / MANIFEST_NAME)
        self.manifest_sha256 = _sha256_of(path / MANIFEST_NAME)
        return path

    @classmethod
    def load(cls, path, *, mmap: bool = False) -> "SnapshotDelta":
        """Load and validate a delta directory, all-or-nothing.

        Every array file is existence-, size- and checksum-verified
        before anything is constructed, exactly like
        :meth:`DetectionSnapshot.load`.

        Raises
        ------
        SnapshotError
            Missing/unreadable manifest, wrong format, schema version
            newer than :data:`DELTA_SCHEMA_VERSION`, malformed parent
            section, missing array entry or file, truncated file, or
            checksum mismatch.
        """
        path = pathlib.Path(path)
        manifest = _read_manifest(
            path,
            fmt=DELTA_FORMAT,
            max_version=DELTA_SCHEMA_VERSION,
            kind="delta",
        )
        parent = manifest.get("parent")
        if (
            not isinstance(parent, dict)
            or not isinstance(parent.get("sha256"), str)
            or not isinstance(parent.get("n_items"), int)
            or not isinstance(parent.get("sequence"), int)
        ):
            raise SnapshotError(
                f"{path}: delta manifest parent section is invalid: "
                f"{parent!r}"
            )
        entries = manifest.get("arrays", {})
        # v1 deltas predate retirement: they carry no retired_rows
        # array and load with an empty tombstone set.
        names = (
            _DELTA_ARRAYS_V1
            if manifest["schema_version"] < 2
            else _DELTA_ARRAYS
        )
        arrays: dict[str, np.ndarray] = {
            name: _load_verified_array(
                path, name, entries.get(name), mmap=mmap
            )
            for name in names
        }
        retired_rows = arrays.get(
            "retired_rows", np.zeros(0, dtype=np.int64)
        )
        if np.asarray(retired_rows).ndim != 1:
            raise SnapshotError(
                f"{path}: retired_rows must be 1-D, got shape "
                f"{np.asarray(retired_rows).shape}"
            )
        appended = arrays["appended_data"]
        if appended.ndim != 2:
            raise SnapshotError(
                f"{path}: appended_data must be 2-D, got shape "
                f"{appended.shape}"
            )
        keys = arrays["appended_item_keys"]
        if keys.ndim != 2 or keys.shape[1] != appended.shape[0]:
            raise SnapshotError(
                f"{path}: appended_item_keys shape {keys.shape} does not "
                f"cover {appended.shape[0]} appended row(s)"
            )
        try:
            clusters = unpack_clusters(
                {
                    key[len("cluster_"):]: arrays[key]
                    for key in _CLUSTER_ARRAYS
                },
                n_items=int(parent["n_items"]) + int(appended.shape[0]),
            )
        except ValidationError as exc:
            raise SnapshotError(
                f"{path}: delta cluster arrays are inconsistent: {exc}"
            ) from exc
        return cls(
            parent_sha256=parent["sha256"],
            parent_n_items=int(parent["n_items"]),
            sequence=int(parent["sequence"]),
            appended_data=appended,
            appended_item_keys=keys,
            removed_labels=arrays["removed_labels"],
            clusters=clusters,
            retired_rows=retired_rows,
            meta=dict(manifest.get("meta", {})),
            manifest_sha256=_sha256_of(path / MANIFEST_NAME),
        )

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, snapshot: DetectionSnapshot) -> DetectionSnapshot:
        """Build the post-delta snapshot, or raise without side effects.

        Pure function: *snapshot* is never mutated, so a failing
        application (wrong parent, shape mismatch, label conflict)
        leaves the caller's serving state untouched.  The result carries
        this delta's :attr:`manifest_sha256` as its own identity, which
        is what lets the next delta in the chain verify against the
        in-memory state without a full snapshot ever being rewritten.

        Raises
        ------
        SnapshotError
            Parent mismatch (the snapshot's manifest SHA is not this
            delta's ``parent_sha256``, or the snapshot was never
            persisted and has none), item-count/dim/table mismatch, a
            removed label the parent does not hold, an upserted label
            that would duplicate a surviving parent cluster, or a
            retired row outside (or repeated within) the post-append
            matrix.
        """
        if snapshot.manifest_sha256 is None:
            raise SnapshotError(
                "cannot verify delta parentage: the serving snapshot has "
                "no manifest checksum (it was never saved); publish a "
                "base snapshot before applying deltas"
            )
        if snapshot.manifest_sha256 != self.parent_sha256:
            raise SnapshotError(
                f"delta (sequence {self.sequence}) does not apply to this "
                f"snapshot: parent {self.parent_sha256[:12]}..., serving "
                f"{snapshot.manifest_sha256[:12]}... — deltas must be "
                f"applied in chain order against their own base"
            )
        if snapshot.n_items != self.parent_n_items:
            raise SnapshotError(
                f"delta expects a parent with {self.parent_n_items} "
                f"item(s), snapshot has {snapshot.n_items}"
            )
        m = self.n_appended
        appended = np.asarray(self.appended_data, dtype=np.float64)
        if m and appended.shape[1] != snapshot.dim:
            raise SnapshotError(
                f"delta appends dim-{appended.shape[1]} rows to a "
                f"dim-{snapshot.dim} snapshot"
            )
        old_keys = np.asarray(snapshot.index_arrays["item_keys"])
        new_keys_part = np.asarray(self.appended_item_keys, dtype=np.uint64)
        if new_keys_part.shape[0] != old_keys.shape[0]:
            raise SnapshotError(
                f"delta carries keys for {new_keys_part.shape[0]} LSH "
                f"table(s), snapshot has {old_keys.shape[0]}"
            )
        removed = {int(label) for label in np.asarray(self.removed_labels)}
        parent_labels = {int(c.label) for c in snapshot.clusters}
        missing = removed - parent_labels
        if missing:
            raise SnapshotError(
                f"delta removes label(s) {sorted(missing)} the parent "
                f"snapshot does not hold"
            )
        surviving_labels = parent_labels - removed
        conflicts = sorted(
            int(c.label)
            for c in self.clusters
            if int(c.label) in surviving_labels
        )
        if conflicts:
            raise SnapshotError(
                f"delta upserts label(s) {conflicts} that still exist in "
                f"the parent snapshot (replacements must also appear in "
                f"removed_labels)"
            )
        n_total = snapshot.n_items + m
        for cluster in self.clusters:
            if cluster.size and int(cluster.members.max()) >= n_total:
                raise SnapshotError(
                    f"delta cluster {cluster.label} references item "
                    f"{int(cluster.members.max())} beyond the "
                    f"{n_total}-item post-append matrix"
                )
        retired_rows = np.asarray(self.retired_rows, dtype=np.int64)
        if retired_rows.size:
            if int(retired_rows.min()) < 0 or (
                int(retired_rows.max()) >= n_total
            ):
                raise SnapshotError(
                    f"delta retires row(s) outside the {n_total}-item "
                    f"post-append matrix "
                    f"(range {int(retired_rows.min())}.."
                    f"{int(retired_rows.max())})"
                )
            if np.unique(retired_rows).size != retired_rows.size:
                raise SnapshotError(
                    "delta retires the same row more than once"
                )
        old_data = np.asarray(snapshot.data)
        index_arrays = dict(snapshot.index_arrays)
        if m:
            data = np.vstack([old_data, appended])
            index_arrays["item_keys"] = np.hstack(
                [old_keys, new_keys_part]
            )
            index_arrays["active"] = np.concatenate(
                [
                    np.asarray(snapshot.index_arrays["active"], dtype=bool),
                    np.ones(m, dtype=bool),
                ]
            )
        else:
            data = old_data
        if retired_rows.size:
            # Tombstone the retired rows in the LSH visibility mask.
            # Copy before writing — apply() must never mutate the
            # parent snapshot's arrays, even in the m == 0 case where
            # index_arrays still aliases them.
            active = np.array(index_arrays["active"], dtype=bool)
            active[retired_rows] = False
            index_arrays["active"] = active
        clusters = [
            c for c in snapshot.clusters if int(c.label) not in removed
        ]
        clusters.extend(self.clusters)
        meta = dict(snapshot.meta)
        meta.update(self.meta)
        meta["delta_sequence"] = int(self.sequence)
        # Quality scores are fit-time facts: removed clusters lose
        # theirs, and upserted clusters arrive unannotated (their
        # scores would describe the pre-ingest geometry) — a served
        # delta therefore *invalidates* the touched clusters' gauges
        # until the next annotation pass.
        quality = (
            None
            if snapshot.quality is None
            else {
                int(label): dict(scores)
                for label, scores in snapshot.quality.items()
                if int(label) not in removed
            }
        )
        return DetectionSnapshot(
            data=data,
            config=snapshot.config,
            kernel=snapshot.kernel,
            lsh_r=snapshot.lsh_r,
            index_arrays=index_arrays,
            clusters=clusters,
            meta=meta,
            quality=quality,
            manifest_sha256=self.manifest_sha256,
        )
