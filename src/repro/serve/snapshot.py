"""Versioned on-disk snapshots of a fitted detection.

A snapshot is a directory holding plain ``.npy`` arrays plus a JSON
manifest (``manifest.json``) with a schema version and a SHA-256
checksum per array file.  It captures everything a serve-time process
needs to answer "which dominant cluster does this query belong to?"
without refitting:

* the data matrix (the paper's ``V``, the items the clusters live over);
* the fitted LSH state — Gaussian projections, segment offsets, key
  mixers and per-item bucket keys of every table
  (:meth:`repro.lsh.index.LSHIndex.export_state`), from which the CSR
  tables are rebuilt deterministically;
* the calibrated kernel (scaling factor ``k``, norm order ``p``) and
  the full :class:`~repro.core.config.ALIDConfig`;
* every dominant cluster's support and converged strategy
  (:func:`repro.core.results.pack_clusters` — the same packing the
  detection archive of :mod:`repro.io` uses).

Design rules:

* **Loads are all-or-nothing.**  A missing or truncated array file, a
  checksum mismatch, a malformed manifest, or a schema version newer
  than this library raises
  :class:`~repro.exceptions.SnapshotError`; corrupt state is never
  returned.
* **Round-trips are bit-identical.** ``load(save(state))`` restores hash
  keys, CSR tables, kernel and strategies exactly, so a reloaded
  snapshot assigns every query the same cluster and score the original
  process would.
* **Arrays are plain ``.npy`` files** so ``mmap=True`` can map the big
  payloads (data matrix, bucket keys) read-only instead of copying them
  — a multi-GB snapshot serves without materialising its matrix.
* **The manifest is written last**, so a directory with a readable
  manifest is a complete snapshot; interrupted saves are detected as
  missing-manifest errors, never as silent partial state.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib

import numpy as np

from repro.affinity.kernel import LaplacianKernel
from repro.affinity.oracle import AffinityCounters, AffinityOracle
from repro.core.config import ALIDConfig
from repro.core.results import Cluster, pack_clusters, unpack_clusters
from repro.exceptions import SnapshotError, ValidationError
from repro.lsh.index import LSHIndex

__all__ = ["DetectionSnapshot", "SCHEMA_VERSION", "SNAPSHOT_FORMAT"]

SCHEMA_VERSION = 1
SNAPSHOT_FORMAT = "repro-alid-detection-snapshot"
MANIFEST_NAME = "manifest.json"
ARRAY_DIR = "arrays"

# Every array a complete snapshot must carry.  The cluster_* entries are
# the pack_clusters() keys with a "cluster_" prefix.
_INDEX_ARRAYS = (
    "projections",
    "hash_offsets",
    "mixers",
    "item_keys",
    "active",
)
_CLUSTER_ARRAYS = (
    "cluster_members",
    "cluster_weights",
    "cluster_offsets",
    "cluster_densities",
    "cluster_labels",
    "cluster_seeds",
)
_REQUIRED_ARRAYS = ("data",) + _INDEX_ARRAYS + _CLUSTER_ARRAYS

_HASH_CHUNK = 1 << 20


def _json_default(value):
    """Coerce numpy scalars for the manifest; reject anything else.

    ``default=str`` would silently stringify unknown values (e.g. a
    ``delta`` passed as ``np.int32``), writing a manifest whose config
    section can never be loaded back — a snapshot bricked at save time.
    Coercing the common numpy cases keeps such configs round-tripping;
    genuinely unserialisable values fail the *save*, loudly.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"manifest value {value!r} ({type(value).__name__}) is not "
        f"JSON-serializable"
    )


def _sha256_of(path: pathlib.Path) -> str:
    """Streamed SHA-256 of a file (constant memory, works on huge arrays)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_HASH_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


@dataclasses.dataclass
class DetectionSnapshot:
    """A fitted detection, ready to persist or serve.

    Attributes
    ----------
    data:
        Data matrix ``(n, d)`` the detection ran over (may be a
        read-only memory map after an ``mmap=True`` load).
    config:
        The :class:`~repro.core.config.ALIDConfig` of the fit; serving
        reuses its ``tol`` as the Theorem 1 immunity tolerance.
    kernel:
        The calibrated Laplacian kernel (frozen scaling factor).
    lsh_r:
        Segment length the LSH tables were built with.
    index_arrays:
        The :meth:`repro.lsh.index.LSHIndex.export_state` dict.
    clusters:
        Dominant clusters with converged strategies (members, weights,
        density, label, seed).
    meta:
        Free-form provenance (method name, fit counters, ...).
    """

    data: np.ndarray
    config: ALIDConfig
    kernel: LaplacianKernel
    lsh_r: float
    index_arrays: dict[str, np.ndarray]
    clusters: list[Cluster]
    meta: dict = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_engine(
        cls,
        engine,
        clusters: list[Cluster],
        *,
        meta: dict | None = None,
    ) -> "DetectionSnapshot":
        """Capture a fitted :class:`~repro.core.alid.ALIDEngine`.

        Works for any engine-shaped object exposing ``oracle``,
        ``kernel``, ``config``, ``lsh_r`` and ``index`` — the batch
        engine and the streaming engine both qualify (the paper's §4.6
        server database holds exactly this state).
        """
        return cls(
            data=engine.oracle.data,
            config=engine.config,
            kernel=engine.kernel,
            lsh_r=float(engine.lsh_r),
            index_arrays=engine.index.export_state(),
            clusters=list(clusters),
            meta=dict(meta or {}),
        )

    @classmethod
    def from_result(cls, detector, result) -> "DetectionSnapshot":
        """Capture an :class:`~repro.core.alid.ALID` fit and its result.

        Persists the *dominant* clusters of ``result`` — the serve-time
        assignment targets — plus fit provenance in ``meta``.
        """
        if getattr(detector, "engine_", None) is None:
            raise SnapshotError(
                "detector has no fitted engine_; call fit() before "
                "snapshotting"
            )
        meta = {
            "method": result.method,
            "n_items": int(result.n_items),
            "fit_entries_computed": (
                int(result.counters.entries_computed)
                if result.counters is not None
                else None
            ),
        }
        return cls.from_engine(detector.engine_, result.clusters, meta=meta)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        """Number of indexed items."""
        return int(self.data.shape[0])

    @property
    def dim(self) -> int:
        """Feature dimensionality."""
        return int(self.data.shape[1])

    @property
    def n_clusters(self) -> int:
        """Number of persisted dominant clusters."""
        return len(self.clusters)

    # ------------------------------------------------------------------
    # runtime reconstruction
    # ------------------------------------------------------------------
    def restore_index(self) -> LSHIndex:
        """Rebuild the LSH index (bit-identical buckets, no re-hashing)."""
        return LSHIndex.from_state(
            self.data, r=self.lsh_r, **self.index_arrays
        )

    def make_oracle(
        self, counters: AffinityCounters | None = None
    ) -> AffinityOracle:
        """An instrumented oracle over the snapshot's data and kernel."""
        return AffinityOracle(
            self.data,
            self.kernel,
            counters=counters if counters is not None else AffinityCounters(),
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> pathlib.Path:
        """Write the snapshot directory and return its resolved path.

        Arrays are written first, the manifest last — a readable
        manifest therefore certifies a complete snapshot.  When saving
        into an existing snapshot directory, any previous manifest is
        removed *before* the arrays are touched, so an interrupted
        overwrite is detected as a missing manifest (never as a stale
        manifest over mixed old/new arrays).  Serving processes should
        :meth:`load` a snapshot fully and swap atomically in memory
        rather than read a directory being rewritten.
        """
        path = pathlib.Path(path)
        array_dir = path / ARRAY_DIR
        array_dir.mkdir(parents=True, exist_ok=True)
        (path / MANIFEST_NAME).unlink(missing_ok=True)
        arrays: dict[str, np.ndarray] = {
            "data": np.ascontiguousarray(self.data, dtype=np.float64)
        }
        arrays.update(self.index_arrays)
        packed = pack_clusters(self.clusters)
        arrays.update({f"cluster_{k}": v for k, v in packed.items()})
        manifest_arrays: dict[str, dict] = {}
        for name in _REQUIRED_ARRAYS:
            file_path = array_dir / f"{name}.npy"
            # Write-to-temp + rename: never truncate an existing .npy in
            # place.  A snapshot loaded with mmap=True from this very
            # directory keeps reading its (now anonymous) old inode, so
            # re-saving an artifact over itself is safe, and a crash
            # mid-write leaves the previous array files intact (with
            # the manifest already removed above, the directory reads
            # as a clean missing-manifest state).
            tmp_path = array_dir / f"{name}.tmp.npy"  # np.save keeps .npy
            np.save(tmp_path, arrays[name])
            tmp_path.replace(file_path)
            manifest_arrays[name] = {
                "file": f"{ARRAY_DIR}/{name}.npy",
                "sha256": _sha256_of(file_path),
                "bytes": file_path.stat().st_size,
                "shape": list(np.asarray(arrays[name]).shape),
                "dtype": str(np.asarray(arrays[name]).dtype),
            }
        manifest = {
            "format": SNAPSHOT_FORMAT,
            "schema_version": SCHEMA_VERSION,
            "config": dataclasses.asdict(self.config),
            "kernel": {"k": self.kernel.k, "p": self.kernel.p},
            "lsh": {"r": float(self.lsh_r)},
            "counts": {
                "n_items": self.n_items,
                "dim": self.dim,
                "n_clusters": self.n_clusters,
            },
            "meta": self.meta,
            "arrays": manifest_arrays,
        }
        try:
            payload = json.dumps(
                manifest, indent=2, sort_keys=True, default=_json_default
            )
        except TypeError as exc:
            raise SnapshotError(
                f"snapshot config/meta cannot be persisted: {exc}"
            ) from exc
        tmp = path / (MANIFEST_NAME + ".tmp")
        tmp.write_text(payload + "\n")
        tmp.replace(path / MANIFEST_NAME)
        return path

    @classmethod
    def load(cls, path, *, mmap: bool = False) -> "DetectionSnapshot":
        """Load and validate a snapshot directory.

        Every array file is existence-, size- and checksum-verified
        before anything is constructed (verification streams the file,
        so even ``mmap=True`` loads never hold a full copy in memory).

        Parameters
        ----------
        path:
            Snapshot directory written by :meth:`save`.
        mmap:
            Map array files read-only (``numpy.load(mmap_mode="r")``)
            instead of reading them into memory.  Results are pinned
            identical to an eager load; only residency differs.

        Raises
        ------
        SnapshotError
            Missing/unreadable manifest, wrong format, schema version
            newer than :data:`SCHEMA_VERSION`, missing array entry or
            file, truncated file, or checksum mismatch.
        """
        path = pathlib.Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise SnapshotError(
                f"{path} is not a snapshot directory: no {MANIFEST_NAME} "
                f"(an interrupted save never writes one)"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(
                f"{manifest_path} is not readable JSON: {exc}"
            ) from exc
        if manifest.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"{path}: manifest format {manifest.get('format')!r} is not "
                f"{SNAPSHOT_FORMAT!r}"
            )
        version = manifest.get("schema_version")
        if not isinstance(version, int) or version < 1:
            raise SnapshotError(
                f"{path}: invalid schema_version {version!r}"
            )
        if version > SCHEMA_VERSION:
            raise SnapshotError(
                f"{path}: snapshot schema_version {version} is newer than "
                f"this library understands (max {SCHEMA_VERSION}); upgrade "
                f"the library instead of serving corrupt state"
            )
        entries = manifest.get("arrays", {})
        arrays: dict[str, np.ndarray] = {}
        for name in _REQUIRED_ARRAYS:
            entry = entries.get(name)
            if not isinstance(entry, dict) or "file" not in entry:
                raise SnapshotError(
                    f"{path}: manifest has no array entry for {name!r}"
                )
            file_path = path / entry["file"]
            if not file_path.is_file():
                raise SnapshotError(
                    f"{path}: array file {entry['file']} is missing"
                )
            expected_bytes = entry.get("bytes")
            actual_bytes = file_path.stat().st_size
            if expected_bytes is not None and actual_bytes != expected_bytes:
                raise SnapshotError(
                    f"{path}: array file {entry['file']} is truncated or "
                    f"padded ({actual_bytes} bytes, manifest says "
                    f"{expected_bytes})"
                )
            digest = _sha256_of(file_path)
            if digest != entry.get("sha256"):
                raise SnapshotError(
                    f"{path}: checksum mismatch for {entry['file']} "
                    f"(file {digest[:12]}..., manifest "
                    f"{str(entry.get('sha256'))[:12]}...)"
                )
            try:
                arrays[name] = np.load(
                    file_path,
                    mmap_mode="r" if mmap else None,
                    allow_pickle=False,
                )
            except ValueError as exc:
                raise SnapshotError(
                    f"{path}: array file {entry['file']} is not a valid "
                    f".npy payload: {exc}"
                ) from exc
        try:
            config = ALIDConfig(**manifest["config"])
            kernel = LaplacianKernel(
                k=float(manifest["kernel"]["k"]),
                p=float(manifest["kernel"]["p"]),
            )
            lsh_r = float(manifest["lsh"]["r"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"{path}: manifest config/kernel section is invalid: {exc}"
            ) from exc
        try:
            clusters = unpack_clusters(
                {
                    key[len("cluster_"):]: arrays[key]
                    for key in _CLUSTER_ARRAYS
                },
                n_items=int(arrays["data"].shape[0]),
            )
        except ValidationError as exc:
            raise SnapshotError(
                f"{path}: cluster arrays are inconsistent: {exc}"
            ) from exc
        return cls(
            data=arrays["data"],
            config=config,
            kernel=kernel,
            lsh_r=lsh_r,
            index_arrays={name: arrays[name] for name in _INDEX_ARRAYS},
            clusters=clusters,
            meta=dict(manifest.get("meta", {})),
        )
