"""Batching router: scatter query blocks to shard workers, merge verdicts.

The reducer half of sharded serving.  Each shard worker answers a query
block with a **partial verdict** — its best local candidate per query
(payoff margin, winning cluster's density and label) plus its local
work accounting.  The router

1. **micro-batches** incoming ``(q, d)`` blocks into chunks of at most
   ``max_batch`` queries (bounds per-request latency and worker-pipe
   payloads under heavy traffic),
2. **scatters** every micro-batch to all live workers (cluster-sharded
   serving is a broadcast: any shard might own the winning cluster),
3. **merges** the partial verdicts with the densest-wins global rule.

The merge (:func:`merge_partials`) is the exact cross-shard image of the
single-process tie-break: the single-process assigner scores clusters in
densest-first order and only a *strictly* larger margin displaces the
incumbent, so on equal margins the denser cluster (then the smaller
label) wins.  Each shard already resolves its local candidates that way,
and comparing ``(margin, density, -label)`` lexicographically across
shards reproduces the global order — which is what makes sharded
assignments byte-identical to :class:`~repro.serve.service.ClusterService`
(pinned by ``tests/test_serve_sharded.py``).

Degraded mode: a worker that died or errors mid-batch is handled by
policy — ``on_worker_error="raise"`` (default) propagates a
:class:`~repro.exceptions.WorkerError`; ``"skip"`` serves the batch from
the surviving shards and reports the gap in the routing info (queries
whose winning cluster lived on the dead shard degrade to their best
surviving candidate or noise).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.exceptions import ValidationError, WorkerError
from repro.obs.trace import TID_ROUTER, TID_SHARD_BASE
from repro.serve.assigner import SHORTLIST_MODES, Assignment

__all__ = ["BatchingRouter", "merge_partials"]


def merge_partials(partials: list[dict], n_queries: int) -> dict:
    """Merge per-shard partial verdicts with the densest-wins rule.

    Parameters
    ----------
    partials:
        One dict per responding shard, with keys ``labels`` (int64,
        -1 for local noise), ``scores`` (best local payoff margin,
        ``-inf`` when nothing was shortlisted), ``density`` (density of
        the winning local cluster, ``-inf`` for local noise),
        ``n_candidates`` and ``entries`` (local work).
    n_queries:
        Number of queries the partials answer for.

    Returns
    -------
    dict
        Merged ``labels``, ``scores``, ``n_candidates`` (summed — shard
        shortlists are disjoint by cluster) and ``entries`` (summed
        serve-side work, equal to the single-process accounting).
    """
    labels = np.full(n_queries, -1, dtype=np.int64)
    scores = np.full(n_queries, -np.inf)
    density = np.full(n_queries, -np.inf)
    n_candidates = np.zeros(n_queries, dtype=np.int64)
    entries = 0
    for partial in partials:
        p_labels = np.asarray(partial["labels"], dtype=np.int64)
        p_scores = np.asarray(partial["scores"], dtype=np.float64)
        p_density = np.asarray(partial["density"], dtype=np.float64)
        if p_labels.shape != (n_queries,):
            raise WorkerError(
                f"partial verdict answers {p_labels.shape} queries, "
                f"expected ({n_queries},)"
            )
        n_candidates += np.asarray(partial["n_candidates"], dtype=np.int64)
        entries += int(partial["entries"])
        # Strictly-better margin wins; margin ties fall to the denser
        # cluster, then the smaller label — the same order the
        # single-process densest-first scan induces.
        better = p_scores > scores
        ties = p_scores == scores
        better |= ties & (p_density > density)
        better |= (
            ties
            & (p_density == density)
            & (p_labels >= 0)
            & ((labels < 0) | (p_labels < labels))
        )
        labels[better] = p_labels[better]
        scores[better] = p_scores[better]
        density[better] = p_density[better]
    return {
        "labels": labels,
        "scores": scores,
        "n_candidates": n_candidates,
        "entries": entries,
    }


class BatchingRouter:
    """Scatter/gather front over a pool of shard workers.

    Parameters
    ----------
    workers:
        Live :class:`~repro.serve.sharded.ShardWorker` handles (one per
        shard).
    max_batch:
        Micro-batch size: larger blocks are split into chunks of at most
        this many queries before scattering.  Assignments are invariant
        to the split; scores may differ in the last float64 bit across
        different splits (BLAS reduction order), exactly as documented
        for the single-process modes.
    on_worker_error:
        ``"raise"`` (default) turns any dead or erroring worker into a
        :class:`~repro.exceptions.WorkerError`; ``"skip"`` serves from
        the surviving shards and records the degradation.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` the
        per-batch metric deltas piggybacked on worker replies are
        merged into.  Because every reply carries the delta for exactly
        the work it answered, the merged histograms here are the exact
        bucket-level sum of the workers' — including across a mid-run
        heal, where a replacement worker's fresh registry simply starts
        contributing deltas from zero.
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder`; when set,
        each micro-batch records a ``scatter`` span and a ``merge``
        span on the router lane plus one ``shard_assign`` span per
        responding shard on its own lane (submit-to-collect on the
        router's clock), all tied by a deterministic trace id.
    """

    def __init__(
        self,
        workers: list,
        *,
        max_batch: int = 1024,
        on_worker_error: str = "raise",
        registry=None,
        tracer=None,
    ):
        if not workers:
            raise ValidationError("router needs at least one shard worker")
        if max_batch < 1:
            raise ValidationError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        if on_worker_error not in ("raise", "skip"):
            raise ValidationError(
                f"on_worker_error must be 'raise' or 'skip', "
                f"got {on_worker_error!r}"
            )
        self.workers = list(workers)
        self.max_batch = int(max_batch)
        self.on_worker_error = on_worker_error
        self.registry = registry
        self.tracer = tracer
        self._block_seq = 0
        self.dim = int(self.workers[0].info["dim"])
        # Worker pipes carry one request/response stream each; every
        # pipe interaction (routing and :meth:`describe_workers`) is
        # serialized under this lock so two threads can never
        # interleave their submits and steal each other's replies (the
        # workers still compute one batch in parallel across
        # processes).
        self._route_lock = threading.Lock()
        # In-flight accounting for hot reload: a caller that captured
        # this router retains it *before* routing; reload() stops the
        # old pool only once the count drains to zero (:meth:`retain`
        # / :meth:`release` / :meth:`wait_idle`).
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    # ------------------------------------------------------------------
    def route(
        self, queries: np.ndarray, *, shortlist: str = "lsh"
    ) -> tuple[Assignment, dict]:
        """Assign a query block across all shards and merge the verdicts.

        Returns the merged :class:`~repro.serve.assigner.Assignment`
        plus a routing-info dict (``micro_batches``, ``shards_used``,
        ``degraded``, ``failed_shards``).
        """
        if shortlist not in SHORTLIST_MODES:
            raise ValidationError(
                f"shortlist must be one of {SHORTLIST_MODES}, "
                f"got {shortlist!r}"
            )
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValidationError(
                f"queries must be (q, {self.dim}), got shape {queries.shape}"
            )
        if not np.all(np.isfinite(queries)):
            raise ValidationError("queries contain NaN or infinite values")
        q = queries.shape[0]
        labels = np.full(q, -1, dtype=np.int64)
        scores = np.full(q, -np.inf)
        n_candidates = np.zeros(q, dtype=np.int64)
        entries = 0
        failed: dict[int, str] = {}
        micro_batches = 0
        shards_used = None
        with self._route_lock:
            for lo in range(0, q, self.max_batch):
                block = queries[lo : lo + self.max_batch]
                self._block_seq += 1
                merged, used = self._route_block(block, shortlist, failed)
                micro_batches += 1
                shards_used = (
                    used if shards_used is None else min(shards_used, used)
                )
                hi = lo + block.shape[0]
                labels[lo:hi] = merged["labels"]
                scores[lo:hi] = merged["scores"]
                n_candidates[lo:hi] = merged["n_candidates"]
                entries += merged["entries"]
        info = {
            "micro_batches": micro_batches,
            "shards_used": 0 if shards_used is None else shards_used,
            "degraded": bool(failed),
            "failed_shards": {
                shard_id: message for shard_id, message in sorted(failed.items())
            },
        }
        return (
            Assignment(
                labels=labels,
                scores=scores,
                n_candidates=n_candidates,
                entries_computed=entries,
            ),
            info,
        )

    def retain(self) -> "BatchingRouter":
        """Mark one caller as about to route through this router.

        Callers retain under the lock that also guards the router swap
        (see :meth:`repro.serve.sharded.ShardedClusterService.assign`),
        so a hot reload can never observe "idle" between a batch
        capturing the router and actually routing.
        """
        with self._inflight_cv:
            self._inflight += 1
        return self

    def release(self) -> None:
        """Undo one :meth:`retain` (call from a ``finally`` block)."""
        with self._inflight_cv:
            self._inflight -= 1
            self._inflight_cv.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no caller holds this router (True) or timeout.

        Used by hot reload: an old pool must not be stopped while a
        batch that captured its router is still using (or about to
        use) it.  Each in-flight request is itself bounded by the
        workers' ``request_timeout``, so an unbounded wait here still
        terminates.
        """
        with self._inflight_cv:
            return self._inflight_cv.wait_for(
                lambda: self._inflight == 0, timeout
            )

    def describe_workers(self) -> list[dict]:
        """Live facts from every worker, serialized with routing.

        Sharing the route lock keeps monitoring traffic off the pipes
        while a batch is mid-flight — an interleaved ``describe`` would
        steal the batch's replies and falsely desync healthy workers.
        """
        out: list[dict] = []
        with self._route_lock:
            for worker in self.workers:
                try:
                    out.append(worker.describe())
                except WorkerError as exc:
                    out.append(
                        {"shard_id": worker.shard_id, "error": str(exc)}
                    )
        return out

    def _route_block(
        self, block: np.ndarray, shortlist: str, failed: dict
    ) -> tuple[dict, int]:
        """Scatter one micro-batch, gather partials, merge. Returns used count.

        Every submitted request is collected (or its worker marked
        failed) *before* any policy error propagates — a raise must
        never leave an unread reply in a healthy worker's pipe, where
        it would desync the next request.
        """
        fresh_failures: list[str] = []
        tracer = self.tracer
        trace_id = f"blk-{self._block_seq}"

        def fail(worker, message: str) -> None:
            failed[worker.shard_id] = message
            fresh_failures.append(
                f"shard worker {worker.shard_id} failed: {message}"
            )

        t_scatter = tracer.now() if tracer is not None else 0.0
        pending = []
        for worker in self.workers:
            if worker.shard_id in failed:
                continue
            if not worker.alive:
                fail(worker, "worker process is not alive")
                continue
            try:
                seq = worker.submit("assign", block, shortlist)
            except WorkerError as exc:
                fail(worker, str(exc))
                continue
            pending.append((worker, seq))
        if tracer is not None:
            tracer.record(
                "scatter",
                t_scatter,
                tracer.now(),
                trace_id=trace_id,
                tid=TID_ROUTER,
                rows=int(block.shape[0]),
                shards=len(pending),
            )
        partials = []
        for worker, seq in pending:
            try:
                partial = worker.collect(seq)
            except WorkerError as exc:
                fail(worker, str(exc))
                continue
            if tracer is not None:
                tracer.record(
                    "shard_assign",
                    t_scatter,
                    tracer.now(),
                    trace_id=trace_id,
                    tid=TID_SHARD_BASE + int(worker.shard_id),
                    shard=int(worker.shard_id),
                )
            # Workers piggyback their metric deltas on every reply;
            # merging here (not in merge_partials) keeps the verdict
            # merge purely mathematical.
            delta = partial.pop("metrics", None)
            if delta and self.registry is not None:
                self.registry.merge(delta)
            partials.append(partial)
        if fresh_failures and self.on_worker_error == "raise":
            raise WorkerError(
                "; ".join(fresh_failures)
                + " (pass on_worker_error='skip' for degraded serving)"
            )
        if not partials:
            raise WorkerError(
                "no shard worker answered the batch; every shard is dead "
                f"({len(self.workers)} worker(s), failures: {failed})"
            )
        if tracer is None:
            return merge_partials(partials, block.shape[0]), len(partials)
        t_merge = tracer.now()
        merged = merge_partials(partials, block.shape[0])
        tracer.record(
            "merge",
            t_merge,
            tracer.now(),
            trace_id=trace_id,
            tid=TID_ROUTER,
            shards=len(partials),
        )
        return merged, len(partials)
