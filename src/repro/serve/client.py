"""connect(): one serving client API over both service backends.

The serve tier grew two fronts with the same verbs — the in-process
:class:`~repro.serve.service.ClusterService` and the multi-process
:class:`~repro.serve.sharded.ShardedClusterService` — each constructed
differently (snapshot directory vs shard-plan directory vs in-memory
snapshot, with or without a planning step).  :func:`connect` collapses
the construction story to one call::

    handle = repro.serve.connect(source)             # single-process
    handle = repro.serve.connect(source, workers=4)  # sharded pool

and both return objects satisfying the :class:`ClusterHandle` protocol:
``assign`` / ``apply_delta`` / ``reload`` / ``stats`` / ``close`` (plus
context-manager use).  The two backends already agree on the ``assign``
signature and the two-scope ``stats`` schema, so code written against
the handle runs unchanged on either.

What *source* may be:

* a **snapshot directory** — served in-process (``workers=None``/1) or
  sharded on the fly (``workers>=2``; the shard set lands in a managed
  scratch directory that :meth:`ClusterHandle.close` removes);
* a **shard-plan directory** (contains ``plan.json``) — always the
  sharded backend, one worker per planned shard (``workers`` must be
  omitted or match the plan);
* an in-memory :class:`~repro.serve.snapshot.DetectionSnapshot` —
  served directly, or planned into the scratch directory when sharded.

Delta support comes for free: ``connect`` wires the parent snapshot
through to the sharded backend, so
:meth:`~repro.serve.sharded.ShardedClusterService.apply_delta` performs
its partial (touched-shards-only) reload on handles of either kind.
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ValidationError
from repro.serve.assigner import Assignment
from repro.serve.plan import PLAN_NAME, ShardPlan, ShardPlanner
from repro.serve.service import ClusterService
from repro.serve.sharded import ShardedClusterService
from repro.serve.snapshot import DetectionSnapshot

__all__ = ["ClusterHandle", "connect"]


@runtime_checkable
class ClusterHandle(Protocol):
    """The unified serving surface both backends satisfy.

    ``isinstance(obj, ClusterHandle)`` checks structurally (runtime
    protocol): any object with these methods qualifies — which is
    exactly the contract :func:`connect` promises, no matter which
    backend it picked.
    """

    def assign(
        self, queries: np.ndarray, *, shortlist: str = "lsh"
    ) -> Assignment:
        """Assign a query batch against the currently served state."""
        ...  # pragma: no cover - protocol signature

    def apply_delta(self, source, *, mmap: bool = False):
        """Hot-apply an incremental snapshot delta."""
        ...  # pragma: no cover - protocol signature

    def reload(self, source) -> None:
        """Atomic hot-swap to a newer full artifact."""
        ...  # pragma: no cover - protocol signature

    def stats(self) -> dict:
        """Two-scope serving statistics (lifetime + per-snapshot)."""
        ...  # pragma: no cover - protocol signature

    def close(self) -> None:
        """Release the served state; idempotent."""
        ...  # pragma: no cover - protocol signature


class _ScratchShardedService(ShardedClusterService):
    """Sharded service over a connect-managed scratch shard directory.

    Identical to its base in every serving behavior; :meth:`close`
    additionally removes the scratch directory ``connect`` planned the
    shards into (the caller never sees or owns that path).
    """

    _scratch: pathlib.Path | None = None

    def close(self) -> None:
        """Stop the pool, then remove the managed scratch directory."""
        super().close()
        scratch, self._scratch = self._scratch, None
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def connect(
    source,
    *,
    workers: int | None = None,
    mmap: bool = False,
    **kwargs,
) -> ClusterHandle:
    """Open a serving handle over *source*, picking the right backend.

    Parameters
    ----------
    source:
        Snapshot directory, shard-plan directory (``plan.json``
        present), or in-memory
        :class:`~repro.serve.snapshot.DetectionSnapshot`.
    workers:
        ``None`` or ``1`` serves in-process; ``>= 2`` serves from that
        many shard worker processes.  For a shard-plan *source* the pool
        size is the plan's — pass ``workers`` only if it matches.
    mmap:
        Map array files read-only instead of copying (single-process
        backend; shard workers always mmap their shards).
    **kwargs:
        Passed through to the sharded backend (``max_batch``,
        ``on_worker_error``, ``start_timeout``, ``strategy``;
        ``parent_source`` for a shard-plan *source* that should accept
        deltas — snapshot sources wire it automatically).
        ``registry`` / ``tracer`` (the :mod:`repro.obs` hooks) are
        accepted by **both** backends.

    Returns
    -------
    ClusterHandle
        A running service; ``with connect(...) as handle:`` closes it
        on exit.

    Raises
    ------
    ValidationError
        Unusable *workers* value, or worker/plan mismatch.
    SnapshotError
        Corrupt or missing artifacts (from the backend loaders).
    """
    if workers is not None and workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    if isinstance(source, (str, pathlib.Path)):
        root = pathlib.Path(source)
        if (root / PLAN_NAME).is_file():
            plan = ShardPlan.load(root)
            if workers is not None and workers != plan.n_shards:
                raise ValidationError(
                    f"source {root} is a {plan.n_shards}-shard plan; "
                    f"workers={workers} cannot resize it — re-plan the "
                    f"snapshot or drop the workers argument"
                )
            kwargs.pop("strategy", None)
            return ShardedClusterService(root, **kwargs)
    if workers is None or workers == 1:
        single_kwargs = {
            key: kwargs.pop(key)
            for key in ("registry", "tracer")
            if key in kwargs
        }
        if kwargs:
            raise ValidationError(
                f"unknown single-process options: {sorted(kwargs)}"
            )
        return ClusterService(source, mmap=mmap, **single_kwargs)
    strategy = kwargs.pop("strategy", "balanced")
    scratch = pathlib.Path(
        tempfile.mkdtemp(prefix="repro-connect-shards-")
    )
    try:
        ShardPlanner(n_shards=workers, strategy=strategy).plan(
            source, scratch
        )
        service = _ScratchShardedService(
            scratch, parent_source=source, **kwargs
        )
    except BaseException:
        shutil.rmtree(scratch, ignore_errors=True)
        raise
    service._scratch = scratch
    return service
