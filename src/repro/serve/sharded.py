"""Multi-worker sharded serving over a planned shard set.

The process architecture behind the ROADMAP's serving-scale lever:

::

    ShardPlanner.plan(snapshot, root)                     (offline)
            |
        shard_root/  (plan.json + one DetectionSnapshot per shard)
            |
    ShardedClusterService(shard_root)                     (serve time)
        |-- ShardWorker 0  (process, mmap-loads shard_000 only)
        |-- ShardWorker 1  (process, mmap-loads shard_001 only)
        |        ...each runs the unmodified ClusterAssigner locally
        '-- BatchingRouter: micro-batch -> scatter -> densest-wins merge

Each worker is a separate OS process that loads **only its shard**, with
``mmap=True`` — the shard's data matrix stays a file-backed buffer, so
neither the router process nor any worker ever holds a full-matrix copy
(the router holds no arrays at all; it reads ``plan.json`` and worker
handshakes).  Requests and partial verdicts travel over
``multiprocessing`` pipes with the out-of-band pickle framing of
:mod:`repro.serve.ipc` — query and verdict arrays ride as raw buffers
and are rebuilt as zero-copy views on the receiving side, cutting the
per-micro-batch copy cost of the stock in-band pickling.

Guarantees, pinned by ``tests/test_serve_sharded.py``:

* **Exactness** — with every worker alive, assignments are
  byte-identical to the single-process
  :class:`~repro.serve.service.ClusterService` on the same snapshot and
  queries, and the summed serve-side ``entries_computed`` matches
  exactly (each (query, cluster) pair is scored in exactly one shard;
  see :mod:`repro.serve.plan` for why the decomposition is exact).
* **Atomic hot reload** — :meth:`ShardedClusterService.reload` builds
  and handshakes a complete new worker pool off to the side (plan
  checksums verified, every worker loaded) before swapping; a failure
  at any point leaves the old pool serving untouched.
* **Degraded serving** — with ``on_worker_error="skip"``, a dead worker
  removes only its shard's clusters from consideration; surviving
  shards keep answering and the degradation is surfaced in
  :meth:`ShardedClusterService.stats`.  The default policy raises
  :class:`~repro.exceptions.WorkerError` instead.
* **Self-healing** — :meth:`ShardedClusterService.heal` respawns dead
  workers from their still-valid on-disk shard artifacts (checksums
  re-verified on load) and swaps them in behind a drained router;
  post-heal assignments are byte-identical to a never-crashed pool.
  :class:`~repro.serve.supervisor.ShardSupervisor` automates the
  watch-and-heal loop; ``tests/test_serve_faults.py`` pins both.

Stats follow the same two-scope semantics as the single-process
service: top-level counters are lifetime, the ``"snapshot"`` block
resets on each successful reload.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import threading
import time
import warnings

import numpy as np

from repro.exceptions import SnapshotError, ValidationError, WorkerError
from repro.obs.metrics import MetricsRegistry, default_latency_bounds_ms
from repro.obs.trace import TID_SUPERVISOR
from repro.serve.assigner import Assignment, ClusterAssigner
from repro.serve.ipc import recv_message, send_message
from repro.serve.plan import ShardPlan, ShardPlanner, replan_for_delta
from repro.serve.router import BatchingRouter
from repro.serve.service import _ServingCounters
from repro.serve.snapshot import DetectionSnapshot, SnapshotDelta

__all__ = ["ShardWorker", "ShardedClusterService"]


def _mp_context():
    """Fork when the platform has it (cheap), spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _describe_payload(shard_dir: str, snapshot: DetectionSnapshot) -> dict:
    """The worker's handshake/describe payload (shape + residency facts)."""
    data = snapshot.data
    filename = getattr(data, "filename", None)
    return {
        "shard_dir": str(shard_dir),
        "pid": os.getpid(),
        "n_items": snapshot.n_items,
        "dim": snapshot.dim,
        "n_clusters": snapshot.n_clusters,
        "labels": [int(c.label) for c in snapshot.clusters],
        "shard_id": snapshot.meta.get("shard_id"),
        "data_type": type(data).__name__,
        "data_filename": None if filename is None else str(filename),
        "quality": (
            None
            if snapshot.quality is None
            else {
                int(label): dict(scores)
                for label, scores in snapshot.quality.items()
            }
        ),
    }


def _worker_main(shard_dir: str, conn, mmap: bool) -> None:
    """Entry point of one shard worker process.

    Loads the shard snapshot (checksum-verified, ``mmap`` by default so
    the data matrix stays file-backed), builds the ordinary
    :class:`ClusterAssigner` over it, then answers requests until the
    pipe closes or a ``stop`` arrives.  Every failure is reported over
    the pipe — the worker never dies silently while the pipe is open.

    Telemetry: the worker keeps its own
    :class:`~repro.obs.metrics.MetricsRegistry` and piggybacks a
    ``"metrics"`` delta (:meth:`~repro.obs.metrics.MetricsRegistry.flush_delta`)
    on **every** assign reply — the delta rides the same pickle-5
    framing as the verdict arrays, so the parent's merged histograms
    are the exact bucket-level sum of what the workers observed, and a
    healed worker's fresh registry simply resumes the delta stream from
    zero (parent totals stay monotone).
    """
    try:
        snapshot = DetectionSnapshot.load(shard_dir, mmap=mmap)
        assigner = ClusterAssigner(snapshot)
        labels = np.asarray(
            [c.label for c in snapshot.clusters], dtype=np.int64
        )
        densities = np.asarray(
            [c.density for c in snapshot.clusters], dtype=np.float64
        )
        label_order = np.argsort(labels, kind="stable")
        sorted_labels = labels[label_order]
        sorted_densities = densities[label_order]
        registry = MetricsRegistry(component="shard_worker")
        shard_label = str(snapshot.meta.get("shard_id"))
        m_assign_ms = registry.histogram(
            "shard_assign_ms",
            "Per-shard local assign latency (ms)",
            bounds=default_latency_bounds_ms(),
            shard=shard_label,
        )
        m_batches = registry.counter(
            "shard_batches_total",
            "Query batches answered by this shard",
            shard=shard_label,
        )
        m_queries = registry.counter(
            "shard_queries_total",
            "Query rows answered by this shard",
            shard=shard_label,
        )
        m_entries = registry.counter(
            "shard_entries_total",
            "Affinity entries computed by this shard",
            shard=shard_label,
        )
    except BaseException as exc:  # noqa: BLE001 - reported over the pipe
        try:
            send_message(conn, ("failed", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    send_message(conn, ("ready", _describe_payload(shard_dir, snapshot)))
    while True:
        try:
            message = recv_message(conn)
        except (EOFError, OSError):
            break
        command = message[0]
        if command == "stop":
            break
        seq = message[1]
        try:
            if command == "assign":
                queries, shortlist = message[2], message[3]
                t_start = time.perf_counter()
                result = assigner.assign(queries, shortlist=shortlist)
                density = np.full(result.labels.size, -np.inf)
                hit = result.labels >= 0
                if hit.any():
                    positions = np.searchsorted(
                        sorted_labels, result.labels[hit]
                    )
                    density[hit] = sorted_densities[positions]
                m_assign_ms.observe(
                    (time.perf_counter() - t_start) * 1e3
                )
                m_batches.inc()
                m_queries.inc(int(result.labels.size))
                m_entries.inc(int(result.entries_computed))
                send_message(
                    conn,
                    (
                        "ok",
                        seq,
                        {
                            "labels": result.labels,
                            "scores": result.scores,
                            "density": density,
                            "n_candidates": result.n_candidates,
                            "entries": result.entries_computed,
                            "metrics": registry.flush_delta(),
                        },
                    ),
                )
            elif command == "describe":
                send_message(
                    conn, ("ok", seq, _describe_payload(shard_dir, snapshot))
                )
            else:
                send_message(conn, ("error", seq, f"unknown command {command!r}"))
        except Exception as exc:  # noqa: BLE001 - reported, worker stays up
            send_message(conn, ("error", seq, f"{type(exc).__name__}: {exc}"))
    conn.close()


class ShardWorker:
    """Parent-side handle of one shard worker process.

    Parameters
    ----------
    shard_dir:
        Directory of the shard's :class:`DetectionSnapshot`.
    shard_id:
        Position of the shard in its plan (used by router bookkeeping).
    mmap:
        Load the shard memory-mapped (default; the point of sharding is
        that no process materialises matrices it does not own).
    start_timeout:
        Seconds to wait for the worker's ready handshake before the
        start is abandoned (:class:`WorkerError`).
    request_timeout:
        Seconds to wait for any single response (:class:`WorkerError`
        on expiry; the worker is considered dead afterwards).
    """

    def __init__(
        self,
        shard_dir,
        shard_id: int,
        *,
        mmap: bool = True,
        start_timeout: float = 120.0,
        request_timeout: float = 300.0,
    ):
        self.shard_id = int(shard_id)
        self.shard_dir = pathlib.Path(shard_dir)
        self.request_timeout = float(request_timeout)
        self._dead = False
        self._seq = 0
        ctx = _mp_context()
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main,
            args=(str(self.shard_dir), child_conn, bool(mmap)),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        self.process.start()
        child_conn.close()
        try:
            if not self._conn.poll(start_timeout):
                raise WorkerError(
                    f"shard worker {shard_id} did not come up within "
                    f"{start_timeout:.0f}s"
                )
            status, payload = recv_message(self._conn)
        except WorkerError:
            self._terminate()
            raise
        except (EOFError, OSError) as exc:
            self._terminate()
            raise WorkerError(
                f"shard worker {shard_id} died during startup: {exc}"
            ) from exc
        if status != "ready":
            self._terminate()
            raise WorkerError(
                f"shard worker {shard_id} failed to load "
                f"{self.shard_dir}: {payload}"
            )
        self.info = payload

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the worker process is up and answering."""
        return not self._dead and self.process.is_alive()

    def submit(self, command: str, *payload) -> int:
        """Send one request; returns the sequence id to collect on."""
        if not self.alive:
            raise WorkerError(
                f"shard worker {self.shard_id} is not alive"
            )
        self._seq += 1
        try:
            send_message(self._conn, (command, self._seq) + payload)
        except (BrokenPipeError, OSError) as exc:
            self._dead = True
            raise WorkerError(
                f"shard worker {self.shard_id} pipe is broken: {exc}"
            ) from exc
        return self._seq

    def collect(self, seq: int, timeout: float | None = None):
        """Wait for the response to *seq* and return its payload."""
        timeout = self.request_timeout if timeout is None else timeout
        try:
            if not self._conn.poll(timeout):
                self._dead = True
                raise WorkerError(
                    f"shard worker {self.shard_id} timed out after "
                    f"{timeout:.0f}s"
                )
            status, got_seq, payload = recv_message(self._conn)
        except WorkerError:
            raise
        except (EOFError, OSError) as exc:
            self._dead = True
            raise WorkerError(
                f"shard worker {self.shard_id} died mid-request: {exc}"
            ) from exc
        if got_seq != seq:
            self._dead = True
            raise WorkerError(
                f"shard worker {self.shard_id} answered request "
                f"{got_seq}, expected {seq} (protocol desync)"
            )
        if status != "ok":
            raise WorkerError(
                f"shard worker {self.shard_id} request failed: {payload}"
            )
        return payload

    def request(self, command: str, *payload, timeout: float | None = None):
        """Synchronous submit + collect convenience."""
        return self.collect(self.submit(command, *payload), timeout=timeout)

    def describe(self) -> dict:
        """Fresh shard facts from the worker (pid, residency, shapes)."""
        return self.request("describe")

    def stop(self, timeout: float = 10.0) -> None:
        """Ask the worker to exit; escalate to terminate if it will not.

        The polite ``stop`` is attempted whenever the *process* is
        alive — even for handles already marked dead (a timed-out or
        desynced worker may still be looping on its pipe), so shutdown
        does not burn the whole join timeout on a process that would
        have exited on request.
        """
        if self.process.is_alive():
            try:
                send_message(self._conn, ("stop",))
            except (BrokenPipeError, OSError):
                pass
            self.process.join(timeout)
        self._terminate()

    def _terminate(self) -> None:
        self._dead = True
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(5.0)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ShardedClusterService:
    """Serve cluster assignments from a shard set, one worker per shard.

    Parameters
    ----------
    root:
        A shard plan directory written by
        :class:`~repro.serve.plan.ShardPlanner` (``plan.json`` + shard
        snapshot subdirectories).
    mmap:
        Workers load their shards memory-mapped (default True).
    max_batch:
        Router micro-batch size (see
        :class:`~repro.serve.router.BatchingRouter`).
    on_worker_error:
        ``"raise"`` (default) or ``"skip"`` — the degraded-mode policy.
    parent_source:
        The plan's parent snapshot (a directory path or loaded
        :class:`DetectionSnapshot`), required only for
        :meth:`apply_delta` — partial re-planning needs the full
        corpus, which no single shard holds.  Loaded ``mmap=True`` when
        given as a path.  :func:`repro.serve.client.connect` wires this
        automatically.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` for the
        serving counters, the per-shard metric deltas the workers
        piggyback on their replies, and everything else the pool
        records; a private ``component="serve"`` registry is created
        when omitted and exposed as :attr:`metrics_registry` either
        way.
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder` handed to
        every router the service builds (scatter / per-shard assign /
        merge spans) and used for ``heal`` spans.

    Example
    -------
    >>> from repro.serve import ShardPlanner, ShardedClusterService
    ... # doctest: +SKIP
    >>> ShardPlanner(n_shards=4).plan("snap", "shards")  # doctest: +SKIP
    >>> service = ShardedClusterService("shards")        # doctest: +SKIP
    >>> service.assign(queries).labels                   # doctest: +SKIP
    """

    def __init__(
        self,
        root,
        *,
        mmap: bool = True,
        max_batch: int = 1024,
        on_worker_error: str = "raise",
        start_timeout: float = 120.0,
        parent_source=None,
        registry: MetricsRegistry | None = None,
        tracer=None,
    ):
        # Reject bad knobs before any worker is forked (the router would
        # only catch them after the whole pool came up).
        if on_worker_error not in ("raise", "skip"):
            raise ValidationError(
                f"on_worker_error must be 'raise' or 'skip', "
                f"got {on_worker_error!r}"
            )
        if max_batch < 1:
            raise ValidationError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        self._lock = threading.Lock()
        self._mmap = bool(mmap)
        self._max_batch = int(max_batch)
        self._on_worker_error = on_worker_error
        self._start_timeout = float(start_timeout)
        self._counters = _ServingCounters(registry)
        self.metrics_registry = self._counters.registry
        self.tracer = tracer
        self._heal_seq = 0
        self._plan: ShardPlan | None = None
        self._workers: list[ShardWorker] = []
        self._router: BatchingRouter | None = None
        if parent_source is None or isinstance(
            parent_source, DetectionSnapshot
        ):
            self._full: DetectionSnapshot | None = parent_source
        else:
            self._full = DetectionSnapshot.load(parent_source, mmap=True)
        plan, workers, router = self._spawn(root)
        self._plan, self._workers, self._router = plan, workers, router
        self._counters.set_quality(self._merged_quality(workers))

    # ------------------------------------------------------------------
    @staticmethod
    def _merged_quality(
        workers: list["ShardWorker"],
    ) -> dict[int, dict[str, float]] | None:
        """Union of the per-shard quality blocks (labels are global).

        ``None`` when no shard carries annotations — the planner only
        writes a shard-level quality block when the parent snapshot had
        one, so an unannotated parent yields unannotated shards and the
        gauges stay absent rather than zero-filled.
        """
        merged: dict[int, dict[str, float]] = {}
        annotated = False
        for worker in workers:
            block = worker.info.get("quality")
            if block is None:
                continue
            annotated = True
            merged.update(
                {int(label): dict(s) for label, s in block.items()}
            )
        return merged if annotated else None

    @classmethod
    def from_snapshot(
        cls,
        snapshot_source,
        shard_root,
        *,
        n_shards: int = 2,
        strategy: str = "balanced",
        **kwargs,
    ) -> "ShardedClusterService":
        """Plan *snapshot_source* into *shard_root*, then serve it.

        .. deprecated::
            Use :func:`repro.serve.connect` with ``workers=n_shards``
            instead — it returns the same running pool behind the
            unified :class:`~repro.serve.client.ClusterHandle` protocol
            and manages the scratch shard directory for you.
        """
        warnings.warn(
            "ShardedClusterService.from_snapshot is deprecated; use "
            "repro.serve.connect(source, workers=n_shards) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        ShardPlanner(n_shards=n_shards, strategy=strategy).plan(
            snapshot_source, shard_root
        )
        return cls(shard_root, parent_source=snapshot_source, **kwargs)

    def _spawn(
        self, root
    ) -> tuple[ShardPlan, list[ShardWorker], BatchingRouter]:
        """Validate a plan and bring up its full worker pool, or nothing."""
        plan = ShardPlan.load(root)
        workers: list[ShardWorker] = []
        try:
            for spec in plan.shards:
                workers.append(
                    ShardWorker(
                        plan.shard_dir(spec.shard_id),
                        spec.shard_id,
                        mmap=self._mmap,
                        start_timeout=self._start_timeout,
                    )
                )
        except Exception:
            for worker in workers:
                worker.stop()
            raise
        router = BatchingRouter(
            workers,
            max_batch=self._max_batch,
            on_worker_error=self._on_worker_error,
            registry=self.metrics_registry,
            tracer=self.tracer,
        )
        return plan, workers, router

    # ------------------------------------------------------------------
    @property
    def plan(self) -> ShardPlan:
        """The currently served shard plan."""
        return self._plan

    @property
    def n_shards(self) -> int:
        """Number of shards (== workers) in the current pool."""
        return len(self._workers)

    @property
    def n_clusters(self) -> int:
        """Total assignable clusters across all shards."""
        return sum(spec.n_clusters for spec in self._plan.shards)

    def assign(
        self, queries: np.ndarray, *, shortlist: str = "lsh"
    ) -> Assignment:
        """Assign a query block across the shard pool (merged verdicts).

        The router reference is captured once, so a concurrent
        :meth:`reload` never switches shard sets mid-batch.  Raises
        :class:`~repro.exceptions.WorkerError` under the ``"raise"``
        policy when any shard fails (or, under ``"skip"``, when *every*
        shard is gone — a service with no shards must not silently
        answer "all noise").
        """
        # Capture + retain under the same lock reload() swaps under, so
        # the old pool can never read as idle between this batch
        # grabbing its router and actually routing.
        with self._lock:
            if self._router is None:
                raise WorkerError(
                    "service is closed; no shard workers are running"
                )
            router = self._router.retain()
        try:
            result, info = router.route(queries, shortlist=shortlist)
        finally:
            router.release()
        with self._lock:
            self._counters.record_batch(
                result.n_queries,
                int(result.assigned_mask.sum()),
                int(result.entries_computed),
                degraded=info["degraded"],
            )
        return result

    def reload(self, root) -> None:
        """Hot-swap to a new shard set, atomically.

        The new plan is checksum-validated and its **entire** worker
        pool is spawned and handshaken off to the side; only then is it
        swapped in (one reference assignment under the lock) and the old
        pool shut down — after waiting for in-flight batches on the old
        router to drain, so a batch that started before the swap
        finishes against the pool it captured.  Any failure — corrupt
        plan, truncated shard, worker that cannot load — propagates and
        leaves the old pool serving untouched.  On success the lifetime counters carry on
        while the per-snapshot counters reset, exactly like
        :meth:`repro.serve.service.ClusterService.reload`.
        """
        plan, workers, router = self._spawn(root)
        with self._lock:
            old_workers = self._workers
            old_router = self._router
            self._plan, self._workers, self._router = plan, workers, router
            self._counters.record_reload()
            self._counters.set_quality(self._merged_quality(workers))
        # In-flight batches retained the old router; let them drain
        # before their workers are stopped (a batch mid-collect must
        # not see its worker die under it).  Each request is bounded by
        # the workers' request timeout, so this wait terminates.
        if old_router is not None:
            old_router.wait_idle()
        for worker in old_workers:
            worker.stop()

    def apply_delta(self, source, *, mmap: bool = False) -> list[int]:
        """Hot-apply a :class:`SnapshotDelta` with a partial reload.

        The delta is verified against (and applied to) the tracked
        parent snapshot — the service must have been built with
        ``parent_source`` (or via :func:`repro.serve.connect`).  Only
        the shards whose clusters the delta removed or replaced are
        rewritten on disk and respawned; every untouched worker keeps
        its process (same pid, pinned by ``tests/test_serve_delta.py``)
        and never re-reads its shard.  A brand-new cluster lands on the
        lightest touched shard (or the lightest shard overall for a
        pure-addition delta).  When a touched shard would end up
        empty — an unservable artifact — the whole shard set is
        re-planned and reloaded instead.

        Returns the sorted shard ids that were respawned (empty for a
        pure-append delta, which only advances the plan's recorded
        parent).  On any failure — chain mismatch, corrupt delta,
        worker that cannot load — the old pool keeps serving untouched.

        Counts as one reload in :meth:`stats`, exactly like
        :meth:`reload`.
        """
        if self._full is None:
            raise ValidationError(
                "this service does not track its parent snapshot; "
                "construct it with parent_source= (or through "
                "repro.serve.connect) to apply deltas"
            )
        if isinstance(source, SnapshotDelta):
            delta = source
        else:
            delta = SnapshotDelta.load(source, mmap=mmap)
        with self._lock:
            plan = self._plan
            if self._router is None or plan is None:
                raise WorkerError(
                    "service is closed; no shard workers are running"
                )
        if (
            plan.parent_manifest_sha256 is not None
            and self._full.manifest_sha256 != plan.parent_manifest_sha256
        ):
            raise SnapshotError(
                "tracked parent snapshot does not match the serving "
                "plan's recorded parent "
                f"({str(self._full.manifest_sha256)[:12]}... vs "
                f"{plan.parent_manifest_sha256[:12]}...)"
            )
        new_full = delta.apply(self._full)
        replanned = replan_for_delta(
            plan,
            new_full,
            delta.removed_labels,
            [c.label for c in delta.clusters],
        )
        if replanned is None:
            # A touched shard emptied out: fall back to a full re-plan
            # of the same root (same shard count and strategy), served
            # through the ordinary whole-pool reload.
            strategy = (
                plan.strategy
                if plan.strategy in ("balanced", "contiguous")
                else "balanced"
            )
            ShardPlanner(
                n_shards=plan.n_shards, strategy=strategy
            ).plan(new_full, plan.root)
            self.reload(plan.root)
            self._full = new_full
            return [spec.shard_id for spec in self._plan.shards]
        new_plan, touched = replanned
        fresh: list[ShardWorker] = []
        try:
            for shard_id in touched:
                fresh.append(
                    ShardWorker(
                        new_plan.shard_dir(shard_id),
                        shard_id,
                        mmap=self._mmap,
                        start_timeout=self._start_timeout,
                    )
                )
        except Exception:
            for worker in fresh:
                worker.stop()
            raise
        by_shard = {worker.shard_id: worker for worker in fresh}
        with self._lock:
            if self._router is None:
                for worker in fresh:
                    worker.stop()
                raise WorkerError(
                    "service was closed while the delta was being applied"
                )
            old_router = self._router
            # Untouched workers move to the new router, whose pipe lock
            # is its own — drain the old router first (new retains need
            # this service lock, so none can start) so two routers never
            # interleave requests on a shared worker's pipe.
            old_router.wait_idle()
            replaced = [
                worker
                for worker in self._workers
                if worker.shard_id in by_shard
            ]
            workers = sorted(
                [
                    worker
                    for worker in self._workers
                    if worker.shard_id not in by_shard
                ]
                + fresh,
                key=lambda worker: worker.shard_id,
            )
            router = BatchingRouter(
                workers,
                max_batch=self._max_batch,
                on_worker_error=self._on_worker_error,
                registry=self.metrics_registry,
                tracer=self.tracer,
            )
            self._plan, self._workers, self._router = (
                new_plan,
                workers,
                router,
            )
            self._full = new_full
            self._counters.record_reload()
            self._counters.set_quality(self._merged_quality(workers))
        for worker in replaced:
            worker.stop()
        return touched

    def dead_shard_ids(self) -> list[int]:
        """Sorted shard ids whose worker is currently dead.

        Cheap (no worker round-trip — liveness is the parent-side
        ``alive`` flag), so supervisors can poll it at a tight interval.
        Raises :class:`WorkerError` on a closed service, like every
        other serving call.
        """
        with self._lock:
            if self._router is None:
                raise WorkerError(
                    "service is closed; no shard workers are running"
                )
            return sorted(
                w.shard_id for w in self._workers if not w.alive
            )

    def heal(self) -> list[int]:
        """Respawn every dead shard worker from its on-disk artifact.

        The self-healing half of degraded serving: a crashed (or
        timed-out, or desynced) worker's shard snapshot is still intact
        on disk — worker processes only ever *read* their shard, so a
        SIGKILL cannot tear it — and :class:`ShardWorker` re-verifies
        the checksums on load, so a respawn serves exactly the bytes
        the dead worker served.  Replacements are spawned and
        handshaken entirely off to the side (a failure — e.g. a
        corrupted artifact — propagates with the surviving pool still
        serving degraded), then swapped in behind a drained router,
        exactly like :meth:`apply_delta`'s partial reload.

        Returns the sorted shard ids that were healed (empty when every
        worker is alive).  Unlike a reload, a heal does **not** reset
        the per-snapshot stats scope — the served snapshot did not
        change — but it does advance the ``respawns`` and
        ``healed_shards`` counters at both scopes.
        """
        with self._lock:
            plan = self._plan
            if self._router is None or plan is None:
                raise WorkerError(
                    "service is closed; no shard workers are running"
                )
            dead_ids = sorted(
                w.shard_id for w in self._workers if not w.alive
            )
        if not dead_ids:
            return []
        tracer = self.tracer
        heal_span = None
        if tracer is not None:
            with self._lock:
                self._heal_seq += 1
                heal_seq = self._heal_seq
            heal_span = tracer.begin(
                "heal",
                trace_id=f"heal-{heal_seq}",
                tid=TID_SUPERVISOR,
                shards=list(dead_ids),
            )
        fresh: list[ShardWorker] = []
        try:
            for shard_id in dead_ids:
                fresh.append(
                    ShardWorker(
                        plan.shard_dir(shard_id),
                        shard_id,
                        mmap=self._mmap,
                        start_timeout=self._start_timeout,
                    )
                )
        except Exception:
            for worker in fresh:
                worker.stop()
            if heal_span is not None:
                heal_span.end(error="respawn_failed")
            raise
        by_shard = {worker.shard_id: worker for worker in fresh}
        with self._lock:
            if self._router is None:
                for worker in fresh:
                    worker.stop()
                if heal_span is not None:
                    heal_span.end(error="service_closed")
                raise WorkerError(
                    "service was closed while healing"
                )
            if self._plan is not plan:
                # A reload/apply_delta raced us and already installed a
                # fully fresh pool; our replacements would serve a stale
                # plan.  Discard them — the heal is moot.
                for worker in fresh:
                    worker.stop()
                if heal_span is not None:
                    heal_span.end(outcome="superseded")
                return []
            old_router = self._router
            # Same pipe-discipline as apply_delta: drain the old router
            # before surviving workers move to the new one.
            old_router.wait_idle()
            replaced = [
                worker
                for worker in self._workers
                if worker.shard_id in by_shard
            ]
            workers = sorted(
                [
                    worker
                    for worker in self._workers
                    if worker.shard_id not in by_shard
                ]
                + fresh,
                key=lambda worker: worker.shard_id,
            )
            router = BatchingRouter(
                workers,
                max_batch=self._max_batch,
                on_worker_error=self._on_worker_error,
                registry=self.metrics_registry,
                tracer=self.tracer,
            )
            self._workers, self._router = workers, router
            self._counters.record_heal(len(fresh), len(fresh))
        for worker in replaced:
            worker.stop()
        if heal_span is not None:
            heal_span.end(healed=len(fresh))
        return dead_ids

    def describe_shards(self) -> list[dict]:
        """Live facts from every worker that still answers.

        Serialized with routing on the worker pipes (monitoring must
        never steal an in-flight batch's replies), and retained like a
        batch so a concurrent reload cannot stop the pool mid-describe.
        """
        with self._lock:
            if self._router is None:
                raise WorkerError(
                    "service is closed; no shard workers are running"
                )
            router = self._router.retain()
        try:
            return router.describe_workers()
        finally:
            router.release()

    def stats(self) -> dict:
        """Serving statistics at lifetime and per-snapshot scope.

        Same two-scope semantics as the single-process service, plus the
        sharding extras: shard counts, live/dead shard ids, and how many
        batches were served degraded (some shard missing).
        """
        with self._lock:
            alive = [w.shard_id for w in self._workers if w.alive]
            dead = [w.shard_id for w in self._workers if not w.alive]
            return {
                "source": str(self._plan.root),
                "n_shards": len(self._workers),
                "alive_shards": alive,
                "dead_shards": dead,
                # Parent-scope item count, matching what ClusterService
                # reports for the same logical snapshot (the shards
                # themselves drop fit-time noise rows; their sum is
                # exposed separately).
                "n_items": self._plan.parent_n_items,
                "sharded_items": sum(
                    s.n_items for s in self._plan.shards
                ),
                "n_clusters": sum(
                    s.n_clusters for s in self._plan.shards
                ),
                **self._counters.lifetime_dict(with_degraded=True),
                "snapshot": self._counters.snapshot_dict(
                    with_degraded=True
                ),
            }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker process (idempotent).

        The pool is detached under the service lock (a racing
        :meth:`assign` either retained the router first — and is
        drained like a reload — or sees a closed service and fails
        cleanly), then stopped.
        """
        with self._lock:
            workers, self._workers = self._workers, []
            router, self._router = self._router, None
        if router is not None:
            router.wait_idle()
        for worker in workers:
            worker.stop()

    def __enter__(self) -> "ShardedClusterService":
        """Context-manager entry (the service is already running)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: shut the worker pool down."""
        self.close()
