"""Vectorized batch assignment of queries to persisted dominant clusters.

Given a loaded :class:`~repro.serve.snapshot.DetectionSnapshot`, the
assigner answers "which dominant cluster does this query belong to?" for
whole ``(q, d)`` query blocks at once:

1. **Hash** — the block is hashed into the restored LSH tables with one
   grouped gather
   (:meth:`repro.lsh.index.LSHIndex.query_points_grouped`), the
   foreign-point twin of the CIVS multi-query pattern.
2. **Shortlist** — colliding items are mapped to their owning clusters
   (densest-wins on overlap, the reducer rule of
   :meth:`repro.core.results.DetectionResult.labels`), yielding the
   candidate clusters each query could plausibly join.  Queries whose
   collisions hit only noise items shortlist nothing and are noise by
   construction — the serve-time analogue of the peeling driver's noise
   pre-filter.
3. **Score** — every (query, candidate cluster) pair is scored with the
   Theorem 1 infectivity criterion
   (:func:`repro.core.infectivity.point_payoffs`): the payoff margin
   ``pi(s_q - x, x) = a(q, support) . weights - pi(x)``.  A query joins
   the candidate with the largest margin when that margin exceeds the
   immunity tolerance — exactly the test streaming absorb applies to
   arriving items — and is noise otherwise.

All kernel evaluations flow through the snapshot's instrumented
:class:`~repro.affinity.oracle.AffinityOracle`, so serving work is
accounted (``entries_computed``) the same way fit-time detection is and
the serve benchmark can gate on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.infectivity import infective_mask, point_payoffs
from repro.exceptions import ValidationError
from repro.lsh.multiprobe import MultiProbeQuerier
from repro.serve.snapshot import DetectionSnapshot

__all__ = ["Assignment", "ClusterAssigner", "SHORTLIST_MODES"]

SHORTLIST_MODES = ("lsh", "multiprobe", "all")


@dataclass
class Assignment:
    """Result of one batch assignment.

    Attributes
    ----------
    labels:
        Per-query cluster label, or -1 for noise (no candidate cluster
        was infective).
    scores:
        Per-query best payoff margin ``pi(s_q - x, x)`` over the scored
        candidates (``-inf`` when nothing was shortlisted).  For
        assigned queries this is the winning margin; for noise queries
        it measures how far from joining the closest cluster was.
    n_candidates:
        Number of candidate clusters scored per query (the shortlist
        size after LSH collision mapping).
    entries_computed:
        Affinity entries evaluated for this batch (serve-side work, the
        counter the serve benchmark gates on).
    """

    labels: np.ndarray
    scores: np.ndarray
    n_candidates: np.ndarray
    entries_computed: int

    @property
    def n_queries(self) -> int:
        """Number of queries in the batch."""
        return int(self.labels.size)

    @property
    def assigned_mask(self) -> np.ndarray:
        """Boolean mask of queries assigned to some cluster."""
        return self.labels >= 0

    @property
    def coverage(self) -> float:
        """Fraction of queries assigned to some cluster."""
        if self.labels.size == 0:
            return 0.0
        return float(self.assigned_mask.sum()) / self.labels.size


class ClusterAssigner:
    """Serve-time batch assigner over one loaded snapshot.

    Parameters
    ----------
    snapshot:
        A :class:`~repro.serve.snapshot.DetectionSnapshot` (eager or
        mmap-loaded).
    n_probes:
        Extra buckets probed per table by the ``shortlist="multiprobe"``
        mode (ignored by the other modes).

    Notes
    -----
    The restored index is fully reactivated: at fit end every item is
    peeled, but serving must see all items so query collisions reach
    cluster members.  Collisions with noise items simply map to no
    cluster.  Per-batch work is returned race-free on each
    :class:`Assignment`; :class:`~repro.serve.service.ClusterService`
    accumulates those into its lifetime totals.
    """

    def __init__(self, snapshot: DetectionSnapshot, *, n_probes: int = 8):
        self.snapshot = snapshot
        self.config = snapshot.config
        self.oracle = snapshot.make_oracle()
        self.index = snapshot.restore_index()
        self.index.reactivate_all()
        self.multiprobe = MultiProbeQuerier(self.index, n_probes=n_probes)
        self.clusters = list(snapshot.clusters)
        n = snapshot.n_items
        # Densest-first scoring order gives deterministic tie-breaks;
        # item ownership resolves overlaps densest-wins (reducer rule).
        self._rows_densest_first = sorted(
            range(len(self.clusters)),
            key=lambda row: (-self.clusters[row].density,
                             self.clusters[row].label),
        )
        self._item_owner = np.full(n, -1, dtype=np.int64)
        for row in reversed(self._rows_densest_first):
            self._item_owner[self.clusters[row].members] = row

    @property
    def n_clusters(self) -> int:
        """Number of assignable dominant clusters."""
        return len(self.clusters)

    # ------------------------------------------------------------------
    def _shortlist_pairs(
        self, queries: np.ndarray, shortlist: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(query_ids, cluster_rows) pairs worth scoring, deduplicated."""
        k = len(self.clusters)
        if shortlist == "multiprobe":
            candidate_lists = self.multiprobe.query_points_grouped(queries)
        else:
            candidate_lists = self.index.query_points_grouped(queries)
        lengths = np.asarray([c.size for c in candidate_lists], dtype=np.intp)
        if lengths.sum() == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        qids = np.repeat(np.arange(len(candidate_lists)), lengths)
        items = np.concatenate(candidate_lists)
        rows = self._item_owner[items]
        keep = rows >= 0
        if not keep.any():
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        pair_keys = np.unique(qids[keep].astype(np.int64) * k + rows[keep])
        return pair_keys // k, (pair_keys % k).astype(np.int64)

    def assign(
        self, queries: np.ndarray, *, shortlist: str = "lsh"
    ) -> Assignment:
        """Assign a ``(q, d)`` query block to dominant clusters.

        Parameters
        ----------
        queries:
            Query block; a single ``(d,)`` vector is treated as one
            query.
        shortlist:
            ``"lsh"`` (default) scores only LSH-shortlisted candidate
            clusters; ``"multiprobe"`` additionally probes the
            ``n_probes`` cheapest neighbouring buckets per table
            (Lv et al. 2007), recovering borderline-infective queries
            whose collisions all miss the plain shortlist; probe
            enumeration is precomputed per hash family and scored
            vectorized per batch (see :mod:`repro.lsh.multiprobe`),
            so the mode serves hot paths at paper-scale table counts
            too; ``"all"`` scores every query against
            every cluster — the exact reference mode (O(q * n) work)
            the equivalence tests compare against.

        Returns
        -------
        Assignment
            Per-query labels, scores, shortlist sizes, and the batch's
            serve-side work accounting.
        """
        if shortlist not in SHORTLIST_MODES:
            raise ValidationError(
                f"shortlist must be one of {SHORTLIST_MODES}, "
                f"got {shortlist!r}"
            )
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.ndim != 2 or queries.shape[1] != self.snapshot.dim:
            raise ValidationError(
                f"queries must be (q, {self.snapshot.dim}), "
                f"got shape {queries.shape}"
            )
        # Validate here, before the modes branch: the exhaustive mode
        # never touches the index (whose own validation would catch
        # this), and NaN payoffs would silently read as noise.
        if not np.all(np.isfinite(queries)):
            raise ValidationError("queries contain NaN or infinite values")
        q = queries.shape[0]
        k = len(self.clusters)
        # Accounted locally (not as a shared-counter delta) so
        # concurrent batches on one service never misattribute work.
        batch_entries = 0
        best_score = np.full(q, -np.inf)
        best_row = np.full(q, -1, dtype=np.int64)
        n_candidates = np.zeros(q, dtype=np.int64)
        if q > 0 and k > 0:
            if shortlist == "all":
                pair_qids = np.tile(np.arange(q, dtype=np.int64), k)
                pair_rows = np.repeat(np.arange(k, dtype=np.int64), q)
            else:
                pair_qids, pair_rows = self._shortlist_pairs(
                    queries, shortlist
                )
            # Group pairs by cluster row once (sort + boundary split)
            # instead of one full boolean scan per cluster.
            order = np.argsort(pair_rows, kind="stable")
            pair_qids = pair_qids[order]
            pair_rows = pair_rows[order]
            row_bounds = np.searchsorted(
                pair_rows, np.arange(k + 1, dtype=np.int64)
            )
            for row in self._rows_densest_first:
                lo, hi = int(row_bounds[row]), int(row_bounds[row + 1])
                if hi == lo:
                    continue
                qk = pair_qids[lo:hi]
                n_candidates[qk] += 1
                cluster = self.clusters[row]
                pay = point_payoffs(
                    self.oracle,
                    queries[qk],
                    cluster.members,
                    cluster.weights,
                    cluster.density,
                )
                batch_entries += int(qk.size) * int(cluster.members.size)
                # Strict > keeps the densest cluster on exact ties.
                better = pay > best_score[qk]
                upd = qk[better]
                best_score[upd] = pay[better]
                best_row[upd] = row
        infective = infective_mask(best_score, self.config.tol)
        labels = np.full(q, -1, dtype=np.int64)
        hit = infective & (best_row >= 0)
        if hit.any():
            cluster_labels = np.asarray(
                [c.label for c in self.clusters], dtype=np.int64
            )
            labels[hit] = cluster_labels[best_row[hit]]
        return Assignment(
            labels=labels,
            scores=best_score,
            n_candidates=n_candidates,
            entries_computed=batch_entries,
        )
