"""Serve-time subsystem: persist a fitted detection, assign new queries.

The paper separates fit-time from serve-time state (§4.6 keeps hash
tables and data items in a server database that workers read); this
package is that separation made concrete for the reproduction:

* :mod:`repro.serve.snapshot` — :class:`DetectionSnapshot`, a versioned
  on-disk artifact (``.npy`` arrays + JSON manifest with schema version
  and SHA-256 checksums) capturing a fitted run: data matrix, LSH hash
  state, calibrated kernel, config, and every dominant cluster's
  support + converged strategy.  Round-trips bit-identically; loads are
  all-or-nothing (:class:`~repro.exceptions.SnapshotError` on any
  corruption); ``mmap=True`` serves multi-GB artifacts without a full
  copy.
* :mod:`repro.serve.assigner` — :class:`ClusterAssigner`, vectorized
  batch assignment: hash a query block into the restored LSH tables
  with one grouped gather (optionally multi-probed,
  ``shortlist="multiprobe"``), shortlist candidate clusters by
  collision ownership, score with the shared Theorem 1 infectivity
  criterion (:mod:`repro.core.infectivity`), all through the
  instrumented oracle.
* :mod:`repro.serve.service` — :class:`ClusterService`, the
  single-process front: owns a snapshot, hot-reloads newer artifacts
  atomically, and keeps lifetime + per-snapshot serving statistics.
* :mod:`repro.serve.plan` — :class:`ShardPlanner` /
  :class:`ShardPlan`, the PALID-style decomposition of one snapshot
  into checksummed per-shard artifacts (whole clusters per shard, each
  shard a self-contained snapshot).
* :mod:`repro.serve.sharded` — :class:`ShardWorker` (one process per
  shard, mmap-loading only its shard) and
  :class:`ShardedClusterService`, the multi-process front with atomic
  shard-set hot reload and degraded-mode serving.
* :mod:`repro.serve.router` — :class:`BatchingRouter`, micro-batching
  scatter/gather with the densest-wins merge that makes sharded
  assignments byte-identical to the single-process path.
* :mod:`repro.serve.ingest` — :class:`IngestService`, the live-corpus
  write path: absorb arriving batches into a
  :class:`~repro.streaming.online.StreamingALID`, re-peel dirtied
  collision regions in the background, and publish
  :class:`SnapshotDelta` artifacts recording exactly what changed.
* :mod:`repro.serve.client` — :func:`connect`, the unified entry point:
  one call returns a running service of either backend behind the
  :class:`ClusterHandle` protocol
  (``assign``/``apply_delta``/``reload``/``stats``/``close``).
* :mod:`repro.serve.frontend` — :class:`AsyncFrontend`, the
  traffic-facing asyncio front: admission-controlled ingress,
  SLO-adaptive micro-batching over any :class:`ClusterHandle`, and
  :func:`run_open_loop`, the open-loop replay driver behind the soak
  lane and ``repro serve``.
* :mod:`repro.serve.admission` — :class:`AdmissionController`, the
  bounded ingress queue with per-client fair dequeue and
  reject-with-``retry_after``
  (:class:`~repro.exceptions.AdmissionError`).
* :mod:`repro.serve.supervisor` — :class:`ShardSupervisor`, the
  self-healing loop: watches a sharded pool's worker liveness and
  respawns crashed workers from their still-valid shard artifacts via
  :meth:`ShardedClusterService.heal`.
* :mod:`repro.serve.wal` — :class:`WriteAheadLog`, the append-only
  CRC-per-record journal the ingest tier writes ahead of every
  mutation; :meth:`IngestService.recover` replays its committed
  prefix after a crash.
* :mod:`repro.serve.compact` — :func:`compact_chain`, folding a
  base + delta chain into a fresh base snapshot serving byte-identical
  assignments to the chain tip.
* :mod:`repro.serve.verify` — :func:`verify_artifact` and friends,
  the offline checksum / parent-link / journal audit behind
  ``repro verify``.

Exposed on the command line as ``repro snapshot`` / ``repro shard`` /
``repro assign [--workers N]`` / ``repro ingest [--wal]`` /
``repro serve`` / ``repro compact`` / ``repro verify``.
See ``docs/serving.md`` for the artifact formats and semantics.
"""

from repro.serve.assigner import (
    SHORTLIST_MODES,
    Assignment,
    ClusterAssigner,
)
from repro.serve.admission import AdmissionController
from repro.serve.client import ClusterHandle, connect
from repro.serve.compact import chain_artifacts, compact_chain, load_chain_tip
from repro.serve.frontend import AsyncFrontend, FrontendReply, run_open_loop
from repro.serve.ingest import IngestReport, IngestService
from repro.serve.plan import (
    ShardPlan,
    ShardPlanner,
    ShardSpec,
    replan_for_delta,
)
from repro.serve.router import BatchingRouter, merge_partials
from repro.serve.service import ClusterService
from repro.serve.sharded import ShardedClusterService, ShardWorker
from repro.serve.snapshot import (
    DELTA_FORMAT,
    DELTA_SCHEMA_VERSION,
    SCHEMA_VERSION,
    SNAPSHOT_FORMAT,
    DetectionSnapshot,
    SnapshotDelta,
)
from repro.serve.supervisor import ShardSupervisor
from repro.serve.verify import (
    verify_artifact,
    verify_chain,
    verify_delta,
    verify_snapshot,
    verify_wal,
)
from repro.serve.wal import WALRecord, WriteAheadLog, read_records

__all__ = [
    "AdmissionController",
    "Assignment",
    "AsyncFrontend",
    "BatchingRouter",
    "chain_artifacts",
    "ClusterAssigner",
    "ClusterHandle",
    "ClusterService",
    "compact_chain",
    "connect",
    "DELTA_FORMAT",
    "DELTA_SCHEMA_VERSION",
    "DetectionSnapshot",
    "FrontendReply",
    "IngestReport",
    "IngestService",
    "load_chain_tip",
    "merge_partials",
    "read_records",
    "replan_for_delta",
    "run_open_loop",
    "SCHEMA_VERSION",
    "SHORTLIST_MODES",
    "SNAPSHOT_FORMAT",
    "ShardPlan",
    "ShardPlanner",
    "ShardSpec",
    "ShardSupervisor",
    "ShardWorker",
    "ShardedClusterService",
    "SnapshotDelta",
    "verify_artifact",
    "verify_chain",
    "verify_delta",
    "verify_snapshot",
    "verify_wal",
    "WALRecord",
    "WriteAheadLog",
]
