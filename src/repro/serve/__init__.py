"""Serve-time subsystem: persist a fitted detection, assign new queries.

The paper separates fit-time from serve-time state (§4.6 keeps hash
tables and data items in a server database that workers read); this
package is that separation made concrete for the reproduction:

* :mod:`repro.serve.snapshot` — :class:`DetectionSnapshot`, a versioned
  on-disk artifact (``.npy`` arrays + JSON manifest with schema version
  and SHA-256 checksums) capturing a fitted run: data matrix, LSH hash
  state, calibrated kernel, config, and every dominant cluster's
  support + converged strategy.  Round-trips bit-identically; loads are
  all-or-nothing (:class:`~repro.exceptions.SnapshotError` on any
  corruption); ``mmap=True`` serves multi-GB artifacts without a full
  copy.
* :mod:`repro.serve.assigner` — :class:`ClusterAssigner`, vectorized
  batch assignment: hash a query block into the restored LSH tables
  with one grouped gather, shortlist candidate clusters by collision
  ownership, score with the shared Theorem 1 infectivity criterion
  (:mod:`repro.core.infectivity`), all through the instrumented oracle.
* :mod:`repro.serve.service` — :class:`ClusterService`, the long-lived
  front: owns a snapshot, hot-reloads newer artifacts atomically, and
  keeps cumulative serving statistics.  Exposed on the command line as
  ``repro snapshot`` / ``repro assign``.

See ``docs/serving.md`` for the snapshot format and assignment
semantics.
"""

from repro.serve.assigner import Assignment, ClusterAssigner
from repro.serve.service import ClusterService
from repro.serve.snapshot import (
    SCHEMA_VERSION,
    SNAPSHOT_FORMAT,
    DetectionSnapshot,
)

__all__ = [
    "Assignment",
    "ClusterAssigner",
    "ClusterService",
    "DetectionSnapshot",
    "SCHEMA_VERSION",
    "SNAPSHOT_FORMAT",
]
