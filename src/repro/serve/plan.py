"""Shard planning: split one detection snapshot into serving shards.

PALID (paper §4.6, Alg. 3) scales *fitting* by partitioning the work,
running the local criterion per partition, and merging with a cheap
global rule (densest-wins).  The shard planner applies the same
map-reduce decomposition to *serving*: one fitted
:class:`~repro.serve.snapshot.DetectionSnapshot` is split into
``n_shards`` self-contained shard artifacts, each of which a
:class:`~repro.serve.sharded.ShardWorker` process can mmap-load and
serve with the unmodified
:class:`~repro.serve.assigner.ClusterAssigner`.

Why sharding by **clusters** is exact
-------------------------------------
The serve-time criterion decomposes over disjoint point shards:

* LSH collisions are per-item — whether a query's bucket key matches
  item ``i``'s key depends only on the shared hash families and item
  ``i``, never on other items.  Restricting a shard's rebuilt index to
  its own items therefore yields exactly the parent index's collisions
  with those items.
* The Theorem 1 payoff margin of a (query, cluster) pair reads only the
  cluster's own support, weights and density — fully local to the shard
  that owns the cluster.
* The global decision (densest-wins over the best margins) is an
  associative merge, performed by :mod:`repro.serve.router`.

So a shard holds *whole clusters*: every cluster lives in exactly one
shard together with the data rows and per-table hash keys of its
members.  Items in no dominant cluster (fit-time noise) are dropped —
collisions with them never shortlist anything, so the sharded shortlist,
scores and summed ``entries_computed`` all match the single-process
assigner exactly (pinned by ``tests/test_serve_sharded.py``).  Clusters
must be support-disjoint (always true for ALID's peeling fits); an
overlapping cluster pair cannot be split without double-counting and is
rejected at planning time.

Artifact layout
---------------
::

    shard_root/
      plan.json            shard-set manifest: parent snapshot checksum,
                           strategy, per-shard manifest + items checksums
      shard_000/           a full DetectionSnapshot directory
        manifest.json      (embeds the parent checksum in its meta)
        items.npy          global item ids of the shard's rows
        arrays/*.npy
      shard_001/
        ...

``plan.json`` is written last (write-to-temp + rename), mirroring the
snapshot rule: a readable plan certifies a complete shard set, and
loading re-verifies every shard manifest and items file against the
recorded checksums — a truncated or edited shard manifest fails the
whole plan load, never one worker at a time.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import shutil

import numpy as np

from repro.core.results import Cluster
from repro.exceptions import SnapshotError, ValidationError
from repro.parallel.mapreduce import chunk_evenly
from repro.serve.snapshot import (
    MANIFEST_NAME,
    DetectionSnapshot,
    _sha256_of,
)

__all__ = [
    "ShardPlan",
    "ShardPlanner",
    "ShardSpec",
    "replan_for_delta",
    "PLAN_NAME",
    "PLAN_SCHEMA_VERSION",
    "SHARD_PLAN_FORMAT",
    "STRATEGIES",
]

SHARD_PLAN_FORMAT = "repro-alid-shard-plan"
PLAN_SCHEMA_VERSION = 1
PLAN_NAME = "plan.json"
ITEMS_NAME = "items.npy"
STRATEGIES = ("balanced", "contiguous")


@dataclasses.dataclass
class ShardSpec:
    """Manifest entry of one shard inside a :class:`ShardPlan`.

    Attributes
    ----------
    shard_id:
        Position of the shard in the plan (0-based, contiguous).
    dir_name:
        Directory name of the shard snapshot under the plan root.
    n_items:
        Number of data rows the shard carries (union of its clusters'
        members).
    n_clusters:
        Number of dominant clusters the shard owns.
    labels:
        Global cluster labels owned by this shard (disjoint across
        shards).
    manifest_sha256:
        Checksum of the shard snapshot's ``manifest.json`` — ties the
        plan to the exact shard artifacts it was written with.
    items_sha256:
        Checksum of the shard's ``items.npy`` (global item ids).
    """

    shard_id: int
    dir_name: str
    n_items: int
    n_clusters: int
    labels: list[int]
    manifest_sha256: str
    items_sha256: str


@dataclasses.dataclass
class ShardPlan:
    """A validated shard set: parent provenance plus per-shard specs.

    Attributes
    ----------
    root:
        Directory holding ``plan.json`` and the shard subdirectories.
    parent_manifest_sha256:
        Checksum of the parent snapshot's manifest (``None`` when the
        plan was built from an in-memory snapshot).
    parent_n_items / parent_n_clusters / parent_dim:
        Shape of the parent detection, for quick sanity checks.
    strategy:
        The planner strategy that produced the split.
    shards:
        One :class:`ShardSpec` per shard, ordered by ``shard_id``.
    """

    root: pathlib.Path
    parent_manifest_sha256: str | None
    parent_n_items: int
    parent_n_clusters: int
    parent_dim: int
    strategy: str
    shards: list[ShardSpec]

    @property
    def n_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    def shard_dir(self, shard_id: int) -> pathlib.Path:
        """Directory of one shard's snapshot artifact."""
        return self.root / self.shards[shard_id].dir_name

    def save(self) -> pathlib.Path:
        """Write ``plan.json`` (write-to-temp + rename) and return it."""
        payload = {
            "format": SHARD_PLAN_FORMAT,
            "schema_version": PLAN_SCHEMA_VERSION,
            "strategy": self.strategy,
            "parent": {
                "manifest_sha256": self.parent_manifest_sha256,
                "n_items": int(self.parent_n_items),
                "n_clusters": int(self.parent_n_clusters),
                "dim": int(self.parent_dim),
            },
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "dir": s.dir_name,
                    "n_items": s.n_items,
                    "n_clusters": s.n_clusters,
                    "labels": [int(label) for label in s.labels],
                    "manifest_sha256": s.manifest_sha256,
                    "items_sha256": s.items_sha256,
                }
                for s in self.shards
            ],
        }
        plan_path = self.root / PLAN_NAME
        tmp = self.root / (PLAN_NAME + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        tmp.replace(plan_path)
        return plan_path

    @classmethod
    def load(cls, root) -> "ShardPlan":
        """Load and validate a shard plan directory.

        Every shard's ``manifest.json`` and ``items.npy`` is existence-
        and checksum-verified against the plan before anything serves —
        a truncated shard manifest or swapped items file fails the whole
        plan, so a worker pool never starts on a half-written shard set.
        (The array payloads inside each shard are verified again by the
        worker's own :meth:`DetectionSnapshot.load`.)

        Raises
        ------
        SnapshotError
            Missing/unreadable ``plan.json``, wrong format, schema newer
            than :data:`PLAN_SCHEMA_VERSION`, missing shard directory or
            file, or a checksum mismatch.
        """
        root = pathlib.Path(root)
        plan_path = root / PLAN_NAME
        if not plan_path.is_file():
            raise SnapshotError(
                f"{root} is not a shard plan directory: no {PLAN_NAME}"
            )
        try:
            payload = json.loads(plan_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(
                f"{plan_path} is not readable JSON: {exc}"
            ) from exc
        if payload.get("format") != SHARD_PLAN_FORMAT:
            raise SnapshotError(
                f"{root}: plan format {payload.get('format')!r} is not "
                f"{SHARD_PLAN_FORMAT!r}"
            )
        version = payload.get("schema_version")
        if not isinstance(version, int) or version < 1:
            raise SnapshotError(f"{root}: invalid schema_version {version!r}")
        if version > PLAN_SCHEMA_VERSION:
            raise SnapshotError(
                f"{root}: plan schema_version {version} is newer than this "
                f"library understands (max {PLAN_SCHEMA_VERSION})"
            )
        parent = payload.get("parent", {})
        entries = payload.get("shards")
        if not isinstance(entries, list) or not entries:
            raise SnapshotError(f"{root}: plan lists no shards")
        shards: list[ShardSpec] = []
        for position, entry in enumerate(entries):
            if not isinstance(entry, dict) or "dir" not in entry:
                raise SnapshotError(
                    f"{root}: malformed shard entry at position {position}"
                )
            if entry.get("shard_id") != position:
                raise SnapshotError(
                    f"{root}: shard ids must be contiguous from 0, got "
                    f"{entry.get('shard_id')!r} at position {position}"
                )
            shard_dir = root / entry["dir"]
            manifest_path = shard_dir / MANIFEST_NAME
            if not manifest_path.is_file():
                raise SnapshotError(
                    f"{root}: shard {entry['dir']} has no {MANIFEST_NAME}"
                )
            digest = _sha256_of(manifest_path)
            if digest != entry.get("manifest_sha256"):
                raise SnapshotError(
                    f"{root}: shard {entry['dir']} manifest checksum "
                    f"mismatch (file {digest[:12]}..., plan "
                    f"{str(entry.get('manifest_sha256'))[:12]}...) — the "
                    f"shard was truncated or rewritten after planning"
                )
            items_path = shard_dir / ITEMS_NAME
            if not items_path.is_file():
                raise SnapshotError(
                    f"{root}: shard {entry['dir']} has no {ITEMS_NAME}"
                )
            items_digest = _sha256_of(items_path)
            if items_digest != entry.get("items_sha256"):
                raise SnapshotError(
                    f"{root}: shard {entry['dir']} items checksum mismatch"
                )
            shards.append(
                ShardSpec(
                    shard_id=position,
                    dir_name=str(entry["dir"]),
                    n_items=int(entry.get("n_items", 0)),
                    n_clusters=int(entry.get("n_clusters", 0)),
                    labels=[int(label) for label in entry.get("labels", [])],
                    manifest_sha256=str(entry["manifest_sha256"]),
                    items_sha256=str(entry["items_sha256"]),
                )
            )
        return cls(
            root=root,
            parent_manifest_sha256=parent.get("manifest_sha256"),
            parent_n_items=int(parent.get("n_items", 0)),
            parent_n_clusters=int(parent.get("n_clusters", 0)),
            parent_dim=int(parent.get("dim", 0)),
            strategy=str(payload.get("strategy", "")),
            shards=shards,
        )


class ShardPlanner:
    """Split one detection snapshot into per-shard serving artifacts.

    Parameters
    ----------
    n_shards:
        Requested number of shards.  When the snapshot has fewer
        clusters than shards, the plan shrinks to one shard per cluster
        (never an empty shard).
    strategy:
        ``"balanced"`` (default) assigns clusters greedily, largest
        first, to the currently lightest shard — near-equal data rows
        per shard regardless of cluster-size skew.  ``"contiguous"``
        keeps clusters in data order (by smallest member index) and
        cuts the sequence into contiguous runs
        (:func:`repro.parallel.mapreduce.chunk_evenly`, the PALID
        chunking rule) — shard *i* serves a contiguous region of the
        corpus, which matters when the corpus itself is range-partitioned.

    Example
    -------
    >>> from repro.serve import ShardPlanner           # doctest: +SKIP
    >>> plan = ShardPlanner(n_shards=4).plan("snap_dir", "shards_dir")
    ... # doctest: +SKIP
    """

    def __init__(self, n_shards: int = 2, *, strategy: str = "balanced"):
        if n_shards < 1:
            raise ValidationError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        if strategy not in STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        self.n_shards = int(n_shards)
        self.strategy = strategy

    # ------------------------------------------------------------------
    def plan(self, source, out_root) -> ShardPlan:
        """Split *source* into shard artifacts under *out_root*.

        Parameters
        ----------
        source:
            A snapshot directory path (loaded ``mmap=True``, so planning
            a multi-GB snapshot never materialises its matrix) or an
            in-memory :class:`DetectionSnapshot`.
        out_root:
            Directory to create the shard set in.

        Returns
        -------
        ShardPlan
            The saved plan (``out_root/plan.json`` exists on return).

        Raises
        ------
        ValidationError
            Snapshot with no dominant clusters (nothing to serve), or
            clusters whose supports overlap (not shardable without
            double-counting; never produced by ALID's peeling fits).
        """
        if isinstance(source, DetectionSnapshot):
            snapshot = source
        else:
            snapshot = DetectionSnapshot.load(source, mmap=True)
        # The manifest SHA doubles as the delta-chain anchor: a snapshot
        # loaded from (or ever saved to) disk carries it, and
        # ShardedClusterService.apply_delta verifies chains against it.
        parent_sha = snapshot.manifest_sha256
        if snapshot.n_clusters == 0:
            raise ValidationError(
                "snapshot holds no dominant clusters; there is nothing "
                "to shard"
            )
        member_total = sum(c.size for c in snapshot.clusters)
        member_union = np.unique(
            np.concatenate([c.members for c in snapshot.clusters])
        )
        if member_union.size != member_total:
            raise ValidationError(
                "cluster supports overlap; cluster sharding requires "
                "support-disjoint clusters (ALID peeling fits always "
                "are — reduce PALID overlaps before sharding)"
            )
        groups = self._assign_clusters(snapshot.clusters)
        root = pathlib.Path(out_root)
        root.mkdir(parents=True, exist_ok=True)
        # Plan removed first (an interrupted re-plan reads as a clean
        # missing-plan state), then any shard directories of a previous
        # plan: a smaller new plan must not leave checksum-valid stale
        # shards of an older fit lying around as loadable snapshots.
        (root / PLAN_NAME).unlink(missing_ok=True)
        for stale in sorted(root.glob("shard_[0-9][0-9][0-9]")):
            if stale.is_dir():
                shutil.rmtree(stale)
        specs: list[ShardSpec] = []
        for shard_id, rows in enumerate(groups):
            specs.append(
                self._write_shard(
                    snapshot, parent_sha, root, shard_id, rows, len(groups)
                )
            )
        plan = ShardPlan(
            root=root,
            parent_manifest_sha256=parent_sha,
            parent_n_items=snapshot.n_items,
            parent_n_clusters=snapshot.n_clusters,
            parent_dim=snapshot.dim,
            strategy=self.strategy,
            shards=specs,
        )
        plan.save()
        return plan

    # ------------------------------------------------------------------
    def _assign_clusters(self, clusters: list[Cluster]) -> list[list[int]]:
        """Partition cluster rows into per-shard lists (no empty shards)."""
        k = len(clusters)
        n_shards = min(self.n_shards, k)
        if self.strategy == "contiguous":
            order = sorted(
                range(k), key=lambda row: int(clusters[row].members.min())
            )
            return chunk_evenly(order, n_shards)
        # balanced: largest clusters first onto the lightest shard.
        order = sorted(
            range(k),
            key=lambda row: (-clusters[row].size, clusters[row].label),
        )
        loads = [0] * n_shards
        groups: list[list[int]] = [[] for _ in range(n_shards)]
        for row in order:
            target = min(range(n_shards), key=lambda s: (loads[s], s))
            groups[target].append(row)
            loads[target] += clusters[row].size
        return groups

    def _write_shard(
        self,
        snapshot: DetectionSnapshot,
        parent_sha: str | None,
        root: pathlib.Path,
        shard_id: int,
        rows: list[int],
        n_shards: int,
    ) -> ShardSpec:
        """Materialise one shard as a DetectionSnapshot + items file."""
        clusters = [snapshot.clusters[row] for row in rows]
        items = np.unique(
            np.concatenate([c.members for c in clusters])
        ).astype(np.intp)
        # Remap each cluster's members to shard-local row positions;
        # member order inside a cluster is preserved, so payoff blocks
        # (and their BLAS batching) match the single-process assigner
        # bit for bit.
        local_clusters = [
            Cluster(
                members=np.searchsorted(items, c.members),
                weights=c.weights.copy(),
                density=c.density,
                label=c.label,
                seed=c.seed,
            )
            for c in clusters
        ]
        # Each shard keeps the quality scores of exactly its clusters
        # (scores are per-label facts, indifferent to the member remap),
        # so a sharded pool can re-export the parent's gauges.
        quality = (
            None
            if snapshot.quality is None
            else {
                int(c.label): dict(snapshot.quality[int(c.label)])
                for c in clusters
                if int(c.label) in snapshot.quality
            }
        )
        arrays = snapshot.index_arrays
        shard = DetectionSnapshot(
            data=np.ascontiguousarray(np.asarray(snapshot.data)[items]),
            config=snapshot.config,
            kernel=snapshot.kernel,
            lsh_r=snapshot.lsh_r,
            index_arrays={
                "projections": np.asarray(arrays["projections"]),
                "hash_offsets": np.asarray(arrays["hash_offsets"]),
                "mixers": np.asarray(arrays["mixers"]),
                "item_keys": np.ascontiguousarray(
                    np.asarray(arrays["item_keys"])[:, items]
                ),
                "active": np.ones(items.size, dtype=bool),
            },
            clusters=local_clusters,
            meta={
                "shard_id": shard_id,
                "n_shards": n_shards,
                "strategy": self.strategy,
                "parent_manifest_sha256": parent_sha,
                "parent_n_items": snapshot.n_items,
                "cluster_labels": [int(c.label) for c in clusters],
            },
            quality=quality,
        )
        dir_name = f"shard_{shard_id:03d}"
        shard_dir = root / dir_name
        shard.save(shard_dir)
        items_path = shard_dir / ITEMS_NAME
        tmp_path = shard_dir / (ITEMS_NAME + ".tmp.npy")
        np.save(tmp_path, items.astype(np.int64))
        tmp_path.replace(items_path)
        return ShardSpec(
            shard_id=shard_id,
            dir_name=dir_name,
            n_items=int(items.size),
            n_clusters=len(clusters),
            labels=[int(c.label) for c in clusters],
            manifest_sha256=_sha256_of(shard_dir / MANIFEST_NAME),
            items_sha256=_sha256_of(items_path),
        )


def replan_for_delta(
    plan: ShardPlan,
    snapshot: DetectionSnapshot,
    removed_labels,
    upserted_labels,
) -> "tuple[ShardPlan, list[int]] | None":
    """Rewrite only the shards a delta touched; keep the rest on disk.

    *snapshot* is the **post-delta** full snapshot
    (:meth:`~repro.serve.snapshot.SnapshotDelta.apply` output) and
    *removed_labels* / *upserted_labels* are the delta's change set.
    Shard ownership follows the current *plan*: a removed or replaced
    label touches the shard that owns it; a brand-new label lands on the
    lightest already-touched shard (by recorded rows, ties to the lower
    shard id), or the lightest shard overall when the delta only adds
    clusters.  Untouched shard directories are not rewritten — their
    spec entries (checksums included) carry over verbatim, which is what
    lets :meth:`~repro.serve.sharded.ShardedClusterService.apply_delta`
    keep those workers' processes running.

    ``plan.json`` is removed first and the updated plan written last, so
    an interrupted rewrite reads as a clean missing-plan state, and
    replaced shard files go through the snapshot writer's
    write-to-temp + rename — a worker still mmap-serving the old shard
    keeps its inodes.

    Returns
    -------
    tuple[ShardPlan, list[int]] | None
        The saved updated plan and the sorted touched shard ids —
        or ``None`` when some touched shard would end up with zero
        clusters, in which case the caller must fall back to a full
        re-plan (an empty shard is not a servable artifact).
    """
    label_to_shard = {
        int(label): spec.shard_id
        for spec in plan.shards
        for label in spec.labels
    }
    removed = {int(label) for label in removed_labels}
    upserted = {int(label) for label in upserted_labels}
    unknown = removed - set(label_to_shard)
    if unknown:
        raise ValidationError(
            f"delta removes labels {sorted(unknown)} that no shard in "
            f"{plan.root} owns — the plan does not match the delta's "
            f"parent snapshot"
        )
    # Survivors keep their shard (and their within-shard order);
    # replaced labels (removed + re-upserted) come back to the shard
    # that owned them.
    new_sets = {
        spec.shard_id: [
            int(label) for label in spec.labels if int(label) not in removed
        ]
        for spec in plan.shards
    }
    touched = {
        label_to_shard[label]
        for label in removed | (upserted & set(label_to_shard))
    }
    for label in sorted(upserted & set(label_to_shard)):
        if label in removed:
            new_sets[label_to_shard[label]].append(label)
    fresh = sorted(upserted - set(label_to_shard))
    if fresh:
        candidates = sorted(touched) or [s.shard_id for s in plan.shards]
        target = min(
            candidates, key=lambda sid: (plan.shards[sid].n_items, sid)
        )
        touched.add(target)
        new_sets[target].extend(fresh)
    if any(not new_sets[sid] for sid in touched):
        return None
    label_to_row = {
        int(c.label): row for row, c in enumerate(snapshot.clusters)
    }
    strategy = plan.strategy if plan.strategy in STRATEGIES else "balanced"
    planner = ShardPlanner(n_shards=len(plan.shards), strategy=strategy)
    (plan.root / PLAN_NAME).unlink(missing_ok=True)
    specs = list(plan.shards)
    for sid in sorted(touched):
        rows = [label_to_row[label] for label in new_sets[sid]]
        specs[sid] = planner._write_shard(
            snapshot,
            snapshot.manifest_sha256,
            plan.root,
            sid,
            rows,
            len(plan.shards),
        )
    new_plan = ShardPlan(
        root=plan.root,
        parent_manifest_sha256=snapshot.manifest_sha256,
        parent_n_items=snapshot.n_items,
        parent_n_clusters=snapshot.n_clusters,
        parent_dim=snapshot.dim,
        strategy=plan.strategy,
        shards=specs,
    )
    new_plan.save()
    return new_plan, sorted(touched)
