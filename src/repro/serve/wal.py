"""Write-ahead log for the live-corpus ingest tier.

The durability half of :mod:`repro.serve.ingest`: before the
:class:`~repro.serve.ingest.IngestService` mutates its stream, the
operation is journaled here, so a crash at *any* byte of the run loses
at most the operation whose record never committed.  The paper's §6
server-database deployment assumes exactly this discipline from its
storage layer; this module makes the reproduction honest about it.

Format
------
A WAL is a single append-only file::

    REPROWAL1\\n                         file header (magic + version)
    [u32 length | payload | u32 crc32]  one frame per record
    ...

Little-endian framing; the CRC-32 covers the payload bytes.  Each
payload is a JSON header (record kind, free-form ``meta``, array
descriptors) terminated by a NUL byte, followed by the raw C-order
bytes of every array in descriptor order — no pickling anywhere, so a
WAL can never execute code on replay.

Record kinds (:data:`RECORD_KINDS`):

* ``begin`` — the stream's :class:`~repro.core.config.ALIDConfig`,
  written once when an empty journal is attached; replay reconstructs
  the stream from it.
* ``ingest`` — one arriving batch, journaled **before** the absorb
  step runs (write-ahead, not write-behind).
* ``retire`` — tombstoned row indices, journaled before the stream
  retires them.
* ``publish_base`` / ``publish_delta`` — commit markers written
  **after** the artifact directory saved successfully, carrying its
  manifest SHA-256; an artifact directory without its marker is an
  uncommitted publish attempt and is ignored (then overwritten) by
  recovery.

Torn tails
----------
Appends are not atomic: a crash mid-write leaves a frame whose length
prefix, payload, or CRC is incomplete.  :func:`read_records` stops at
the first frame that fails its checks and reports how many bytes were
committed; :meth:`WriteAheadLog.truncate_torn_tail` drops the rest.
Because the file is append-only, everything *before* the torn frame is
untouched by the crash — the committed prefix replays exactly.

Fault injection
---------------
``fault_hook`` is the chaos seam: a callable consulted at the
``append`` and ``fsync`` stages that may perform a partial write and
raise, raise ``ENOSPC``, or swallow the fsync — see
:mod:`repro.testing.faults`.  Production runs leave it ``None``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import struct
import zlib

import numpy as np

from repro.exceptions import ValidationError, WALError

__all__ = [
    "RECORD_KINDS",
    "WAL_MAGIC",
    "WALRecord",
    "WriteAheadLog",
    "read_records",
]

WAL_MAGIC = b"REPROWAL1\n"
RECORD_KINDS = (
    "begin",
    "ingest",
    "retire",
    "publish_base",
    "publish_delta",
)
_LEN = struct.Struct("<I")
_CRC = struct.Struct("<I")
# A frame larger than this is a corrupt length prefix, not a record:
# the biggest legitimate payloads are ingest batches, and even the
# slow soak profile ships well under a few MB per batch.
_MAX_PAYLOAD = 1 << 30


def _json_default(value):
    """Coerce numpy scalars in record meta; reject anything else."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    raise TypeError(
        f"WAL meta value {value!r} ({type(value).__name__}) is not "
        f"JSON-serializable"
    )


@dataclasses.dataclass
class WALRecord:
    """One committed journal record.

    Attributes
    ----------
    kind:
        One of :data:`RECORD_KINDS`.
    meta:
        The record's JSON header ``meta`` block (publish markers carry
        the artifact's manifest SHA-256 and counts here).
    arrays:
        Named payload arrays (an ingest batch, retire indices), C-order
        copies owned by the caller.
    """

    kind: str
    meta: dict
    arrays: dict[str, np.ndarray]


def _encode(kind: str, meta: dict, arrays: dict[str, np.ndarray]) -> bytes:
    """Frame one record: length-prefixed JSON+arrays payload plus CRC."""
    if kind not in RECORD_KINDS:
        raise ValidationError(
            f"WAL record kind must be one of {RECORD_KINDS}, got {kind!r}"
        )
    blobs: list[bytes] = []
    descriptors: list[dict] = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        descriptors.append(
            {
                "name": str(name),
                "dtype": str(array.dtype),
                "shape": list(array.shape),
            }
        )
        blobs.append(array.tobytes())
    header = {"kind": kind, "meta": meta, "arrays": descriptors}
    try:
        header_bytes = json.dumps(
            header, sort_keys=True, default=_json_default
        ).encode("utf-8")
    except TypeError as exc:
        raise ValidationError(
            f"WAL record meta cannot be journaled: {exc}"
        ) from exc
    payload = header_bytes + b"\0" + b"".join(blobs)
    return (
        _LEN.pack(len(payload))
        + payload
        + _CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF)
    )


def _decode(payload: bytes, *, context: str) -> WALRecord:
    """Rebuild a record from a CRC-verified payload."""
    sep = payload.find(b"\0")
    if sep < 0:
        raise WALError(f"{context}: record header is not NUL-terminated")
    try:
        header = json.loads(payload[:sep].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WALError(
            f"{context}: record header is not valid JSON: {exc}"
        ) from exc
    kind = header.get("kind")
    if kind not in RECORD_KINDS:
        raise WALError(f"{context}: unknown record kind {kind!r}")
    arrays: dict[str, np.ndarray] = {}
    offset = sep + 1
    for descriptor in header.get("arrays", []):
        try:
            dtype = np.dtype(descriptor["dtype"])
            shape = tuple(int(s) for s in descriptor["shape"])
            name = str(descriptor["name"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WALError(
                f"{context}: malformed array descriptor "
                f"{descriptor!r}: {exc}"
            ) from exc
        n_bytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        blob = payload[offset:offset + n_bytes]
        if len(blob) != n_bytes:
            raise WALError(
                f"{context}: array {name!r} needs {n_bytes} payload "
                f"bytes, {len(blob)} present"
            )
        arrays[name] = np.frombuffer(blob, dtype=dtype).reshape(shape).copy()
        offset += n_bytes
    if offset != len(payload):
        raise WALError(
            f"{context}: {len(payload) - offset} trailing payload "
            f"byte(s) no array descriptor claims"
        )
    return WALRecord(kind=kind, meta=dict(header.get("meta") or {}),
                     arrays=arrays)


def read_records(path) -> tuple[list[WALRecord], int, int]:
    """Read the committed prefix of a WAL file.

    Returns ``(records, committed_bytes, total_bytes)``: every record
    up to (excluding) the first frame whose length prefix, payload
    size, or CRC-32 fails, the byte offset that committed prefix ends
    at, and the file's actual size.  ``committed_bytes < total_bytes``
    is the torn-tail signature a crash mid-append leaves behind.

    Raises
    ------
    WALError
        Missing file, short/foreign header, or a structurally invalid
        record *inside* a CRC-clean frame (decoder errors are damage
        replay must not paper over).
    """
    path = pathlib.Path(path)
    if not path.is_file():
        raise WALError(f"{path} is not a write-ahead log: no such file")
    blob = path.read_bytes()
    total = len(blob)
    if total < len(WAL_MAGIC) or not blob.startswith(WAL_MAGIC):
        raise WALError(
            f"{path} is not a write-ahead log: bad or short header "
            f"(want {WAL_MAGIC!r})"
        )
    records: list[WALRecord] = []
    offset = len(WAL_MAGIC)
    while offset < total:
        if offset + _LEN.size > total:
            break  # torn length prefix
        (length,) = _LEN.unpack_from(blob, offset)
        if length > _MAX_PAYLOAD:
            break  # corrupt length prefix reads as a torn tail
        end = offset + _LEN.size + length + _CRC.size
        if end > total:
            break  # torn payload or CRC
        payload = blob[offset + _LEN.size:offset + _LEN.size + length]
        (crc,) = _CRC.unpack_from(blob, offset + _LEN.size + length)
        if crc != (zlib.crc32(payload) & 0xFFFFFFFF):
            break  # bit rot or torn rewrite: nothing after it is safe
        records.append(
            _decode(payload, context=f"{path} record {len(records)}")
        )
        offset = end
    return records, offset, total


class WriteAheadLog:
    """An append-only, CRC-per-record journal file.

    Parameters
    ----------
    path:
        Journal file; created (with its header) when missing, opened
        for append when present — after validating the header and
        scanning the committed prefix, so :attr:`n_records` is right
        from the first append.
    fsync:
        Fsync after every append (default).  Turning it off trades the
        power-loss guarantee for speed; process-crash durability (the
        chaos suite's threat model) is unaffected either way.
    fault_hook:
        Chaos seam: ``hook(stage, handle, data)`` consulted at stage
        ``"append"`` (data = the framed record bytes; return True to
        claim the write, e.g. after writing a torn prefix) and
        ``"fsync"`` (data = None; return True to swallow the fsync).
        See :mod:`repro.testing.faults`.
    """

    def __init__(self, path, *, fsync: bool = True, fault_hook=None):
        self._path = pathlib.Path(path)
        self._fsync = bool(fsync)
        self._fault_hook = fault_hook
        if self._path.exists():
            records, committed, total = read_records(self._path)
            if committed < total:
                raise WALError(
                    f"{self._path} has a torn tail ({total - committed} "
                    f"uncommitted byte(s) after record {len(records)}); "
                    f"truncate it via recovery before appending"
                )
            self._n_records = len(records)
        else:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._path.write_bytes(WAL_MAGIC)
            self._n_records = 0
        self._handle = open(self._path, "ab")

    # ------------------------------------------------------------------
    @property
    def path(self) -> pathlib.Path:
        """The journal file."""
        return self._path

    @property
    def n_records(self) -> int:
        """Committed records (scanned at open, counted per append)."""
        return self._n_records

    # ------------------------------------------------------------------
    def append(self, kind: str, *, meta: dict | None = None,
               arrays: dict[str, np.ndarray] | None = None) -> int:
        """Append one record durably; return its 0-based index.

        The frame is written in one ``write`` call and fsynced before
        returning (unless constructed with ``fsync=False``), so a
        record whose ``append`` returned is committed: replay will see
        it even if the process dies on the very next instruction.
        """
        if self._handle.closed:
            raise WALError(f"{self._path}: journal is closed")
        frame = _encode(kind, dict(meta or {}), dict(arrays or {}))
        handled = False
        if self._fault_hook is not None:
            handled = bool(self._fault_hook("append", self._handle, frame))
        if not handled:
            self._handle.write(frame)
        self._handle.flush()
        if self._fsync:
            skipped = False
            if self._fault_hook is not None:
                skipped = bool(
                    self._fault_hook("fsync", self._handle, None)
                )
            if not skipped:
                os.fsync(self._handle.fileno())
        index = self._n_records
        self._n_records += 1
        return index

    def replay(self) -> list[WALRecord]:
        """Re-read every committed record (flushing pending appends)."""
        if not self._handle.closed:
            self._handle.flush()
        records, _, _ = read_records(self._path)
        return records

    @classmethod
    def truncate_torn_tail(cls, path) -> int:
        """Drop any uncommitted tail bytes; return how many were cut.

        The recovery primitive: after this, the file holds exactly its
        committed prefix and reopens cleanly for append.
        """
        records, committed, total = read_records(path)
        torn = total - committed
        if torn:
            with open(path, "r+b") as handle:
                handle.truncate(committed)
                handle.flush()
                os.fsync(handle.fileno())
        return torn

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the append handle (idempotent)."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        """Context-manager entry."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the append handle."""
        self.close()
