"""Bounded-queue admission control with per-client fair dequeue.

The serving front-end (:mod:`repro.serve.frontend`) must not buffer
traffic without limit: under sustained overload an unbounded queue turns
every request's latency into the backlog's drain time.  The
:class:`AdmissionController` enforces a hard cap on queued work measured
in *rows* (query vectors), rejects excess arrivals with a
``retry_after`` hint (:class:`~repro.exceptions.AdmissionError`), and
hands batches to the dispatcher through a round-robin **fair dequeue**
so one chatty client cannot starve the others.

The controller is a passive, thread-safe data structure: it never
spawns threads or touches the event loop.  Producers call
:meth:`AdmissionController.offer`; the single dispatcher drains with
:meth:`AdmissionController.drain` and reports observed service speed
back via :meth:`AdmissionController.note_drained`, which feeds the
``retry_after`` estimate.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from ..exceptions import AdmissionError, ValidationError
from ..obs.metrics import MetricsRegistry

__all__ = ["AdmissionController"]

#: Floor/ceiling for the ``retry_after`` hint (seconds).  The hint is a
#: back-off suggestion, not a reservation; clamping keeps it sane when
#: the drain-rate estimate is cold or the queue is nearly empty.
_RETRY_AFTER_MIN = 0.001
_RETRY_AFTER_MAX = 30.0

#: Smoothing factor for the exponentially-weighted drain rate.
_RATE_ALPHA = 0.3


class AdmissionController:
    """Bounded ingress queue with round-robin fairness across clients.

    Work is measured in rows because service cost is proportional to
    rows, not requests: one 1024-row request occupies the executor as
    long as 64 16-row requests.  Bounds:

    - ``max_queued_rows`` — global cap across every client; an arrival
      that would push the total past this is rejected.
    - ``max_client_rows`` — optional per-client cap (defaults to the
      global cap), so a single client cannot fill the whole queue even
      when the global budget has room.

    :meth:`drain` interleaves clients round-robin, taking whole requests
    (a request is never split) until the row budget is spent.  The
    round-robin cursor persists across calls, so service order is fair
    over time, not just within one batch.
    """

    def __init__(
        self,
        *,
        max_queued_rows: int = 4096,
        max_client_rows: int | None = None,
        registry: MetricsRegistry | None = None,
    ):
        """Validate queue bounds and start with an empty queue.

        ``registry`` optionally supplies the
        :class:`~repro.obs.metrics.MetricsRegistry` the lifetime
        accounting counters and the backlog / drain-rate gauges live
        in; a private ``component="admission"`` registry is created
        when omitted and exposed as :attr:`registry` either way.
        """
        if max_queued_rows < 1:
            raise ValidationError(
                f"max_queued_rows must be >= 1, got {max_queued_rows}"
            )
        if max_client_rows is None:
            max_client_rows = max_queued_rows
        if max_client_rows < 1:
            raise ValidationError(
                f"max_client_rows must be >= 1, got {max_client_rows}"
            )
        self.max_queued_rows = int(max_queued_rows)
        self.max_client_rows = int(max_client_rows)
        self._lock = threading.Lock()
        # client -> FIFO of (item, n_rows); insertion order doubles as
        # the round-robin ring (dicts preserve it).
        self._queues: dict[str, deque[tuple[Any, int]]] = {}
        self._client_rows: dict[str, int] = {}
        self._queued_rows = 0
        self._queued_requests = 0
        # Round-robin resume point: the client to serve first next drain.
        self._cursor: str | None = None
        # Lifetime accounting lives in registry counters (exact:
        # offered == admitted + rejected); queue state stays in plain
        # ints for the dequeue logic and is mirrored into gauges.
        self.registry = (
            MetricsRegistry(component="admission")
            if registry is None
            else registry
        )
        reg = self.registry
        self._m_offered = reg.counter(
            "admission_offered_requests_total", "Requests offered"
        )
        self._m_admitted = reg.counter(
            "admission_admitted_requests_total", "Requests admitted"
        )
        self._m_admitted_rows = reg.counter(
            "admission_admitted_rows_total", "Rows admitted"
        )
        self._m_rejected = reg.counter(
            "admission_rejected_requests_total", "Requests rejected"
        )
        self._m_rejected_rows = reg.counter(
            "admission_rejected_rows_total", "Rows rejected"
        )
        self._g_queued_rows = reg.gauge(
            "admission_queued_rows", "Rows currently queued (backlog)"
        )
        self._g_queued_requests = reg.gauge(
            "admission_queued_requests", "Requests currently queued"
        )
        self._g_queued_clients = reg.gauge(
            "admission_queued_clients", "Clients with queued work"
        )
        self._g_peak_queued_rows = reg.gauge(
            "admission_peak_queued_rows", "High-water mark of queued rows"
        )
        self._g_drain_rate = reg.gauge(
            "admission_drain_rate_rows_per_s",
            "EWMA of observed drain speed (rows/s); feeds retry_after",
        )
        self._peak_queued_rows = 0
        # EWMA of observed drain speed, rows/second; feeds retry_after.
        self._drain_rate = 0.0

    # ------------------------------------------------------------------
    # producer side

    def offer(self, client: str, item: Any, n_rows: int) -> None:
        """Enqueue ``item`` for ``client`` or raise :class:`AdmissionError`.

        ``n_rows`` must be positive and no larger than the per-client
        cap (a request that can never fit is rejected outright rather
        than waiting forever).
        """
        if n_rows < 1:
            raise ValidationError(f"n_rows must be >= 1, got {n_rows}")
        with self._lock:
            self._m_offered.inc()
            client_rows = self._client_rows.get(client, 0)
            if (
                self._queued_rows + n_rows > self.max_queued_rows
                or client_rows + n_rows > self.max_client_rows
            ):
                self._m_rejected.inc()
                self._m_rejected_rows.inc(n_rows)
                retry_after = self._retry_after_locked(n_rows)
                scope = (
                    "client"
                    if client_rows + n_rows > self.max_client_rows
                    else "queue"
                )
                raise AdmissionError(
                    f"admission rejected {n_rows} rows for client "
                    f"{client!r}: {scope} capacity exhausted "
                    f"({self._queued_rows}/{self.max_queued_rows} rows "
                    "queued)",
                    retry_after=retry_after,
                )
            queue = self._queues.get(client)
            if queue is None:
                queue = self._queues[client] = deque()
            queue.append((item, n_rows))
            self._client_rows[client] = client_rows + n_rows
            self._queued_rows += n_rows
            self._queued_requests += 1
            self._m_admitted.inc()
            self._m_admitted_rows.inc(n_rows)
            if self._queued_rows > self._peak_queued_rows:
                self._peak_queued_rows = self._queued_rows
                self._g_peak_queued_rows.set(self._peak_queued_rows)
            self._sync_backlog_gauges_locked()

    # ------------------------------------------------------------------
    # dispatcher side

    def drain(self, max_rows: int) -> list[tuple[str, Any, int]]:
        """Dequeue up to ``max_rows`` rows, fairly across clients.

        Cycles clients round-robin starting after the last client served
        by the previous drain, taking one whole request per client per
        pass.  Always takes at least one request when the queue is
        non-empty (so an oversized request cannot wedge the queue), and
        otherwise stops before exceeding the budget.  Returns a list of
        ``(client, item, n_rows)`` in dispatch order; empty when idle.
        """
        if max_rows < 1:
            raise ValidationError(f"max_rows must be >= 1, got {max_rows}")
        out: list[tuple[str, Any, int]] = []
        with self._lock:
            taken = 0
            while self._queued_requests:
                ring = [c for c, q in self._queues.items() if q]
                if self._cursor in ring:
                    start = ring.index(self._cursor)
                    ring = ring[start:] + ring[:start]
                progressed = False
                for client in ring:
                    queue = self._queues[client]
                    if not queue:
                        continue
                    n_rows = queue[0][1]
                    if out and taken + n_rows > max_rows:
                        continue
                    item, n_rows = queue.popleft()
                    self._client_rows[client] -= n_rows
                    if not queue:
                        del self._queues[client]
                        del self._client_rows[client]
                    self._queued_rows -= n_rows
                    self._queued_requests -= 1
                    taken += n_rows
                    out.append((client, item, n_rows))
                    progressed = True
                    # Resume the next drain *after* this client.
                    self._cursor = self._next_after(client)
                    if taken >= max_rows:
                        self._sync_backlog_gauges_locked()
                        return out
                if not progressed:
                    break
            if out:
                self._sync_backlog_gauges_locked()
        return out

    def _sync_backlog_gauges_locked(self) -> None:
        """Mirror the current queue depth into the backlog gauges."""
        self._g_queued_rows.set(self._queued_rows)
        self._g_queued_requests.set(self._queued_requests)
        self._g_queued_clients.set(len(self._queues))

    def _next_after(self, client: str) -> str | None:
        """Return the client after ``client`` in the current ring."""
        ring = list(self._queues)
        if not ring:
            return None
        if client not in ring:
            return ring[0]
        return ring[(ring.index(client) + 1) % len(ring)]

    def note_drained(self, n_rows: int, seconds: float) -> None:
        """Fold one completed batch into the drain-rate estimate."""
        if n_rows < 1 or seconds <= 0.0:
            return
        rate = n_rows / seconds
        with self._lock:
            if self._drain_rate <= 0.0:
                self._drain_rate = rate
            else:
                self._drain_rate += _RATE_ALPHA * (rate - self._drain_rate)
            self._g_drain_rate.set(self._drain_rate)

    # ------------------------------------------------------------------
    # introspection

    def _retry_after_locked(self, n_rows: int) -> float:
        """Estimate seconds until ``n_rows`` could plausibly be admitted."""
        if self._drain_rate <= 0.0:
            return _RETRY_AFTER_MAX if self._queued_rows else _RETRY_AFTER_MIN
        backlog = self._queued_rows + n_rows
        estimate = backlog / self._drain_rate
        return float(min(max(estimate, _RETRY_AFTER_MIN), _RETRY_AFTER_MAX))

    @property
    def queued_rows(self) -> int:
        """Rows currently queued across all clients."""
        with self._lock:
            return self._queued_rows

    @property
    def queued_requests(self) -> int:
        """Requests currently queued across all clients."""
        with self._lock:
            return self._queued_requests

    def stats(self) -> dict:
        """Return queue bounds, current depth, and lifetime accounting.

        ``offered_requests == admitted_requests + rejected_requests``
        holds exactly at every instant — the soak lane gates on it.
        The lifetime fields read the registry counters (same numbers a
        metrics scrape sees); queue depth reads the live queue state.
        """
        with self._lock:
            return {
                "max_queued_rows": self.max_queued_rows,
                "max_client_rows": self.max_client_rows,
                "queued_rows": self._queued_rows,
                "queued_requests": self._queued_requests,
                "queued_clients": len(self._queues),
                "peak_queued_rows": self._peak_queued_rows,
                "offered_requests": self._m_offered.value,
                "admitted_requests": self._m_admitted.value,
                "admitted_rows": self._m_admitted_rows.value,
                "rejected_requests": self._m_rejected.value,
                "rejected_rows": self._m_rejected_rows.value,
                "drain_rate_rows_per_s": self._drain_rate,
            }
