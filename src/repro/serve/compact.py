"""Delta-chain compaction: fold base + deltas into a fresh base.

A long-lived ingest pipeline publishes one
:class:`~repro.serve.snapshot.SnapshotDelta` per round, so a chain
grows without bound — every cold start pays one
:meth:`~repro.serve.snapshot.SnapshotDelta.apply` per round since the
last base.  :func:`compact_chain` folds the whole chain into one fresh
:class:`~repro.serve.snapshot.DetectionSnapshot`: the exact in-memory
state a serving process holds at the chain tip, written back to disk
as the next chain's anchor.

Equivalence is pinned two ways (``tests/test_serve_durability.py``):

* the compacted snapshot serves **byte-identical** assignments (labels
  and scores) to the applied chain, on the single-process and the
  sharded front alike;
* compaction is deterministic — compacting the same chain twice
  yields artifacts with the same manifest SHA-256, and the output's
  ``meta`` records the tip SHA it folded
  (``compacted_from``), so provenance survives the fold.

Chain directories follow the ``repro ingest`` layout: one ``base``
snapshot plus ``delta_0000``, ``delta_0001``, ... in sequence order.
"""

from __future__ import annotations

import pathlib
import re

from repro.exceptions import SnapshotError
from repro.obs.metrics import MetricsRegistry
from repro.serve.snapshot import DetectionSnapshot, SnapshotDelta

__all__ = ["chain_artifacts", "compact_chain", "load_chain_tip"]

BASE_NAME = "base"
_DELTA_RE = re.compile(r"^delta_(\d{4,})$")


def chain_artifacts(
    chain_dir,
) -> tuple[pathlib.Path, list[pathlib.Path]]:
    """Locate a chain's base and its deltas in sequence order.

    Only *committed* artifacts count: a directory without a readable
    manifest (the signature of a crash mid-save) is skipped — exactly
    one such uncommitted tail directory may exist, anything further is
    a hole in the chain and raises.

    Raises
    ------
    SnapshotError
        Missing chain directory or base, or a gap in the delta
        numbering (``delta_0000`` and ``delta_0002`` without a
        committed ``delta_0001`` cannot be applied in order).
    """
    chain_dir = pathlib.Path(chain_dir)
    if not chain_dir.is_dir():
        raise SnapshotError(
            f"{chain_dir} is not a chain directory: no such directory"
        )
    base = chain_dir / BASE_NAME
    if not base.is_dir():
        raise SnapshotError(
            f"{chain_dir} is not a chain directory: no {BASE_NAME}/ "
            f"snapshot"
        )
    numbered: list[tuple[int, pathlib.Path]] = []
    for entry in chain_dir.iterdir():
        match = _DELTA_RE.match(entry.name)
        if match and entry.is_dir():
            numbered.append((int(match.group(1)), entry))
    numbered.sort()
    deltas: list[pathlib.Path] = []
    for position, (number, path) in enumerate(numbered):
        if number != position:
            raise SnapshotError(
                f"{chain_dir}: delta numbering has a hole — found "
                f"{path.name} where delta_{position:04d} was expected"
            )
        if not (path / "manifest.json").is_file():
            # An interrupted save: tolerable only as the chain's very
            # last directory (the publish that never committed).
            if position != len(numbered) - 1:
                raise SnapshotError(
                    f"{chain_dir}: {path.name} has no manifest but "
                    f"later deltas exist — the chain has a hole"
                )
            break
        deltas.append(path)
    return base, deltas


def load_chain_tip(
    chain_dir, *, mmap: bool = False
) -> DetectionSnapshot:
    """Load the base and apply every delta; return the tip snapshot.

    All-or-nothing like every snapshot load: any corrupt artifact or
    broken parent link raises :class:`~repro.exceptions.SnapshotError`
    before any state escapes.
    """
    base_path, delta_paths = chain_artifacts(chain_dir)
    snapshot = DetectionSnapshot.load(base_path, mmap=mmap)
    for delta_path in delta_paths:
        snapshot = SnapshotDelta.load(delta_path, mmap=mmap).apply(
            snapshot
        )
    return snapshot


def compact_chain(
    chain_dir,
    out_dir,
    *,
    mmap: bool = False,
    registry: MetricsRegistry | None = None,
) -> DetectionSnapshot:
    """Fold a chain into a fresh base snapshot at *out_dir*.

    Loads the chain tip (base plus every committed delta, parent-SHA
    verified by :meth:`~repro.serve.snapshot.SnapshotDelta.apply`) and
    saves it as a plain snapshot — the anchor of the next chain.  The
    output's ``meta`` gains ``compacted_from`` (the tip's manifest
    SHA-256) and ``compacted_deltas`` (how many deltas were folded);
    ``delta_sequence`` bookkeeping from the applied chain is dropped,
    so compacting an identical chain twice writes byte-identical
    manifests.

    Parameters
    ----------
    chain_dir:
        Chain directory (``base`` + ``delta_NNNN`` as written by
        ``repro ingest``).
    out_dir:
        Where to write the compacted snapshot.  May be a fresh
        directory or an existing snapshot directory (overwritten with
        the usual manifest-last discipline); it must not be the
        chain's own ``base`` while the deltas still reference it.
    mmap:
        Memory-map the chain's arrays while folding.
    registry:
        Optional metrics registry; increments ``compactions_total``.

    Raises
    ------
    SnapshotError
        Any corrupt artifact, broken parent link, or *out_dir*
        pointing at the chain's live base.
    """
    chain_dir = pathlib.Path(chain_dir)
    out_dir = pathlib.Path(out_dir)
    if out_dir.resolve() == (chain_dir / BASE_NAME).resolve():
        raise SnapshotError(
            f"refusing to compact {chain_dir} onto its own base: the "
            f"chain's deltas would dangle; write to a fresh directory "
            f"and swap"
        )
    tip = load_chain_tip(chain_dir, mmap=mmap)
    _, delta_paths = chain_artifacts(chain_dir)
    meta = dict(tip.meta)
    meta.pop("delta_sequence", None)
    meta["compacted_from"] = tip.manifest_sha256
    meta["compacted_deltas"] = len(delta_paths)
    compacted = DetectionSnapshot(
        data=tip.data,
        config=tip.config,
        kernel=tip.kernel,
        lsh_r=tip.lsh_r,
        index_arrays=tip.index_arrays,
        clusters=tip.clusters,
        meta=meta,
        quality=tip.quality,
    )
    compacted.save(out_dir)
    if registry is not None:
        registry.counter(
            "compactions_total", "Delta chains folded into fresh bases"
        ).inc()
    return compacted
