"""repro — full reproduction of "ALID: Scalable Dominant Cluster Detection".

Chu, Wang, Liu, Huang & Pei, VLDB 2015 (arXiv:1411.0064).

Public API highlights
---------------------
* :class:`~repro.core.alid.ALID` — the paper's detector (LID + ROI + CIVS
  with peeling);
* :class:`~repro.parallel.palid.PALID` — the MapReduce-parallel variant;
* baselines: DS, IID, SEA, AP, graph shift, k-means, spectral
  (full / Nystrom), mean shift — all in :mod:`repro.baselines`;
* dataset generators matching the paper's workloads in
  :mod:`repro.datasets`, plus the full feature pipelines behind them
  (LDA / GIST / SIFT) in :mod:`repro.features`;
* neighbour search: p-stable LSH with multi-probe queries in
  :mod:`repro.lsh`, exact k-d tree and spill tree in :mod:`repro.ann`;
* evaluation (AVG-F, accounting, growth orders, external indices) in
  :mod:`repro.eval`; Appendix B's convergence model in
  :mod:`repro.analysis`; ASCII figure rendering in :mod:`repro.viz`;
* serving: persistent detection snapshots, incremental snapshot deltas
  and batch cluster assignment
  (:class:`~repro.serve.snapshot.DetectionSnapshot`,
  :class:`~repro.serve.snapshot.SnapshotDelta`,
  :func:`~repro.serve.client.connect`) in :mod:`repro.serve`, with
  streaming ingest (:class:`~repro.streaming.online.StreamingALID`,
  :class:`~repro.serve.ingest.IngestService`) feeding it live.

Quickstart
----------
>>> from repro import ALID, ALIDConfig, make_synthetic_mixture, average_f1
>>> dataset = make_synthetic_mixture(n=500, regime="bounded", seed=1)
>>> result = ALID(ALIDConfig(delta=200)).fit(dataset.data)
>>> 0.0 <= average_f1(result.member_lists(), dataset.truth_clusters()) <= 1.0
True
"""

from repro.affinity import (
    AffinityCounters,
    AffinityOracle,
    LaplacianKernel,
    SparseAffinityBuilder,
    sparse_degree,
    suggest_scaling_factor,
)
from repro.core import (
    ALID,
    ALIDConfig,
    Cluster,
    DetectionResult,
    DoubleDeckBall,
    estimate_roi,
    roi_radius,
)
from repro.datasets import (
    Dataset,
    make_nart,
    make_ndi,
    make_sift,
    make_sub_ndi,
    make_synthetic_mixture,
)
from repro.ann import KDTree, SpillTree
from repro.eval import average_f1, f1_score, loglog_slope
from repro.lsh import LSHIndex, MultiProbeQuerier
from repro.serve import (
    ClusterService,
    DetectionSnapshot,
    SnapshotDelta,
    connect,
)
from repro.streaming import StreamingALID

__version__ = "1.0.0"

__all__ = [
    "ALID",
    "ALIDConfig",
    "Cluster",
    "DetectionResult",
    "DoubleDeckBall",
    "estimate_roi",
    "roi_radius",
    "AffinityCounters",
    "AffinityOracle",
    "LaplacianKernel",
    "SparseAffinityBuilder",
    "sparse_degree",
    "suggest_scaling_factor",
    "Dataset",
    "make_nart",
    "make_ndi",
    "make_sift",
    "make_sub_ndi",
    "make_synthetic_mixture",
    "average_f1",
    "f1_score",
    "loglog_slope",
    "ClusterService",
    "connect",
    "DetectionSnapshot",
    "SnapshotDelta",
    "KDTree",
    "LSHIndex",
    "MultiProbeQuerier",
    "SpillTree",
    "StreamingALID",
    "__version__",
]
