"""Terminal-friendly charts for the benchmark harness.

The paper's evaluation is mostly *figures* (log-log runtime/memory
curves, AVG-F sweeps).  :mod:`repro.viz.ascii` renders the experiment
tables as ASCII charts so a bench run reproduces not just the numbers
but the *shape* the paper shows — slopes, crossovers, plateaus —
directly in the terminal and in ``benchmarks/results/``.
"""

from repro.viz.ascii import render_chart, render_table_chart

__all__ = ["render_chart", "render_table_chart"]
