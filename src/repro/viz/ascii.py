"""ASCII scatter/line charts with optional log axes.

Pure-text rendering of ``(x, y)`` series onto a character grid: each
series gets a marker, axes get tick labels, and a legend follows the
plot.  Log axes reproduce the paper's double-logarithmic presentation
(Fig. 7/9), where growth orders appear as straight-line slopes.
"""

from __future__ import annotations


import numpy as np

from repro.exceptions import ValidationError

__all__ = ["render_chart", "render_leaderboard", "render_table_chart"]

_MARKERS = "ox+*#@%&"


def _transform(values: np.ndarray, log: bool, axis: str) -> np.ndarray:
    if not log:
        return values.astype(np.float64)
    if np.any(values <= 0):
        raise ValidationError(
            f"log {axis}-axis requires strictly positive values "
            f"(min={values.min()})"
        )
    return np.log10(values.astype(np.float64))


def _ticks(low: float, high: float, count: int, log: bool) -> list[float]:
    if count < 2:
        return [low]
    return [low + (high - low) * i / (count - 1) for i in range(count)]


def _format_tick(value: float, log: bool) -> str:
    if log:
        return f"1e{value:.1f}" if value % 1 else f"1e{int(value)}"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e4 or magnitude < 1e-2:
        return f"{value:.1e}"
    if magnitude >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def render_chart(
    series: dict[str, tuple],
    *,
    width: int = 64,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named ``(xs, ys)`` series as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping from series name to an ``(xs, ys)`` pair of equal-length
        sequences.  Empty series are skipped; at least one point must
        remain overall.
    width / height:
        Plot-area size in characters (excluding axes and labels).
    logx / logy:
        Use log10 axes (all values on that axis must be positive).
    title / xlabel / ylabel:
        Optional labels; ``ylabel`` is printed above the axis.

    Returns
    -------
    str
        The rendered chart, ready to print.
    """
    if width < 8 or height < 4:
        raise ValidationError(
            f"chart must be at least 8x4 characters, got {width}x{height}"
        )
    cleaned: list[tuple[str, np.ndarray, np.ndarray]] = []
    for name, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ValidationError(
                f"series {name!r} must hold 1-D xs/ys of equal length"
            )
        keep = np.isfinite(xs) & np.isfinite(ys)
        if keep.any():
            cleaned.append((name, xs[keep], ys[keep]))
    if not cleaned:
        raise ValidationError("no finite data points to plot")

    all_x = np.concatenate([xs for _, xs, _ in cleaned])
    all_y = np.concatenate([ys for _, _, ys in cleaned])
    tx = _transform(all_x, logx, "x")
    ty = _transform(all_y, logy, "y")
    x_low, x_high = float(tx.min()), float(tx.max())
    y_low, y_high = float(ty.min()), float(ty.max())
    if x_high - x_low < 1e-12:
        x_low, x_high = x_low - 0.5, x_high + 0.5
    if y_high - y_low < 1e-12:
        y_low, y_high = y_low - 0.5, y_high + 0.5

    grid = [[" "] * width for _ in range(height)]
    for index, (name, xs, ys) in enumerate(cleaned):
        marker = _MARKERS[index % len(_MARKERS)]
        txs = _transform(xs, logx, "x")
        tys = _transform(ys, logy, "y")
        for x, y in zip(txs, tys):
            col = int(round((x - x_low) / (x_high - x_low) * (width - 1)))
            row = int(round((y - y_low) / (y_high - y_low) * (height - 1)))
            grid[height - 1 - row][col] = marker

    margin = max(
        len(_format_tick(tick, logy))
        for tick in _ticks(y_low, y_high, 3, logy)
    )
    lines: list[str] = []
    if title:
        lines.append(" " * (margin + 2) + title)
    if ylabel:
        lines.append(" " * (margin + 2) + f"[{ylabel}]")
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        value = y_low + fraction * (y_high - y_low)
        # Tick labels at top, middle, bottom rows only.
        if row_index in (0, height // 2, height - 1):
            label = _format_tick(value, logy).rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    left = _format_tick(x_low, logx)
    mid = _format_tick((x_low + x_high) / 2, logx)
    right = _format_tick(x_high, logx)
    axis = (
        left
        + mid.center(width - len(left) - len(right))
        + right
    )
    lines.append(" " * (margin + 2) + axis)
    if xlabel:
        lines.append(" " * (margin + 2) + f"[{xlabel}]")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, (name, _, _) in enumerate(cleaned)
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)


def render_leaderboard(
    headers: list[str],
    rows: list[list],
    *,
    title: str = "",
) -> str:
    """Render a fixed-width ASCII table (arena leaderboards, quality).

    The first column is left-aligned (names), every other column is
    right-aligned (numbers); cells are stringified as given, so callers
    control numeric formatting.  Rows shorter than the header are
    padded with empty cells.

    Parameters
    ----------
    headers:
        Column titles; fixes the column count.
    rows:
        One list of cell values per table row.
    title:
        Optional line printed above the table.
    """
    if not headers:
        raise ValidationError("leaderboard needs at least one column")
    cells = [
        [str(value) for value in row] + [""] * (len(headers) - len(row))
        for row in rows
    ]
    for row in cells:
        if len(row) > len(headers):
            raise ValidationError(
                f"row has {len(row)} cells but only "
                f"{len(headers)} columns are declared"
            )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells))
        if cells
        else len(headers[col])
        for col in range(len(headers))
    ]

    def _line(row: list[str]) -> str:
        parts = [
            row[col].ljust(widths[col])
            if col == 0
            else row[col].rjust(widths[col])
            for col in range(len(headers))
        ]
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(_line(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(_line(row) for row in cells)
    return "\n".join(lines)


def render_table_chart(
    table,
    *,
    x_key: str,
    y_attr: str,
    methods: list[str] | None = None,
    logx: bool = True,
    logy: bool = True,
    title: str | None = None,
    **kwargs,
) -> str:
    """Chart an :class:`~repro.experiments.common.ExperimentTable`.

    Extracts one ``(x, y)`` series per method via ``table.series`` and
    renders them together — the shape companion to ``table.render()``.
    Methods without any finite points on the requested axes are skipped
    (e.g. budget-stopped baselines in Fig. 9), and with a log axis the
    non-positive points of a series are dropped rather than fatal (a
    zero counter at one sweep size must not abort a whole bench chart).
    """
    if methods is None:
        seen: list[str] = []
        for row in table.rows:
            if row.method not in seen:
                seen.append(row.method)
        methods = seen
    series = {}
    for method in methods:
        xs, ys = table.series(method, x_key, y_attr)
        if not xs:
            continue
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        keep = np.ones(xs.size, dtype=bool)
        if logx:
            keep &= xs > 0
        if logy:
            keep &= ys > 0
        if keep.any():
            series[method] = (xs[keep], ys[keep])
    if not series:
        raise ValidationError(
            f"table {table.name!r} has no plottable ({x_key}, {y_attr}) data"
        )
    return render_chart(
        series,
        logx=logx,
        logy=logy,
        title=title if title is not None else f"{table.name}: {y_attr}",
        xlabel=x_key,
        ylabel=y_attr,
        **kwargs,
    )
