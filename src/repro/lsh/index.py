"""Multi-table LSH index with inverted lists and peeling support.

This is the index CIVS queries (paper §4.3): ``l`` hash tables, each built
from ``mu`` concatenated p-stable functions, plus an inverted list mapping
every item to its bucket in every table.  As in the paper, "all possible
LSH queries are built into the hash tables", so querying an indexed item
is a pure inverted-list lookup with no re-hashing.

Implementation notes
--------------------
* The ``mu`` concatenated hash integers of one item are compressed into a
  single 64-bit bucket key through a random linear map (with wraparound).
  Key collisions of genuinely different hash vectors are ~2^-64 events
  and at worst add a spurious candidate that the exact distance filter
  removes — the classic fingerprinting trade.
* Each table stores its inverted list in CSR form: a sorted array of
  unique bucket keys, an offsets array, and one flat member array
  grouped by bucket.  Lookups are ``searchsorted`` binary searches and
  multi-bucket queries gather all member ranges with a single
  repeat/cumsum fancy-index — no Python dict traffic on the hot path.
* Batched queries (:meth:`LSHIndex.query_items`) deduplicate the
  candidate union with one ``np.unique`` over the concatenated
  per-table gathers, which is what makes CIVS's multi-query pattern
  (one query per supporting item, paper Fig. 4(b)) cheap.
* Peeling (paper §4.4) uses an *active mask*: peeled items stay in the
  tables but are filtered out of every query — O(1) per peel, no rebuild.
* The batched peeling driver reads the collision *structure* directly:
  :meth:`LSHIndex.active_bucket_populations` (one ``reduceat`` over the
  fused CSR), :meth:`LSHIndex.colliding_mask` (noise pre-filter),
  :meth:`LSHIndex.collision_components` (independent-seed cohorts) and
  :meth:`LSHIndex.query_items_grouped` (one gather serving a whole seed
  cohort's CIVS queries).
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components

from repro.exceptions import ValidationError
from repro.lsh.hashing import PStableHashFamily
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_data_matrix, check_index_array

__all__ = ["LSHIndex"]


def _csr_gather(
    members: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Concatenate ``members[s:s+l]`` for every (start, length) range.

    The standard vectorised multi-range gather: positions inside each
    range are recovered from a cumsum so no Python loop over ranges is
    needed.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=members.dtype)
    range_ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.intp)
    within -= np.repeat(range_ends - lengths, lengths)
    return members[np.repeat(starts, lengths) + within]


class _Table:
    """One hash table as a CSR inverted list over 64-bit bucket keys."""

    __slots__ = (
        "family",
        "mixer",
        "item_keys",
        "unique_keys",
        "offsets",
        "members",
    )

    def __init__(
        self,
        family: PStableHashFamily,
        mixer: np.ndarray,
        item_keys: np.ndarray,
    ):
        self.family = family
        self.mixer = mixer
        self.item_keys = item_keys.astype(np.uint64, copy=False)
        self._rebuild()

    def _rebuild(self) -> None:
        """(Re)build the CSR bucket structure from ``item_keys``.

        A stable argsort keeps equal-key items in ascending index order,
        so every bucket's member list comes out sorted for free.
        """
        keys = self.item_keys
        n = keys.size
        order = np.argsort(keys, kind="stable").astype(np.intp)
        sorted_keys = keys[order]
        if n == 0:
            self.unique_keys = np.empty(0, dtype=np.uint64)
            self.offsets = np.zeros(1, dtype=np.intp)
            self.members = order
            return
        boundaries = np.flatnonzero(
            np.concatenate([[True], sorted_keys[1:] != sorted_keys[:-1]])
        ).astype(np.intp)
        self.unique_keys = sorted_keys[boundaries]
        self.offsets = np.concatenate([boundaries, [n]]).astype(np.intp)
        self.members = order

    def merge_insert(self, new_keys: np.ndarray) -> None:
        """Merge a batch of appended items into the CSR without a re-sort.

        The existing member array is already key-sorted, and the batch
        only needs an O(m log m) sort of its own; a two-way merge (two
        ``searchsorted`` passes + one scatter) then produces the same
        member order a full stable re-sort would — old items keep their
        ascending-index order inside each bucket, and new items (whose
        global indices are larger) follow them.  O(n + m log m) per
        batch instead of the historical O(n log n) full re-sort.
        """
        new_keys = np.asarray(new_keys).astype(np.uint64, copy=False)
        old_n = self.item_keys.size
        m = new_keys.size
        if m == 0:
            return
        order_new = np.argsort(new_keys, kind="stable").astype(np.intp)
        sorted_new = new_keys[order_new]
        new_members = order_new + old_n
        old_sorted = self.item_keys[self.members]
        # Merged positions: each old item is shifted right by the number
        # of strictly-smaller new keys; each new item by the number of
        # old keys that are smaller *or equal* (ties put old first).
        shift_old = np.searchsorted(sorted_new, old_sorted, side="left")
        shift_new = np.searchsorted(old_sorted, sorted_new, side="right")
        merged = np.empty(old_n + m, dtype=np.intp)
        merged[np.arange(old_n, dtype=np.intp) + shift_old] = self.members
        merged[np.arange(m, dtype=np.intp) + shift_new] = new_members
        self.item_keys = np.concatenate([self.item_keys, new_keys])
        merged_keys = self.item_keys[merged]
        boundaries = np.flatnonzero(
            np.concatenate([[True], merged_keys[1:] != merged_keys[:-1]])
        ).astype(np.intp)
        self.unique_keys = merged_keys[boundaries]
        self.offsets = np.concatenate([boundaries, [old_n + m]]).astype(
            np.intp
        )
        self.members = merged

    # ------------------------------------------------------------------
    def keys_of_points(self, points: np.ndarray) -> np.ndarray:
        """Bucket keys of arbitrary points (batched; one hashing pass).

        Cast to uint64 *before* mixing: int64 * uint64 promotes to
        float64, which cannot represent the wraparound keys the index
        was built with (negative codes would hash to the wrong bucket).
        """
        codes = self.family.hash_many(points).astype(np.uint64)
        with np.errstate(over="ignore"):
            return (codes * self.mixer[None, :]).sum(axis=1, dtype=np.uint64)

    def key_of_point(self, point: np.ndarray) -> int:
        """Bucket key of a single point (see :meth:`keys_of_points`)."""
        return int(self.keys_of_points(point[None, :])[0])

    def bucket_ranges(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(starts, lengths) of the buckets keyed by *keys*.

        Keys absent from the table are dropped (not errors): a perturbed
        multi-probe key or a foreign point's key may simply hit no
        bucket.
        """
        if self.unique_keys.size == 0:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        keys = np.asarray(keys, dtype=np.uint64)
        pos = np.searchsorted(self.unique_keys, keys)
        pos = np.minimum(pos, self.unique_keys.size - 1)
        valid = self.unique_keys[pos] == keys
        pos = pos[valid]
        return self.offsets[pos], self.offsets[pos + 1] - self.offsets[pos]

    def gather(self, keys: np.ndarray) -> np.ndarray:
        """Concatenated members of every bucket keyed by *keys*."""
        starts, lengths = self.bucket_ranges(keys)
        return _csr_gather(self.members, starts, lengths)

class LSHIndex:
    """p-stable LSH index over a fixed data matrix.

    Parameters
    ----------
    data:
        Data matrix of shape ``(n, d)``.
    r:
        Segment length of the p-stable functions (paper Fig. 6 sweep).
    n_projections:
        Concatenated hash functions per table (paper: 40).
    n_tables:
        Number of hash tables (paper: 50).
    seed:
        Seed for the random projections (each table gets an independent
        child generator, so indices are reproducible).
    """

    def __init__(
        self,
        data: np.ndarray,
        *,
        r: float,
        n_projections: int = 40,
        n_tables: int = 50,
        seed=0,
    ):
        self._data = check_data_matrix(data, name="data")
        if n_tables <= 0:
            raise ValidationError(f"n_tables must be positive, got {n_tables}")
        self.r = float(r)
        self.n_projections = int(n_projections)
        self.n_tables = int(n_tables)
        n, dim = self._data.shape
        rngs = spawn_generators(seed, self.n_tables)
        # Fixed seed: the mixer only fingerprints hash vectors, it carries
        # no locality information, so it need not vary with `seed`.
        mixer_rng = as_generator(np.random.SeedSequence(0xA11D))
        self._tables: list[_Table] = []
        for rng in rngs:
            family = PStableHashFamily(dim, self.r, self.n_projections, seed=rng)
            mixer = mixer_rng.integers(
                1, 2**63 - 1, size=self.n_projections, dtype=np.uint64
            ) | np.uint64(1)
            codes = family.hash_many(self._data).astype(np.uint64)
            with np.errstate(over="ignore"):
                keys = (codes * mixer[None, :]).sum(axis=1, dtype=np.uint64)
            self._tables.append(_Table(family, mixer, keys))
        self._active = np.ones(n, dtype=bool)
        self._rebuild_combined()

    def _rebuild_combined(self) -> None:
        """Fuse every table's inverted list into one index-level CSR.

        This is the paper's O(n*l) inverted list made literal: one flat
        member array over all tables, per-bucket (start, length) ranges,
        and an ``(l, n)`` map from item to its bucket id in every table.
        Item queries then touch no per-table Python at all — a batched
        query is one fancy-index over the map, one ``np.unique``, and
        one multi-range gather, regardless of ``n_tables``.
        """
        members_parts = []
        starts_parts = []
        lengths_parts = []
        item_bucket_rows = []
        bucket_base = 0
        member_base = 0
        for table in self._tables:
            starts_parts.append(table.offsets[:-1] + member_base)
            lengths_parts.append(np.diff(table.offsets))
            members_parts.append(table.members)
            pos = np.searchsorted(table.unique_keys, table.item_keys)
            item_bucket_rows.append(pos + bucket_base)
            bucket_base += table.unique_keys.size
            member_base += table.members.size
        self._g_members = np.concatenate(members_parts)
        self._g_starts = np.concatenate(starts_parts).astype(np.intp)
        self._g_lengths = np.concatenate(lengths_parts).astype(np.intp)
        self._item_buckets = np.vstack(item_bucket_rows)
        # First global bucket id of each table (for per-table lookups).
        self._table_bucket_base = np.concatenate(
            [[0], np.cumsum([t.unique_keys.size for t in self._tables])]
        ).astype(np.intp)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of indexed items (including deactivated ones)."""
        return self._data.shape[0]

    @property
    def active_mask(self) -> np.ndarray:
        """Read-only view of the active (not peeled) mask."""
        view = self._active.view()
        view.flags.writeable = False
        return view

    @property
    def n_active(self) -> int:
        """Number of items still active."""
        return int(self._active.sum())

    # ------------------------------------------------------------------
    # incremental insertion (streaming extension, paper §6 future work)
    # ------------------------------------------------------------------
    def insert(self, new_data: np.ndarray) -> np.ndarray:
        """Append new items to the index and return their global indices.

        The hash families are fixed at construction, so inserted items
        land in exactly the buckets a from-scratch rebuild would put
        them in; queries before/after insertion are consistent.  New
        items start active.

        Cost note: each table absorbs the batch through a merge-based
        CSR update (:meth:`_Table.merge_insert`) — O(n + m log m) per
        table for a batch of m, not the historical O(n log n) full
        re-sort.  The fused item->bucket map still shifts globally
        whenever a new bucket appears, so refreshing it stays O(l * n);
        batch arrivals rather than inserting point-by-point.
        """
        new_data = check_data_matrix(new_data, name="new_data")
        if new_data.shape[1] != self._data.shape[1]:
            raise ValidationError(
                f"new_data has dim {new_data.shape[1]}, "
                f"index expects {self._data.shape[1]}"
            )
        start = self._data.shape[0]
        new_indices = np.arange(start, start + new_data.shape[0], dtype=np.intp)
        self._data = np.vstack([self._data, new_data])
        for table in self._tables:
            table.merge_insert(table.keys_of_points(new_data))
        self._active = np.concatenate(
            [self._active, np.ones(new_data.shape[0], dtype=bool)]
        )
        self._rebuild_combined()
        return new_indices

    # ------------------------------------------------------------------
    # peeling support
    # ------------------------------------------------------------------
    def deactivate(self, indices: np.ndarray) -> None:
        """Remove items from all future query results (peeling, §4.4)."""
        indices = check_index_array(indices, self.n, name="indices")
        self._active[indices] = False

    def reactivate_all(self) -> None:
        """Restore every item (used between independent experiments)."""
        self._active[:] = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _finalize(self, candidates: np.ndarray) -> np.ndarray:
        """Deduplicate, sort and active-filter a raw candidate gather."""
        if candidates.size == 0:
            return np.empty(0, dtype=np.intp)
        out = np.unique(candidates)
        return out[self._active[out]]

    def _gather_buckets(self, bucket_ids: np.ndarray) -> np.ndarray:
        """Concatenated members of index-level buckets (all tables)."""
        return _csr_gather(
            self._g_members,
            self._g_starts[bucket_ids],
            self._g_lengths[bucket_ids],
        )

    def query_item(self, i: int) -> np.ndarray:
        """Active items colliding with indexed item *i* in any table.

        Pure inverted-list lookup — no hashing at query time, as in the
        paper.  The result excludes *i* itself and is sorted.
        """
        if not 0 <= i < self.n:
            raise IndexError(f"item index {i} out of range [0, {self.n})")
        out = self._finalize(self._gather_buckets(self._item_buckets[:, i]))
        return out[out != i]

    def query_point(self, point: np.ndarray) -> np.ndarray:
        """Active items colliding with an arbitrary *point* in any table."""
        point = np.asarray(point, dtype=np.float64)
        if point.ndim != 1 or point.shape[0] != self._data.shape[1]:
            raise ValidationError(
                f"point must be 1-D of dim {self._data.shape[1]}, "
                f"got shape {point.shape}"
            )
        gathered = np.concatenate(
            [
                t.gather(t.keys_of_points(point[None, :]))
                for t in self._tables
            ]
        )
        return self._finalize(gathered)

    def query_items(self, indices: np.ndarray) -> np.ndarray:
        """Deduplicated union of :meth:`query_item` over indexed items.

        This is the multi-query pattern of CIVS (paper Fig. 4(b)): every
        supporting item of the current subgraph issues its own query so
        the union of locality-sensitive regions covers the ROI.  The
        whole batch is one vectorised gather per table; the union is
        deduplicated once, and *all* query items are excluded from the
        result (psi must contain new vertices only).
        """
        indices = check_index_array(indices, self.n, name="indices")
        if indices.size == 0:
            return np.empty(0, dtype=np.intp)
        bucket_ids = np.unique(self._item_buckets[:, indices])
        out = self._finalize(self._gather_buckets(bucket_ids))
        if out.size:
            out = out[np.isin(out, indices, invert=True)]
        return out

    def query_points(self, points: np.ndarray) -> np.ndarray:
        """Deduplicated union of :meth:`query_point` over several points.

        One hashing pass per table for the whole batch — the cheap way
        to probe many foreign points (e.g. streaming arrivals) at once.
        An empty batch returns an empty result.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        points = check_data_matrix(points, name="points")
        if points.shape[1] != self._data.shape[1]:
            raise ValidationError(
                f"points have dim {points.shape[1]}, "
                f"index expects {self._data.shape[1]}"
            )
        parts = []
        for table in self._tables:
            keys = np.unique(table.keys_of_points(points))
            parts.append(table.gather(keys))
        return self._finalize(np.concatenate(parts))

    def query_items_grouped(
        self, groups: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Run :meth:`query_items` for several index sets in one fused pass.

        This is the seed-block form of the CIVS multi-query pattern: a
        cohort of concurrently peeled seeds issues one grouped retrieval
        instead of one :meth:`query_items` call per seed.  Buckets of
        every group are gathered together, then candidates are
        deduplicated *per group* with a single ``np.unique`` over
        ``group_id * n + item`` keys — no Python loop over tables or
        candidates.

        Parameters
        ----------
        groups:
            Sequence of index arrays; each array plays the role of the
            ``indices`` argument of :meth:`query_items`.

        Returns
        -------
        list of numpy.ndarray
            ``out[i]`` is exactly ``self.query_items(groups[i])``:
            sorted, deduplicated, active-only, and excluding the
            group's own items (but *not* other groups' items).
        """
        results: list[np.ndarray] = [
            np.empty(0, dtype=np.intp) for _ in groups
        ]
        n = self.n
        n_buckets = int(self._g_lengths.size)
        pair_parts: list[np.ndarray] = []
        query_key_parts: list[np.ndarray] = []
        for gid, group in enumerate(groups):
            group = check_index_array(group, n, name="groups")
            if group.size == 0:
                continue
            buckets = self._item_buckets[:, group].ravel()
            pair_parts.append(
                np.int64(gid) * n_buckets + buckets.astype(np.int64)
            )
            query_key_parts.append(
                np.int64(gid) * n + group.astype(np.int64)
            )
        if not pair_parts:
            return results
        # Unique (group, bucket) pairs -> one multi-range member gather.
        pair_keys = np.unique(np.concatenate(pair_parts))
        exclude_keys = (
            np.unique(np.concatenate(query_key_parts))
            if query_key_parts
            else None
        )
        return self._resolve_grouped_pairs(
            pair_keys, len(groups), exclude_keys=exclude_keys
        )

    def _resolve_grouped_pairs(
        self,
        pair_keys: np.ndarray,
        n_groups: int,
        *,
        exclude_keys: np.ndarray | None = None,
    ) -> list[np.ndarray]:
        """Resolve sorted ``group * n_buckets + bucket`` keys to candidates.

        The shared tail of the grouped query paths: one multi-range
        member gather over the fused CSR, per-group dedup via a single
        ``np.unique`` over ``group * n + item`` keys, active-mask
        filtering, optional exclusion of ``group * n + item`` keys (a
        group's own query items), and the sorted split into per-group
        arrays.
        """
        results: list[np.ndarray] = [
            np.empty(0, dtype=np.intp) for _ in range(n_groups)
        ]
        if pair_keys.size == 0:
            return results
        n = self.n
        n_buckets = int(self._g_lengths.size)
        bucket_ids = (pair_keys % n_buckets).astype(np.intp)
        pair_gids = pair_keys // n_buckets
        lengths = self._g_lengths[bucket_ids]
        members = _csr_gather(
            self._g_members, self._g_starts[bucket_ids], lengths
        )
        # Unique (group, item) pairs: dedup within each group only.
        member_keys = np.repeat(pair_gids, lengths) * n + members
        member_keys = np.unique(member_keys)
        items = (member_keys % n).astype(np.intp)
        gids = member_keys // n
        keep = self._active[items]
        if exclude_keys is not None and exclude_keys.size:
            keep &= np.isin(member_keys, exclude_keys, invert=True)
        items = items[keep]
        gids = gids[keep]
        # Split the flat result at group boundaries; keys are sorted by
        # (group, item), so every slice comes out sorted.
        bounds = np.searchsorted(gids, np.arange(n_groups + 1))
        for gid in range(n_groups):
            lo, hi = int(bounds[gid]), int(bounds[gid + 1])
            if hi > lo:
                results[gid] = items[lo:hi]
        return results

    def query_points_grouped(self, points: np.ndarray) -> list[np.ndarray]:
        """Run :meth:`query_point` for a batch of points in one fused pass.

        The serve-time retrieval pattern: a block of arriving queries is
        hashed once per table, every hit bucket of every query is
        gathered together from the fused CSR, and candidates are
        deduplicated *per query* with a single ``np.unique`` over
        ``query_id * n + item`` keys — the foreign-point twin of
        :meth:`query_items_grouped`.

        Parameters
        ----------
        points:
            Query block of shape ``(q, d)``.

        Returns
        -------
        list of numpy.ndarray
            ``out[i]`` is exactly ``self.query_point(points[i])``:
            sorted, deduplicated, active-only.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            return []
        points = check_data_matrix(points, name="points")
        if points.shape[1] != self._data.shape[1]:
            raise ValidationError(
                f"points have dim {points.shape[1]}, "
                f"index expects {self._data.shape[1]}"
            )
        q = points.shape[0]
        results: list[np.ndarray] = [
            np.empty(0, dtype=np.intp) for _ in range(q)
        ]
        n_buckets = int(self._g_lengths.size)
        if n_buckets == 0:
            return results
        pair_parts: list[np.ndarray] = []
        for t_id, table in enumerate(self._tables):
            if table.unique_keys.size == 0:
                continue
            keys = table.keys_of_points(points)
            pos = np.searchsorted(table.unique_keys, keys)
            pos = np.minimum(pos, table.unique_keys.size - 1)
            valid = table.unique_keys[pos] == keys
            qids = np.flatnonzero(valid).astype(np.int64)
            bucket_ids = pos[valid] + self._table_bucket_base[t_id]
            pair_parts.append(qids * n_buckets + bucket_ids.astype(np.int64))
        if not pair_parts:
            return results
        # Global bucket ids are unique across tables, so (query, bucket)
        # pairs need no dedup — but sorting them keys the final split.
        pair_keys = np.sort(np.concatenate(pair_parts))
        return self._resolve_grouped_pairs(pair_keys, q)

    # ------------------------------------------------------------------
    # persistence (detection snapshots, repro.serve)
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, np.ndarray]:
        """Arrays that, together with the data matrix, rebuild this index.

        Used by :mod:`repro.serve.snapshot` to persist a fitted index:
        the per-table hash state (Gaussian projections, segment offsets,
        key mixers, per-item bucket keys) and the active mask.  The CSR
        bucket structure is *derived* state — it is rebuilt
        deterministically from ``item_keys`` on restore, so snapshots
        stay small and independent of the CSR layout.

        Returns
        -------
        dict of numpy.ndarray
            ``projections`` ``(l, mu, d)``, ``hash_offsets`` ``(l,
            mu)``, ``mixers`` ``(l, mu)``, ``item_keys`` ``(l, n)``,
            ``active`` ``(n,)`` — all copies, safe to persist.
        """
        family_arrays = [t.family.export_arrays() for t in self._tables]
        return {
            "projections": np.stack([p for p, _ in family_arrays]),
            "hash_offsets": np.stack([o for _, o in family_arrays]),
            "mixers": np.stack([t.mixer.copy() for t in self._tables]),
            "item_keys": np.stack([t.item_keys.copy() for t in self._tables]),
            "active": self._active.copy(),
        }

    def export_keys(self, start: int = 0) -> np.ndarray:
        """Per-table bucket keys of items ``start..n`` as an ``(l, m)`` array.

        The incremental slice of :meth:`export_state`'s ``item_keys``:
        after a batch of :meth:`insert` calls, ``export_keys(old_n)``
        is exactly the insert state those batches added — what a
        :class:`~repro.serve.snapshot.SnapshotDelta` persists so a
        parent snapshot's tables extend to the appended rows without
        re-hashing.  Keys are position-stable: inserting never rewrites
        an existing item's key, so the slice taken at publish time
        matches what a later full :meth:`export_state` reports for the
        same columns.
        """
        if not 0 <= start <= self.n:
            raise ValidationError(
                f"start must be in [0, {self.n}], got {start}"
            )
        return np.stack(
            [t.item_keys[start:].copy() for t in self._tables]
        )

    @classmethod
    def from_state(
        cls,
        data: np.ndarray,
        *,
        r: float,
        projections: np.ndarray,
        hash_offsets: np.ndarray,
        mixers: np.ndarray,
        item_keys: np.ndarray,
        active: np.ndarray,
    ) -> "LSHIndex":
        """Rebuild an index from :meth:`export_state` arrays, re-hashing nothing.

        The restored index hashes queries and serves lookups
        bit-identically to the exporting one: hash families are restored
        from their stored random state, per-item bucket keys are taken
        verbatim, and the CSR structure is rebuilt with the same stable
        sort construction uses.  *data* may be a read-only memory map —
        it is validated but never copied, which is what lets a multi-GB
        snapshot serve without materialising the matrix.
        """
        data = check_data_matrix(data, name="data")
        projections = np.asarray(projections, dtype=np.float64)
        if projections.ndim != 3:
            raise ValidationError(
                f"projections must be 3-D (tables, mu, dim), "
                f"got ndim={projections.ndim}"
            )
        l, mu, dim = projections.shape
        if dim != data.shape[1]:
            raise ValidationError(
                f"projections have dim {dim}, data has dim {data.shape[1]}"
            )
        n = data.shape[0]
        hash_offsets = np.asarray(hash_offsets, dtype=np.float64)
        mixers = np.asarray(mixers)
        item_keys = np.asarray(item_keys)
        active = np.asarray(active)
        if hash_offsets.shape != (l, mu):
            raise ValidationError(
                f"hash_offsets shape {hash_offsets.shape} != ({l}, {mu})"
            )
        if mixers.shape != (l, mu):
            raise ValidationError(f"mixers shape {mixers.shape} != ({l}, {mu})")
        if item_keys.shape != (l, n):
            raise ValidationError(
                f"item_keys shape {item_keys.shape} != ({l}, {n})"
            )
        if active.shape != (n,):
            raise ValidationError(f"active shape {active.shape} != ({n},)")
        self = cls.__new__(cls)
        self._data = data
        self.r = float(r)
        self.n_projections = int(mu)
        self.n_tables = int(l)
        self._tables = []
        for t in range(l):
            family = PStableHashFamily.from_arrays(
                r=self.r,
                projections=projections[t],
                offsets=hash_offsets[t],
            )
            self._tables.append(
                _Table(
                    family,
                    np.ascontiguousarray(mixers[t], dtype=np.uint64),
                    np.ascontiguousarray(item_keys[t]),
                )
            )
        self._active = np.array(active, dtype=bool)
        self._rebuild_combined()
        return self

    # ------------------------------------------------------------------
    # bucket statistics (PALID seed sampling, paper §4.6)
    # ------------------------------------------------------------------
    def _active_bucket_counts(self, table: _Table) -> np.ndarray:
        """Active-member count of every bucket of one table."""
        if table.members.size == 0:
            return np.zeros(0, dtype=np.int64)
        flags = self._active[table.members].astype(np.int64)
        return np.add.reduceat(flags, table.offsets[:-1])

    def active_bucket_populations(self) -> np.ndarray:
        """Active-member count of every fused-CSR bucket, in one pass.

        Buckets are laid out contiguously in the index-level member
        array (table 0's buckets first, then table 1's, ...), so a
        single ``np.add.reduceat`` over the active flags yields the
        population of **every bucket of every table** without touching
        per-table Python.  This is the bucket-population primitive the
        batched peeling driver's noise pre-filter is built on (§4.4 /
        §4.6: items in small buckets are unlikely dominant-cluster
        members).

        Returns
        -------
        numpy.ndarray
            ``int64`` array of length ``total buckets`` (all tables),
            aligned with the fused bucket ids used by
            ``_item_buckets``.
        """
        if self._g_members.size == 0:
            return np.zeros(self._g_lengths.size, dtype=np.int64)
        flags = self._active[self._g_members].astype(np.int64)
        return np.add.reduceat(flags, self._g_starts)

    def colliding_mask(self) -> np.ndarray:
        """Boolean mask of active items with >= 1 active LSH collision.

        ``colliding_mask()[i]`` is True exactly when
        ``query_item(i).size > 0``: the item is active and shares a
        bucket with another active item in at least one table.  Items
        where it is False are *noise-isolated*: an Alg. 2 run seeded
        there can never retrieve anything (CIVS candidates come from
        LSH collisions only) and provably peels as a zero-work
        singleton.  One fused bucket-population pass, no queries.
        """
        populations = self.active_bucket_populations()
        if populations.size == 0:
            return np.zeros(self.n, dtype=bool)
        has_companion = (populations[self._item_buckets] >= 2).any(axis=0)
        return self._active & has_companion

    def collision_components(self) -> np.ndarray:
        """Connected components of the active collision graph.

        Two active items are connected when they share a bucket in any
        table; components are the transitive closure.  A seeded Alg. 2
        run can only ever reach items inside its seed's component
        (CIVS retrieval is LSH-collision-bound), so seeds in distinct
        components peel independently — the invariant the batched
        driver uses to build conflict-free seed cohorts.

        Returns
        -------
        numpy.ndarray
            ``int64`` labels of length ``n``; inactive items get -1.
            Label values are arbitrary but consistent within one call.
        """
        n = self.n
        labels = np.full(n, -1, dtype=np.int64)
        active_items = np.flatnonzero(self._active)
        if active_items.size == 0:
            return labels
        populations = self.active_bucket_populations()
        item_buckets = self._item_buckets[:, active_items]  # (l, m)
        # Only buckets holding >= 2 active members can connect items.
        useful = populations[item_buckets] >= 2
        rows = np.broadcast_to(active_items, item_buckets.shape)[useful]
        cols = item_buckets[useful] + n
        n_nodes = n + int(self._g_lengths.size)
        bipartite = csr_matrix(
            (np.ones(rows.size, dtype=np.int8), (rows, cols)),
            shape=(n_nodes, n_nodes),
        )
        _, component = connected_components(bipartite, directed=False)
        labels[active_items] = component[active_items]
        return labels

    def item_bucket_sizes(
        self, table: int = 0, *, active_only: bool = False
    ) -> np.ndarray:
        """Per-item size of the bucket it occupies in *table*.

        One fancy-index over the fused CSR, used by the seed schedule to
        rank likely dominant-cluster members without touching bucket
        lists.  ``active_only=True`` counts only unpeeled members, which
        is what seeding over a partially peeled index must use.
        """
        if not 0 <= table < self.n_tables:
            raise IndexError(f"table {table} out of range [0, {self.n_tables})")
        if not active_only:
            return self._g_lengths[self._item_buckets[table]]
        counts = self._active_bucket_counts(self._tables[table])
        local_ids = self._item_buckets[table] - self._table_bucket_base[table]
        return counts[local_ids]

    def bucket_sizes(self, table: int = 0) -> dict[int, int]:
        """Bucket key -> active-member count for one table."""
        if not 0 <= table < self.n_tables:
            raise IndexError(f"table {table} out of range [0, {self.n_tables})")
        t = self._tables[table]
        counts = self._active_bucket_counts(t)
        return {
            int(key): int(count)
            for key, count in zip(t.unique_keys.tolist(), counts.tolist())
        }

    def large_buckets(
        self, min_size: int = 6, table: int | None = 0
    ) -> list[np.ndarray]:
        """Active members of buckets with at least *min_size* active items.

        PALID samples its initial vertices from "every LSH hash bucket
        that contains more than 5 data items" (paper §4.6), i.e.
        ``min_size=6``.  ``table=None`` scans every table (recommended
        for seeding: a cluster that never concentrates in one table's
        buckets may still do so in another's).
        """
        tables = self._tables if table is None else [self._tables[table]]
        out = []
        for t in tables:
            counts = self._active_bucket_counts(t)
            for pos in np.flatnonzero(counts >= min_size):
                members = t.members[t.offsets[pos] : t.offsets[pos + 1]]
                out.append(members[self._active[members]])
        return out

    # ------------------------------------------------------------------
    # memory model
    # ------------------------------------------------------------------
    def storage_cost_entries(self) -> int:
        """Index storage in "slots" for the simulated memory model.

        Matches the paper's accounting (§4.3): O(n*l) for the inverted
        list plus O(n*l) for the hash tables.
        """
        return 2 * self.n * self.n_tables
