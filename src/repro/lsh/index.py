"""Multi-table LSH index with inverted lists and peeling support.

This is the index CIVS queries (paper §4.3): ``l`` hash tables, each built
from ``mu`` concatenated p-stable functions, plus an inverted list mapping
every item to its bucket in every table.  As in the paper, "all possible
LSH queries are built into the hash tables", so querying an indexed item
is a pure inverted-list lookup with no re-hashing.

Implementation notes
--------------------
* The ``mu`` concatenated hash integers of one item are compressed into a
  single 64-bit bucket key through a random linear map (with wraparound).
  Key collisions of genuinely different hash vectors are ~2^-64 events
  and at worst add a spurious candidate that the exact distance filter
  removes — the classic fingerprinting trade.
* Buckets are grouped vectorised (argsort over keys), so index build is
  O(n log n) NumPy work per table instead of n Python dict inserts.
* Peeling (paper §4.4) uses an *active mask*: peeled items stay in the
  tables but are filtered out of every query — O(1) per peel, no rebuild.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.lsh.hashing import PStableHashFamily
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_data_matrix, check_index_array

__all__ = ["LSHIndex"]


class _Table:
    """One hash table: bucket key -> member indices, plus per-item keys."""

    __slots__ = ("family", "mixer", "buckets", "item_keys")

    def __init__(
        self,
        family: PStableHashFamily,
        mixer: np.ndarray,
        buckets: dict,
        item_keys: np.ndarray,
    ):
        self.family = family
        self.mixer = mixer
        self.buckets = buckets
        self.item_keys = item_keys

    def key_of_point(self, point: np.ndarray) -> int:
        # Cast to uint64 *before* mixing: int64 * uint64 promotes to
        # float64, which cannot represent the wraparound keys the index
        # was built with (negative codes would hash to the wrong bucket).
        codes = self.family.hash_many(point[None, :])[0].astype(np.uint64)
        with np.errstate(over="ignore"):
            return int((codes * self.mixer).sum(dtype=np.uint64))


class LSHIndex:
    """p-stable LSH index over a fixed data matrix.

    Parameters
    ----------
    data:
        Data matrix of shape ``(n, d)``.
    r:
        Segment length of the p-stable functions (paper Fig. 6 sweep).
    n_projections:
        Concatenated hash functions per table (paper: 40).
    n_tables:
        Number of hash tables (paper: 50).
    seed:
        Seed for the random projections (each table gets an independent
        child generator, so indices are reproducible).
    """

    def __init__(
        self,
        data: np.ndarray,
        *,
        r: float,
        n_projections: int = 40,
        n_tables: int = 50,
        seed=0,
    ):
        self._data = check_data_matrix(data, name="data")
        if n_tables <= 0:
            raise ValidationError(f"n_tables must be positive, got {n_tables}")
        self.r = float(r)
        self.n_projections = int(n_projections)
        self.n_tables = int(n_tables)
        n, dim = self._data.shape
        rngs = spawn_generators(seed, self.n_tables)
        # Fixed seed: the mixer only fingerprints hash vectors, it carries
        # no locality information, so it need not vary with `seed`.
        mixer_rng = as_generator(np.random.SeedSequence(0xA11D))
        self._tables: list[_Table] = []
        for rng in rngs:
            family = PStableHashFamily(dim, self.r, self.n_projections, seed=rng)
            codes = family.hash_many(self._data).astype(np.uint64)
            mixer = mixer_rng.integers(
                1, 2**63 - 1, size=self.n_projections, dtype=np.uint64
            ) | np.uint64(1)
            with np.errstate(over="ignore"):
                keys = (codes * mixer[None, :]).sum(axis=1, dtype=np.uint64)
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            boundaries = np.flatnonzero(
                np.concatenate([[True], sorted_keys[1:] != sorted_keys[:-1]])
            )
            buckets: dict = {}
            for start, end in zip(
                boundaries, np.concatenate([boundaries[1:], [n]])
            ):
                members = np.sort(order[start:end]).astype(np.intp)
                buckets[int(sorted_keys[start])] = members
            self._tables.append(_Table(family, mixer, buckets, keys))
        self._active = np.ones(n, dtype=bool)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of indexed items (including deactivated ones)."""
        return self._data.shape[0]

    @property
    def active_mask(self) -> np.ndarray:
        """Read-only view of the active (not peeled) mask."""
        view = self._active.view()
        view.flags.writeable = False
        return view

    @property
    def n_active(self) -> int:
        """Number of items still active."""
        return int(self._active.sum())

    # ------------------------------------------------------------------
    # incremental insertion (streaming extension, paper §6 future work)
    # ------------------------------------------------------------------
    def insert(self, new_data: np.ndarray) -> np.ndarray:
        """Append new items to the index and return their global indices.

        The hash families are fixed at construction, so inserted items
        land in exactly the buckets a from-scratch rebuild would put
        them in; queries before/after insertion are consistent.  New
        items start active.
        """
        new_data = check_data_matrix(new_data, name="new_data")
        if new_data.shape[1] != self._data.shape[1]:
            raise ValidationError(
                f"new_data has dim {new_data.shape[1]}, "
                f"index expects {self._data.shape[1]}"
            )
        start = self._data.shape[0]
        new_indices = np.arange(start, start + new_data.shape[0], dtype=np.intp)
        self._data = np.vstack([self._data, new_data])
        for table in self._tables:
            codes = table.family.hash_many(new_data).astype(np.uint64)
            with np.errstate(over="ignore"):
                keys = (codes * table.mixer[None, :]).sum(
                    axis=1, dtype=np.uint64
                )
            table.item_keys = np.concatenate([table.item_keys, keys])
            for key, idx in zip(keys, new_indices):
                members = table.buckets.get(int(key))
                if members is None:
                    table.buckets[int(key)] = np.asarray([idx], dtype=np.intp)
                else:
                    position = int(np.searchsorted(members, idx))
                    table.buckets[int(key)] = np.insert(
                        members, position, idx
                    )
        self._active = np.concatenate(
            [self._active, np.ones(new_data.shape[0], dtype=bool)]
        )
        return new_indices

    # ------------------------------------------------------------------
    # peeling support
    # ------------------------------------------------------------------
    def deactivate(self, indices: np.ndarray) -> None:
        """Remove items from all future query results (peeling, §4.4)."""
        indices = check_index_array(indices, self.n, name="indices")
        self._active[indices] = False

    def reactivate_all(self) -> None:
        """Restore every item (used between independent experiments)."""
        self._active[:] = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _collect(self, seen: set) -> np.ndarray:
        if not seen:
            return np.empty(0, dtype=np.intp)
        out = np.fromiter(seen, dtype=np.intp, count=len(seen))
        out.sort()
        return out[self._active[out]]

    def query_item(self, i: int) -> np.ndarray:
        """Active items colliding with indexed item *i* in any table.

        Pure inverted-list lookup — no hashing at query time, as in the
        paper.  The result excludes *i* itself and is sorted.
        """
        if not 0 <= i < self.n:
            raise IndexError(f"item index {i} out of range [0, {self.n})")
        seen: set[int] = set()
        for table in self._tables:
            members = table.buckets.get(int(table.item_keys[i]))
            if members is not None and members.size > 1:
                seen.update(members.tolist())
        seen.discard(i)
        return self._collect(seen)

    def query_point(self, point: np.ndarray) -> np.ndarray:
        """Active items colliding with an arbitrary *point* in any table."""
        point = np.asarray(point, dtype=np.float64)
        if point.ndim != 1 or point.shape[0] != self._data.shape[1]:
            raise ValidationError(
                f"point must be 1-D of dim {self._data.shape[1]}, "
                f"got shape {point.shape}"
            )
        seen: set[int] = set()
        for table in self._tables:
            members = table.buckets.get(table.key_of_point(point))
            if members is not None:
                seen.update(members.tolist())
        return self._collect(seen)

    def query_items(self, indices: np.ndarray) -> np.ndarray:
        """Union of :meth:`query_item` over several indexed items.

        This is the multi-query pattern of CIVS (paper Fig. 4(b)): every
        supporting item of the current subgraph issues its own query so
        the union of locality-sensitive regions covers the ROI.
        """
        indices = check_index_array(indices, self.n, name="indices")
        seen: set[int] = set()
        for table in self._tables:
            keys = table.item_keys[indices]
            for key in np.unique(keys):
                members = table.buckets.get(int(key))
                if members is not None and members.size > 1:
                    seen.update(members.tolist())
        for i in indices:
            seen.discard(int(i))
        return self._collect(seen)

    # ------------------------------------------------------------------
    # bucket statistics (PALID seed sampling, paper §4.6)
    # ------------------------------------------------------------------
    def bucket_sizes(self, table: int = 0) -> dict[int, int]:
        """Bucket key -> active-member count for one table."""
        if not 0 <= table < self.n_tables:
            raise IndexError(f"table {table} out of range [0, {self.n_tables})")
        return {
            key: int(self._active[members].sum())
            for key, members in self._tables[table].buckets.items()
        }

    def large_buckets(
        self, min_size: int = 6, table: int | None = 0
    ) -> list[np.ndarray]:
        """Active members of buckets with at least *min_size* active items.

        PALID samples its initial vertices from "every LSH hash bucket
        that contains more than 5 data items" (paper §4.6), i.e.
        ``min_size=6``.  ``table=None`` scans every table (recommended
        for seeding: a cluster that never concentrates in one table's
        buckets may still do so in another's).
        """
        tables = self._tables if table is None else [self._tables[table]]
        out = []
        for t in tables:
            for members in t.buckets.values():
                if members.size < min_size:
                    continue
                active = members[self._active[members]]
                if active.size >= min_size:
                    out.append(active)
        return out

    # ------------------------------------------------------------------
    # memory model
    # ------------------------------------------------------------------
    def storage_cost_entries(self) -> int:
        """Index storage in "slots" for the simulated memory model.

        Matches the paper's accounting (§4.3): O(n*l) for the inverted
        list plus O(n*l) for the hash tables.
        """
        return 2 * self.n * self.n_tables
