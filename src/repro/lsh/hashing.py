"""p-stable hash functions ``h(v) = floor((a . v + b) / r)``.

Each hash value is the concatenation of ``n_projections`` such functions
(the paper uses 40 projections per hash value, Fig. 6 caption).  Gaussian
projections make the family 2-stable, i.e. locality sensitive for the
Euclidean distance used throughout the paper's experiments.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["PStableHashFamily"]


class PStableHashFamily:
    """A bundle of ``n_projections`` p-stable hash functions.

    Parameters
    ----------
    dim:
        Dimensionality of the data items.
    r:
        Length of the equally divided segments of the real line (the
        paper's sweep parameter in Fig. 6).  Larger *r* makes collisions
        more likely, lowering the sparse degree of LSH-sparsified
        matrices.
    n_projections:
        Number of concatenated hash functions per hash value (paper: 40).
    seed:
        Seed or generator for the random projections and offsets.
    """

    def __init__(self, dim: int, r: float, n_projections: int = 40, seed=None):
        if dim <= 0:
            raise ValidationError(f"dim must be positive, got {dim}")
        if n_projections <= 0:
            raise ValidationError(
                f"n_projections must be positive, got {n_projections}"
            )
        self.dim = int(dim)
        self.r = check_positive(r, name="r")
        self.n_projections = int(n_projections)
        rng = as_generator(seed)
        # Gaussian entries => 2-stable family (Euclidean distance).
        self._projections = rng.normal(size=(self.n_projections, self.dim))
        self._offsets = rng.uniform(0.0, self.r, size=self.n_projections)

    # ------------------------------------------------------------------
    # persistence (detection snapshots, repro.serve)
    # ------------------------------------------------------------------
    def export_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The family's random state: ``(projections, offsets)`` copies.

        Together with ``r`` these fully determine every hash value the
        family will ever produce, which is what detection snapshots
        persist so a reloaded index hashes queries bit-identically.
        """
        return self._projections.copy(), self._offsets.copy()

    @classmethod
    def from_arrays(
        cls, *, r: float, projections: np.ndarray, offsets: np.ndarray
    ) -> "PStableHashFamily":
        """Rebuild a family from :meth:`export_arrays` output.

        No randomness is consumed: the restored family hashes every
        point exactly as the exporting one did.
        """
        projections = np.ascontiguousarray(projections, dtype=np.float64)
        offsets = np.ascontiguousarray(offsets, dtype=np.float64)
        if projections.ndim != 2:
            raise ValidationError(
                f"projections must be 2-D, got ndim={projections.ndim}"
            )
        if offsets.shape != (projections.shape[0],):
            raise ValidationError(
                f"offsets shape {offsets.shape} does not match "
                f"{projections.shape[0]} projections"
            )
        family = cls.__new__(cls)
        family.dim = int(projections.shape[1])
        family.r = check_positive(r, name="r")
        family.n_projections = int(projections.shape[0])
        family._projections = projections
        family._offsets = offsets
        return family

    def project(self, data: np.ndarray) -> np.ndarray:
        """Raw segment coordinates ``(a . v + b) / r`` for every row.

        The integer part of each coordinate is the hash value; the
        fractional part measures how close the point sits to a segment
        boundary, which is what multi-probe LSH scores its bucket
        perturbations by (:mod:`repro.lsh.multiprobe`).
        """
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if data.shape[1] != self.dim:
            raise ValidationError(
                f"data has dim {data.shape[1]}, hash family expects {self.dim}"
            )
        return (data @ self._projections.T + self._offsets) / self.r

    def hash_many(self, data: np.ndarray) -> np.ndarray:
        """Hash every row of *data*.

        Returns an ``(n, n_projections)`` integer array; each row is the
        concatenated hash value of the corresponding data item.
        """
        return np.floor(self.project(data)).astype(np.int64)

    def hash_one(self, point: np.ndarray) -> tuple[int, ...]:
        """Hash a single point into a hashable bucket key."""
        return tuple(self.hash_many(point[None, :])[0].tolist())

    def keys_for(self, data: np.ndarray) -> list[tuple[int, ...]]:
        """Bucket keys (hashable tuples) for every row of *data*."""
        codes = self.hash_many(data)
        return [tuple(row) for row in codes.tolist()]
