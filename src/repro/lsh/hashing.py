"""p-stable hash functions ``h(v) = floor((a . v + b) / r)``.

Each hash value is the concatenation of ``n_projections`` such functions
(the paper uses 40 projections per hash value, Fig. 6 caption).  Gaussian
projections make the family 2-stable, i.e. locality sensitive for the
Euclidean distance used throughout the paper's experiments.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["PStableHashFamily"]


class PStableHashFamily:
    """A bundle of ``n_projections`` p-stable hash functions.

    Parameters
    ----------
    dim:
        Dimensionality of the data items.
    r:
        Length of the equally divided segments of the real line (the
        paper's sweep parameter in Fig. 6).  Larger *r* makes collisions
        more likely, lowering the sparse degree of LSH-sparsified
        matrices.
    n_projections:
        Number of concatenated hash functions per hash value (paper: 40).
    seed:
        Seed or generator for the random projections and offsets.
    """

    def __init__(self, dim: int, r: float, n_projections: int = 40, seed=None):
        if dim <= 0:
            raise ValidationError(f"dim must be positive, got {dim}")
        if n_projections <= 0:
            raise ValidationError(
                f"n_projections must be positive, got {n_projections}"
            )
        self.dim = int(dim)
        self.r = check_positive(r, name="r")
        self.n_projections = int(n_projections)
        rng = as_generator(seed)
        # Gaussian entries => 2-stable family (Euclidean distance).
        self._projections = rng.normal(size=(self.n_projections, self.dim))
        self._offsets = rng.uniform(0.0, self.r, size=self.n_projections)

    def project(self, data: np.ndarray) -> np.ndarray:
        """Raw segment coordinates ``(a . v + b) / r`` for every row.

        The integer part of each coordinate is the hash value; the
        fractional part measures how close the point sits to a segment
        boundary, which is what multi-probe LSH scores its bucket
        perturbations by (:mod:`repro.lsh.multiprobe`).
        """
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if data.shape[1] != self.dim:
            raise ValidationError(
                f"data has dim {data.shape[1]}, hash family expects {self.dim}"
            )
        return (data @ self._projections.T + self._offsets) / self.r

    def hash_many(self, data: np.ndarray) -> np.ndarray:
        """Hash every row of *data*.

        Returns an ``(n, n_projections)`` integer array; each row is the
        concatenated hash value of the corresponding data item.
        """
        return np.floor(self.project(data)).astype(np.int64)

    def hash_one(self, point: np.ndarray) -> tuple[int, ...]:
        """Hash a single point into a hashable bucket key."""
        return tuple(self.hash_many(point[None, :])[0].tolist())

    def keys_for(self, data: np.ndarray) -> list[tuple[int, ...]]:
        """Bucket keys (hashable tuples) for every row of *data*."""
        codes = self.hash_many(data)
        return [tuple(row) for row in codes.tolist()]
