"""Collision-probability math for p-stable LSH (Datar et al., SoCG 2004).

These closed forms back the recall lower bound ``p`` that the paper's
convergence proof (Appendix B, Proposition 2) relies on: with per-function
collision probability ``p1(c)``, ``mu`` concatenated functions and ``l``
tables, a point at distance ``c`` from the query is retrieved with
probability ``1 - (1 - p1(c)^mu)^l``.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive

__all__ = ["collision_probability", "retrieval_probability", "suggest_tables"]


def _std_normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def collision_probability(distance: float, r: float) -> float:
    """Single-function collision probability for the Gaussian 2-stable family.

    For two points at Euclidean distance *c* and segment length *r*
    (Datar et al., Eq. for ``p(c)``)::

        p(c) = 1 - 2*Phi(-r/c) - (2 / (sqrt(2*pi) * r/c)) * (1 - exp(-r^2 / (2 c^2)))

    As ``c -> 0`` the probability tends to 1; it decreases monotonically
    with distance.
    """
    check_positive(r, name="r")
    if distance < 0:
        raise ValueError(f"distance must be >= 0, got {distance}")
    if distance == 0.0:
        return 1.0
    ratio = r / distance
    term1 = 1.0 - 2.0 * _std_normal_cdf(-ratio)
    term2 = (2.0 / (math.sqrt(2.0 * math.pi) * ratio)) * (
        1.0 - math.exp(-(ratio**2) / 2.0)
    )
    p = term1 - term2
    return min(1.0, max(0.0, p))


def retrieval_probability(
    distance: float, r: float, n_projections: int, n_tables: int
) -> float:
    """Probability that multi-table LSH retrieves a point at *distance*.

    ``1 - (1 - p1(c)^mu)^l`` with ``mu = n_projections`` concatenated
    functions and ``l = n_tables`` tables: the point is found if it
    collides with the query in at least one table.
    """
    if n_projections <= 0 or n_tables <= 0:
        raise ValueError("n_projections and n_tables must be positive")
    p1 = collision_probability(distance, r)
    per_table = p1**n_projections
    return 1.0 - (1.0 - per_table) ** n_tables


def suggest_tables(
    distance: float, r: float, n_projections: int, target_recall: float = 0.9
) -> int:
    """Smallest table count achieving *target_recall* at *distance*.

    Solves ``1 - (1 - p1^mu)^l >= target`` for ``l``.  Returns a large
    sentinel (10**6) if the per-table probability underflows to zero.
    """
    if not 0.0 < target_recall < 1.0:
        raise ValueError(f"target_recall must be in (0,1), got {target_recall}")
    per_table = collision_probability(distance, r) ** n_projections
    if per_table <= 0.0:
        return 10**6
    if per_table >= 1.0:
        return 1
    needed = math.log(1.0 - target_recall) / math.log(1.0 - per_table)
    return max(1, int(math.ceil(needed)))
