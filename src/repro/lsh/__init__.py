"""Locality Sensitive Hashing substrate (Datar et al., SoCG 2004).

The paper indexes all data items with p-stable LSH so CIVS (§4.3) can
retrieve candidate infective vertices inside the ROI, and so the baseline
methods can sparsify their affinity matrices (§5.1).  This package
implements the classic p-stable scheme ``h(v) = floor((a . v + b) / r)``
with Gaussian projections (2-stable), multiple hash tables, inverted
lists, and the collision-probability math used in the paper's convergence
proof (Appendix B).
"""

from repro.lsh.hashing import PStableHashFamily
from repro.lsh.index import LSHIndex
from repro.lsh.multiprobe import MultiProbeQuerier, perturbation_sets
from repro.lsh.params import collision_probability, retrieval_probability

__all__ = [
    "PStableHashFamily",
    "LSHIndex",
    "MultiProbeQuerier",
    "collision_probability",
    "perturbation_sets",
    "retrieval_probability",
]
