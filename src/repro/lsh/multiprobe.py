"""Multi-probe LSH queries (Lv et al., VLDB 2007) over :class:`LSHIndex`.

Plain LSH needs many hash tables to reach high recall — the paper uses
50 (Fig. 6), and each table costs O(n) index memory (§4.3).  Multi-probe
trades probes for tables: besides the query's own bucket, each table is
probed in the neighbouring buckets obtained by perturbing individual
hash coordinates by ±1, in increasing order of expected "miss distance".

For the p-stable function ``h_j(v) = floor(f_j)`` with segment coordinate
``f_j = (a_j . v + b_j) / r`` and fractional part ``x_j``, a near
neighbour that missed the query's bucket most plausibly fell just across
a segment boundary, so the score of perturbing coordinate ``j`` by +1 is
``(1 - x_j)^2`` and by −1 is ``x_j^2`` (squared distance to the
boundary, Lv et al. §4.2).  The cheapest perturbation *sets* are
enumerated with the shift/expand heap over the sorted single-coordinate
scores (§4.4).

The bucket key of a perturbed code vector is computed incrementally:
:class:`~repro.lsh.index.LSHIndex` fingerprints code vectors with a
linear map ``key = sum_j code_j * mixer_j (mod 2^64)``, so perturbing
coordinate ``j`` by ±1 shifts the key by ``±mixer_j`` — no re-hashing.

The querier does **not** run the heap per (query, table).  In sorted-
position space the validity rule is query-independent: when the ``2
mu`` single-coordinate scores are sorted ascending, the opposite
perturbation of the coordinate at sorted position ``p`` always sits at
position ``2 mu - 1 - p`` (``x^2`` and ``(1-x)^2`` order oppositely in
``x``, so rank counts mirror).  That makes the whole enumeration
hoistable: :func:`probe_candidate_sets` precomputes, once per
``(2 mu, n_probes)`` family, every sorted-position set that can appear
among the ``n_probes`` cheapest valid sets for *any* score vector (the
sets whose dominance ideal holds fewer than ``n_probes`` valid sets),
and each query then just scores those candidates against its own sorted
coordinates — a few vectorized gathers per (batch, table) instead of a
Python heap per (query, table).  The per-query result is identical to
the heap enumeration except under exactly-tied perturbation scores
(coordinates whose fractional parts coincide bit-for-bit — probability
zero for real-valued projections), where the adjacent-bucket tie may
resolve differently.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.exceptions import ValidationError
from repro.lsh.index import LSHIndex
from repro.utils.validation import check_index_array

__all__ = ["MultiProbeQuerier", "perturbation_sets", "probe_candidate_sets"]

Perturbation = tuple[int, int]  # (coordinate, delta in {-1, +1})

# Above this probe count the query-independent candidate enumeration is
# not precomputed (its dominance counting grows with n_probes^2) and the
# querier falls back to the exact per-query heap.
_VECTOR_PROBE_CAP = 128


def perturbation_sets(
    fractions: np.ndarray, n_probes: int
) -> list[list[Perturbation]]:
    """The *n_probes* cheapest perturbation sets for one query.

    Parameters
    ----------
    fractions:
        Fractional parts ``x_j in [0, 1)`` of the query's segment
        coordinates, one per hash coordinate.
    n_probes:
        Number of sets to return.

    Returns
    -------
    list of perturbation sets, each a list of ``(coordinate, ±1)``
    pairs, ordered by ascending total score ``sum of x^2 / (1-x)^2``.
    A set never perturbs one coordinate both ways (such sets are
    invalid: the perturbed bucket would not be adjacent).

    Implements the shift/expand heap of Lv et al. §4.4: starting from
    the singleton holding the cheapest perturbation, the successors of a
    set whose maximum sorted position is ``m`` are *shift* (replace
    ``m`` by ``m + 1``) and *expand* (add ``m + 1``); both preserve the
    heap's cost order, so sets pop in globally ascending cost.
    """
    fractions = np.asarray(fractions, dtype=np.float64)
    if fractions.ndim != 1 or fractions.size == 0:
        raise ValidationError(
            f"fractions must be a non-empty 1-D array, got shape "
            f"{fractions.shape}"
        )
    if np.any((fractions < 0.0) | (fractions >= 1.0)):
        raise ValidationError("fractions must lie in [0, 1)")
    if n_probes < 0:
        raise ValidationError(f"n_probes must be >= 0, got {n_probes}")
    if n_probes == 0:
        return []
    mu = fractions.size
    # All 2*mu single-coordinate perturbations with their scores.
    scores = np.concatenate([fractions**2, (1.0 - fractions) ** 2])
    deltas = np.concatenate(
        [np.full(mu, -1, dtype=np.int64), np.ones(mu, dtype=np.int64)]
    )
    coordinates = np.concatenate([np.arange(mu), np.arange(mu)])
    order = np.argsort(scores, kind="stable")
    sorted_scores = scores[order]
    # Sorted position of the opposite perturbation of the same
    # coordinate, for the validity rule.
    rank_of = np.empty(2 * mu, dtype=np.intp)
    rank_of[order] = np.arange(2 * mu)
    partner = rank_of[(order + mu) % (2 * mu)]

    out: list[list[Perturbation]] = []
    start = (0,)
    heap: list[tuple[float, tuple[int, ...]]] = [
        (float(sorted_scores[0]), start)
    ]
    seen = {start}
    while heap and len(out) < n_probes:
        cost, positions = heapq.heappop(heap)
        taken = set(positions)
        if not any(int(partner[pos]) in taken for pos in positions):
            out.append(
                [
                    (int(coordinates[order[pos]]), int(deltas[order[pos]]))
                    for pos in positions
                ]
            )
        m = positions[-1]
        if m + 1 < 2 * mu:
            for successor in (
                positions[:-1] + (m + 1,),
                positions + (m + 1,),
            ):
                if successor not in seen:
                    seen.add(successor)
                    heapq.heappush(
                        heap,
                        (
                            float(sorted_scores[list(successor)].sum()),
                            successor,
                        ),
                    )
    return out


def _dominated_at_most(
    t: tuple[int, ...], two_mu: int, limit: int
) -> int:
    """Count valid sets dominated by *t*, capped at *limit*.

    ``u`` is dominated by ``t`` when every ascending score vector makes
    ``u`` at most as expensive: ``len(u) <= len(t)`` and ``u_i <=
    t[i + len(t) - len(u)]``.  Validity means no sorted position appears
    together with its mirror ``2 mu - 1 - p``.  The count includes *t*
    itself when *t* is valid; the search bails out once *limit* is
    exceeded, which keeps candidate generation O(n_probes) per probe.
    """
    length = len(t)
    total = 0
    for sub in range(1, length + 1):
        bounds = t[length - sub :]
        stack = [(0, 0, frozenset())]
        while stack:
            if total > limit:
                return total
            i, lo, used = stack.pop()
            if i == len(bounds):
                total += 1
                continue
            for q in range(lo, bounds[i] + 1):
                if two_mu - 1 - q in used or q in used:
                    continue
                stack.append((i + 1, q + 1, used | {q}))
    return total


def probe_candidate_sets(two_mu: int, n_probes: int) -> list[tuple[int, ...]]:
    """All sorted-position sets that can rank among the cheapest *n_probes*.

    Returns every valid (mirror-free) strictly-increasing tuple of
    sorted positions over ``[0, two_mu)`` whose strict dominance ideal
    contains fewer than *n_probes* valid sets — the query-independent
    superset of the heap enumeration's first *n_probes* outputs over all
    possible score vectors.  Tuples are returned in lexicographic order
    (the heap's tie order), ready to be cost-scored per query.
    """
    if two_mu <= 0:
        raise ValidationError(f"two_mu must be positive, got {two_mu}")
    if n_probes < 0:
        raise ValidationError(f"n_probes must be >= 0, got {n_probes}")
    if n_probes == 0:
        return []
    out: list[tuple[int, ...]] = []
    start = (0,)
    frontier = [start]
    seen = {start}
    while frontier:
        t = frontier.pop()
        dominated = _dominated_at_most(t, two_mu, n_probes)
        valid = not any(two_mu - 1 - p in t for p in t)
        strict = dominated - (1 if valid else 0)
        if strict >= n_probes:
            # Dominance counts only grow along shift/expand: prune.
            continue
        if valid:
            out.append(t)
        m = t[-1]
        if m + 1 < two_mu:
            for successor in (t[:-1] + (m + 1,), t + (m + 1,)):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
    out.sort()
    return out


class _ProbePlan:
    """Precomputed vectorized enumeration for one ``(2 mu, n_probes)``.

    Holds the candidate sorted-position sets as one padded index matrix
    (pad column = ``2 mu``, which maps to a zero score and a zero key
    offset), so a query batch scores every candidate with one gather +
    sum and picks its ``n_probes`` cheapest with one stable argsort.
    """

    __slots__ = ("n_candidates", "n_probes", "positions", "two_mu")

    def __init__(self, two_mu: int, n_probes: int):
        candidates = probe_candidate_sets(two_mu, n_probes)
        self.two_mu = int(two_mu)
        self.n_probes = int(n_probes)
        self.n_candidates = len(candidates)
        width = max((len(t) for t in candidates), default=1)
        self.positions = np.full(
            (len(candidates), width), two_mu, dtype=np.intp
        )
        for row, t in enumerate(candidates):
            self.positions[row, : len(t)] = t


class MultiProbeQuerier:
    """Probe an existing :class:`LSHIndex` in multiple buckets per table.

    Parameters
    ----------
    index:
        The index to query (unchanged; this class adds no storage beyond
        transient probe keys).
    n_probes:
        Extra buckets probed per table, beyond the query's own bucket.

    Example
    -------
    >>> import numpy as np
    >>> from repro.lsh.index import LSHIndex
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(50, 4))
    >>> index = LSHIndex(data, r=1.0, n_projections=8, n_tables=2, seed=0)
    >>> plain = index.query_point(data[0])
    >>> probed = MultiProbeQuerier(index, n_probes=4).query_point(data[0])
    >>> set(plain.tolist()) <= set(probed.tolist())
    True
    """

    def __init__(self, index: LSHIndex, *, n_probes: int = 8):
        if n_probes < 0:
            raise ValidationError(f"n_probes must be >= 0, got {n_probes}")
        self.index = index
        self.n_probes = int(n_probes)
        self._plan: _ProbePlan | None = None

    # ------------------------------------------------------------------
    def _probe_plan(self, mu: int) -> _ProbePlan | None:
        """The (cached) vectorized enumeration, or None for the heap path."""
        if self.n_probes == 0 or self.n_probes > _VECTOR_PROBE_CAP:
            return None
        plan = self._plan
        if plan is None or plan.two_mu != 2 * mu:
            plan = _ProbePlan(2 * mu, self.n_probes)
            self._plan = plan
        return plan

    def _probe_keys_with_ids(
        self, table, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probe keys for a batch of points against one table, with owners.

        One projection pass hashes the whole batch; the perturbed keys
        of every point are derived incrementally from its base key
        (``key ± mixer_j`` per perturbed coordinate), with the
        perturbation sets picked by scoring the precomputed candidate
        family against each query's sorted coordinates (see the module
        docstring) — no per-query Python enumeration.  Returns the flat
        uint64 key array of all probes of all points plus the aligned
        point-row index of every probe (which query each key belongs
        to — what the grouped serve-time shortlist needs).
        """
        coords = table.family.project(points)
        codes = np.floor(coords)
        fractions = coords - codes
        with np.errstate(over="ignore"):
            base_keys = (codes.astype(np.int64).astype(np.uint64)
                         * table.mixer[None, :]).sum(axis=1, dtype=np.uint64)
        q, mu = fractions.shape
        plan = self._probe_plan(mu)
        if plan is None:
            return self._probe_keys_heap(table, fractions, base_keys)
        if plan.n_candidates == 0:
            return (
                base_keys.copy(),
                np.arange(q, dtype=np.int64),
            )
        # Per-query scores of all 2 mu single perturbations: columns
        # [0, mu) are delta = -1 (cost x^2), [mu, 2 mu) are delta = +1.
        scores = np.concatenate([fractions**2, (1.0 - fractions) ** 2], axis=1)
        order = np.argsort(scores, axis=1, kind="stable")
        ranked = np.take_along_axis(scores, order, axis=1)
        ranked = np.concatenate([ranked, np.zeros((q, 1))], axis=1)
        costs = ranked[:, plan.positions].sum(axis=2)
        take = min(plan.n_probes, plan.n_candidates)
        chosen = np.argsort(costs, axis=1, kind="stable")[:, :take]
        # Signed key offsets aligned with the score columns, plus the
        # zero pad slot; gathering through `order` puts them in each
        # query's sorted-position space.
        mixers = table.mixer.astype(np.uint64)
        signed = np.concatenate(
            [np.uint64(0) - mixers, mixers, np.zeros(1, dtype=np.uint64)]
        )
        pad = np.full((q, 1), 2 * mu, dtype=order.dtype)
        offsets = signed[np.concatenate([order, pad], axis=1)]
        candidate_offsets = offsets[:, plan.positions].sum(
            axis=2, dtype=np.uint64
        )
        picked = np.take_along_axis(candidate_offsets, chosen, axis=1)
        with np.errstate(over="ignore"):
            keys = base_keys[:, None] + picked
        keys = np.concatenate([base_keys[:, None], keys], axis=1)
        owners = np.repeat(
            np.arange(q, dtype=np.int64), keys.shape[1]
        )
        return keys.ravel(), owners

    def _probe_keys_heap(
        self, table, fractions: np.ndarray, base_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact per-query heap enumeration (n_probes above the cap)."""
        mixers = table.mixer.astype(np.uint64)
        keys: list[int] = []
        owners: list[int] = []
        with np.errstate(over="ignore"):
            for row in range(fractions.shape[0]):
                base = base_keys[row]
                keys.append(int(base))
                owners.append(row)
                for perturbations in perturbation_sets(
                    fractions[row], self.n_probes
                ):
                    key = base
                    for coordinate, delta in perturbations:
                        if delta > 0:
                            key = key + mixers[coordinate]
                        else:
                            key = key - mixers[coordinate]
                    keys.append(int(key))
                    owners.append(row)
        return (
            np.asarray(keys, dtype=np.uint64),
            np.asarray(owners, dtype=np.int64),
        )

    def _probe_keys_batch(self, table, points: np.ndarray) -> np.ndarray:
        """Flat probe keys of all points (see :meth:`_probe_keys_with_ids`)."""
        return self._probe_keys_with_ids(table, points)[0]

    def query_points(self, points: np.ndarray) -> np.ndarray:
        """Active items found in the probed buckets over a point batch.

        The batched counterpart of :meth:`query_point`: one hashing pass
        per table covers every point, and the per-table bucket gathers
        are deduplicated once at the end.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.ndim != 2 or points.shape[1] != self.index._data.shape[1]:
            raise ValidationError(
                f"points must be 2-D of dim {self.index._data.shape[1]}, "
                f"got shape {points.shape}"
            )
        if points.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        parts = []
        for table in self.index._tables:
            keys = np.unique(self._probe_keys_batch(table, points))
            parts.append(table.gather(keys))
        return self.index._finalize(np.concatenate(parts))

    def query_points_grouped(self, points: np.ndarray) -> list[np.ndarray]:
        """Run :meth:`query_point` for a batch of points in one fused pass.

        The multi-probe twin of
        :meth:`repro.lsh.index.LSHIndex.query_points_grouped`: every
        point's own bucket *and* its ``n_probes`` perturbed buckets are
        gathered per table, then candidates are deduplicated *per point*
        with a single ``np.unique`` over ``point_id * n + item`` keys.
        This is the retrieval behind the serve-time
        ``shortlist="multiprobe"`` mode — the extra probes recover
        borderline queries whose near neighbours fell just across a
        segment boundary and therefore miss the plain LSH shortlist.

        Parameters
        ----------
        points:
            Query block of shape ``(q, d)``.

        Returns
        -------
        list of numpy.ndarray
            ``out[i]`` is exactly ``self.query_point(points[i])``:
            sorted, deduplicated, active-only.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.ndim != 2 or points.shape[1] != self.index._data.shape[1]:
            raise ValidationError(
                f"points must be 2-D of dim {self.index._data.shape[1]}, "
                f"got shape {points.shape}"
            )
        q = points.shape[0]
        results: list[np.ndarray] = [
            np.empty(0, dtype=np.intp) for _ in range(q)
        ]
        if q == 0:
            return results
        n_buckets = int(self.index._g_lengths.size)
        if n_buckets == 0:
            return results
        pair_parts: list[np.ndarray] = []
        for t_id, table in enumerate(self.index._tables):
            if table.unique_keys.size == 0:
                continue
            keys, owners = self._probe_keys_with_ids(table, points)
            pos = np.searchsorted(table.unique_keys, keys)
            pos = np.minimum(pos, table.unique_keys.size - 1)
            valid = table.unique_keys[pos] == keys
            bucket_ids = pos[valid] + self.index._table_bucket_base[t_id]
            pair_parts.append(
                owners[valid] * n_buckets + bucket_ids.astype(np.int64)
            )
        if not pair_parts:
            return results
        # Distinct perturbations can land in the same bucket (mixer sums
        # may coincide), so (point, bucket) pairs are deduplicated here —
        # unlike the plain grouped query, where they are unique for free.
        pair_keys = np.unique(np.concatenate(pair_parts))
        return self.index._resolve_grouped_pairs(pair_keys, q)

    def query_point(self, point: np.ndarray) -> np.ndarray:
        """Active items found in the probed buckets of every table."""
        point = np.asarray(point, dtype=np.float64)
        if point.ndim != 1 or point.shape[0] != self.index._data.shape[1]:
            raise ValidationError(
                f"point must be 1-D of dim {self.index._data.shape[1]}, "
                f"got shape {point.shape}"
            )
        return self.query_points(point[None, :])

    def query_item(self, i: int) -> np.ndarray:
        """Multi-probe lookup for an indexed item (excludes *i* itself)."""
        if not 0 <= i < self.index.n:
            raise IndexError(
                f"item index {i} out of range [0, {self.index.n})"
            )
        result = self.query_point(self.index._data[i])
        return result[result != i]

    def query_items(self, indices: np.ndarray) -> np.ndarray:
        """Multi-probe union over several indexed items.

        Mirrors :meth:`LSHIndex.query_items`: the result is the
        deduplicated union of every item's probed collisions, with all
        query items excluded.
        """
        indices = check_index_array(indices, self.index.n, name="indices")
        if indices.size == 0:
            return np.empty(0, dtype=np.intp)
        out = self.query_points(self.index._data[indices])
        if out.size:
            out = out[np.isin(out, indices, invert=True)]
        return out
