"""Deterministic fault-injection harnesses for durability testing.

The chaos toolbox behind ``tests/test_serve_durability.py`` and the
CI chaos lane: seams for crashing the write path at exact, repeatable
points — a torn write-ahead-log append, a dropped fsync, ``ENOSPC``
mid-frame, a process death between two snapshot array writes — so
recovery invariants are *proven* under injected faults instead of
assumed from clean shutdowns.

Everything here is deterministic by construction (explicit operation
counters, no randomness): the same injector schedule produces the
same crash at the same byte, which is what lets the durability suite
sweep "crash at every record boundary" and pin byte-identical
recovery for each one.

See :class:`repro.testing.faults.FaultInjector`.
"""

from repro.testing.faults import (
    FaultInjector,
    InjectedFault,
    crash_snapshot_writes,
)

__all__ = ["FaultInjector", "InjectedFault", "crash_snapshot_writes"]
