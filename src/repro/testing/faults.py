"""Deterministic chaos injector for the durable-ingest write path.

One :class:`FaultInjector` plugs into two seams:

* **WAL appends** — pass the injector as
  :class:`~repro.serve.wal.WriteAheadLog`'s ``fault_hook``.  It is
  consulted before every append (and fsync) and can write a *torn
  prefix* of the frame then die (:class:`InjectedFault`), fail with
  ``ENOSPC`` after a partial write, or swallow fsyncs.
* **Snapshot/delta array writes** — wrap a publish in
  :func:`crash_snapshot_writes` to die between two
  ``_write_array`` calls, the crash-mid-save case the manifest-last
  discipline must turn into a missing-manifest artifact (never a
  stale manifest over mixed arrays).

Determinism contract: faults fire on explicit 0-based operation
counts (``kill_at_record=3`` kills the 4th append), never on clocks
or randomness, so a failing chaos case replays exactly.
"""

from __future__ import annotations

import contextlib
import errno


__all__ = ["FaultInjector", "InjectedFault", "crash_snapshot_writes"]


class InjectedFault(RuntimeError):
    """The simulated crash.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: the
    library's own ``except ValidationError`` clauses must never absorb
    an injected crash — it has to propagate like the power loss it
    stands in for.
    """


class FaultInjector:
    """A scriptable fault schedule over the durable write path.

    Parameters
    ----------
    kill_at_record:
        0-based WAL append index to die at.  The frame is written only
        up to ``torn_bytes`` (default: half) before
        :class:`InjectedFault` is raised — the torn-tail case.
    torn_bytes:
        How many bytes of the doomed frame reach the file; ``0`` dies
        before any byte (a crash exactly on the record boundary),
        ``None`` writes half the frame.
    enospc_at_record:
        0-based append index at which the disk "fills": a third of the
        frame is written, then ``OSError(ENOSPC)`` is raised.
    drop_fsync:
        Swallow every fsync (the lying-disk case).  Appends still
        reach the OS page cache, so process-crash recovery is
        unaffected; the counter records how many syncs were dropped.
    kill_at_array_write:
        0-based snapshot array-write index to die *before*, when armed
        via :func:`crash_snapshot_writes`.

    Attributes
    ----------
    appends, fsyncs_dropped, array_writes:
        Operations observed so far — the determinism ledger a test can
        assert against.
    """

    def __init__(
        self,
        *,
        kill_at_record: int | None = None,
        torn_bytes: int | None = None,
        enospc_at_record: int | None = None,
        drop_fsync: bool = False,
        kill_at_array_write: int | None = None,
    ):
        self.kill_at_record = kill_at_record
        self.torn_bytes = torn_bytes
        self.enospc_at_record = enospc_at_record
        self.drop_fsync = drop_fsync
        self.kill_at_array_write = kill_at_array_write
        self.appends = 0
        self.fsyncs_dropped = 0
        self.array_writes = 0

    # ------------------------------------------------------------------
    def __call__(self, stage: str, handle, data) -> bool:
        """The :class:`~repro.serve.wal.WriteAheadLog` fault hook.

        Returns True when the injector claimed the operation (wrote a
        torn prefix / swallowed the fsync); False lets the WAL proceed
        normally.
        """
        if stage == "append":
            index = self.appends
            self.appends += 1
            if index == self.kill_at_record:
                torn = (
                    len(data) // 2
                    if self.torn_bytes is None
                    else min(self.torn_bytes, len(data))
                )
                if torn:
                    handle.write(data[:torn])
                    handle.flush()
                raise InjectedFault(
                    f"injected crash mid-append of record {index} "
                    f"({torn}/{len(data)} frame bytes reached disk)"
                )
            if index == self.enospc_at_record:
                handle.write(data[: len(data) // 3])
                handle.flush()
                raise OSError(
                    errno.ENOSPC, f"injected ENOSPC at record {index}"
                )
            return False
        if stage == "fsync":
            if self.drop_fsync:
                self.fsyncs_dropped += 1
                return True
            return False
        raise InjectedFault(f"unknown fault stage {stage!r}")


@contextlib.contextmanager
def crash_snapshot_writes(injector: FaultInjector):
    """Arm *injector* over snapshot/delta array writes.

    While active, every ``repro.serve.snapshot._write_array`` call
    (snapshot saves, delta saves, shard plan writes — they all share
    it) bumps ``injector.array_writes`` and dies with
    :class:`InjectedFault` when the count reaches
    ``kill_at_array_write`` — *before* the doomed array is written,
    leaving the directory exactly as a crash between two array
    renames would.  The patch is removed on exit no matter how the
    block ends.
    """
    from repro.serve import snapshot as snapshot_module

    original = snapshot_module._write_array

    def _instrumented(array_dir, name, array):
        index = injector.array_writes
        injector.array_writes += 1
        if index == injector.kill_at_array_write:
            raise InjectedFault(
                f"injected crash before array write {index} ({name!r})"
            )
        return original(array_dir, name, array)

    snapshot_module._write_array = _instrumented
    try:
        yield injector
    finally:
        snapshot_module._write_array = original
