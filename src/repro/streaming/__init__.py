"""Streaming extension — the paper's §6 future work, implemented.

"As future work, we will further extend ALID towards the online version
to efficiently process streaming data sources."  :class:`StreamingALID`
is that online version: batches of arriving items are absorbed into the
existing dominant clusters when they are infective against them, and
genuinely new dominant clusters are grown from the arrivals by the
ordinary Alg. 2 machinery — all against an incrementally updated LSH
index, never touching a global affinity matrix.
"""

from repro.streaming.online import StreamingALID

__all__ = ["StreamingALID"]
