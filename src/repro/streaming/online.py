"""StreamingALID: online dominant-cluster detection over arriving batches.

Design (an incremental reading of paper Alg. 2):

* The LSH index, kernel scale and configuration are fixed from the
  first batch; later batches are hashed into the same tables
  (:meth:`repro.lsh.index.LSHIndex.insert`).
* **Absorb** — for every existing dominant cluster, arriving items that
  are infective against it (``pi(s_j - x, x) > tol``, the Theorem 1
  criterion) trigger a LID re-convergence of that cluster over its old
  support plus the joiners.  Members that lose their weight in the
  re-converged strategy return to the unassigned pool.
* **Discover** — Alg. 2 detections seeded from the *new* items' LSH
  buckets grow any genuinely new dominant clusters among the unassigned
  pool; sub-threshold detections stay unassigned (noise may become a
  cluster once enough similar items have arrived).
* **Retire** — expired items (old news, deleted posts) are tombstoned:
  they vanish from every future query and every cluster containing one
  re-converges over its survivors; clusters that fall below the
  dominance threshold dissolve back into the pool.
  :meth:`StreamingALID.rediscover` re-runs discovery over the whole
  pool, for streams where retirement may have *freed* items to regroup.

Work and memory follow the ALID accounting: only local blocks are ever
computed, through the shared instrumented oracle.  Tombstoned rows stay
in the data matrix (index-stable), so memory is reclaimed only by
rebuilding a fresh stream — the trade the paper's MongoDB-backed tables
make as well.
"""

from __future__ import annotations

import numpy as np

from repro.affinity.kernel import LaplacianKernel, suggest_scaling_factor
from repro.affinity.oracle import AffinityCounters, AffinityOracle
from repro.core.alid import ALIDEngine, SeedSchedule
from repro.core.config import ALIDConfig
from repro.core.infectivity import infective_mask, item_payoffs
from repro.core.results import Cluster, DetectionResult
from repro.exceptions import ValidationError
from repro.lsh.index import LSHIndex
from repro.utils.timing import timed
from repro.utils.validation import check_data_matrix

__all__ = ["StreamingALID"]


class StreamingALID:
    """Online ALID over a stream of item batches.

    Parameters
    ----------
    config:
        The usual ALID configuration.  The kernel scale and LSH segment
        length are calibrated on the **first** batch and frozen, so the
        affinity semantics stay consistent across the stream.

    Example
    -------
    >>> from repro import ALIDConfig, make_synthetic_mixture
    >>> from repro.streaming import StreamingALID
    >>> ds = make_synthetic_mixture(n=400, regime="bounded", bound=200,
    ...                             n_clusters=5, dim=20, seed=0)
    >>> stream = StreamingALID(ALIDConfig(delta=100, seed=0))
    >>> _ = stream.partial_fit(ds.data[:200])
    >>> snapshot = stream.partial_fit(ds.data[200:])
    >>> snapshot.n_items
    400
    """

    def __init__(self, config: ALIDConfig | None = None):
        self.config = config or ALIDConfig()
        self._data: np.ndarray | None = None
        self._kernel: LaplacianKernel | None = None
        self._index: LSHIndex | None = None
        self._counters = AffinityCounters()
        self._clusters: list[Cluster] = []
        self._assigned: np.ndarray = np.zeros(0, dtype=bool)
        self._retired: np.ndarray = np.zeros(0, dtype=bool)
        self._next_label = 0
        self._batches = 0

    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        """Items seen so far (including retired tombstones)."""
        return 0 if self._data is None else self._data.shape[0]

    @property
    def n_retired(self) -> int:
        """Items retired from the stream."""
        return int(self._retired.sum())

    @property
    def n_clusters(self) -> int:
        """Current number of dominant clusters."""
        return len(self._clusters)

    @property
    def clusters(self) -> list[Cluster]:
        """The current dominant clusters (a copy of the list)."""
        return list(self._clusters)

    @property
    def data(self) -> np.ndarray:
        """Read-only view of the stream's data matrix (tombstones included)."""
        if self._data is None:
            return np.zeros((0, 0))
        view = self._data.view()
        view.flags.writeable = False
        return view

    @property
    def assigned_mask(self) -> np.ndarray:
        """Read-only mask of items currently in some dominant cluster."""
        view = self._assigned.view()
        view.flags.writeable = False
        return view

    @property
    def retired_mask(self) -> np.ndarray:
        """Read-only mask of items retired (tombstoned) from the stream."""
        view = self._retired.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    def partial_fit(
        self, batch: np.ndarray, *, discover: bool = True
    ) -> DetectionResult:
        """Ingest one batch and return the updated detection snapshot.

        Parameters
        ----------
        batch:
            Arriving items, shape ``(m, d)``.
        discover:
            When False, only the absorb step runs: arriving items join
            existing infective clusters, but no new clusters are grown.
            Items left unassigned stay in the pool for a later
            :meth:`discover` call — the deferred-discovery mode the
            ingest tier uses to re-peel dirty regions in the background
            instead of on the ingest path.
        """
        batch = check_data_matrix(batch, name="batch")
        with timed() as clock:
            if self._data is None:
                self._bootstrap(batch)
                new_indices = np.arange(batch.shape[0], dtype=np.intp)
            else:
                if batch.shape[1] != self._data.shape[1]:
                    raise ValidationError(
                        f"batch has dim {batch.shape[1]}, stream expects "
                        f"{self._data.shape[1]}"
                    )
                new_indices = self._index.insert(batch)
                self._data = np.vstack([self._data, batch])
                self._assigned = np.concatenate(
                    [self._assigned, np.zeros(batch.shape[0], dtype=bool)]
                )
                self._retired = np.concatenate(
                    [self._retired, np.zeros(batch.shape[0], dtype=bool)]
                )
            self._batches += 1
            oracle = self._make_oracle()
            self._absorb(oracle, new_indices)
            if discover:
                self._discover(oracle, new_indices)
            else:
                self._sync_index_mask()
        return self._snapshot(clock[0])

    def discover(self, indices: np.ndarray) -> DetectionResult:
        """Run discovery seeded from the given unassigned items.

        The targeted form of :meth:`rediscover`: only Alg. 2 runs seeded
        at *indices* (assigned or retired entries are skipped) are
        attempted, which is how the ingest tier re-peels one dirty
        collision region without sweeping the whole pool.
        """
        if self._data is None:
            raise ValidationError("stream has not seen any data yet")
        from repro.utils.validation import check_index_array

        indices = check_index_array(indices, self.n_items, name="indices")
        with timed() as clock:
            pool = indices[
                ~self._assigned[indices] & ~self._retired[indices]
            ]
            if pool.size:
                oracle = self._make_oracle()
                self._discover(oracle, pool)
        return self._snapshot(clock[0])

    def collision_components(self) -> np.ndarray:
        """Component labels of the unassigned pool's collision graph.

        Delegates to
        :meth:`repro.lsh.index.LSHIndex.collision_components` with the
        stream's visibility mask in force (assigned and retired items
        read -1).  Two pool items share a component exactly when a
        discovery run seeded at one could reach the other, so a failed
        absorption dirties precisely its component — the re-peel unit of
        the ingest tier.
        """
        if self._data is None:
            raise ValidationError("stream has not seen any data yet")
        self._sync_index_mask()
        return self._index.collision_components()

    def export_appended_keys(self, start: int) -> np.ndarray:
        """Per-table LSH bucket keys of items ``start..n_items`` ``(l, m)``.

        The insert state a :class:`~repro.serve.snapshot.SnapshotDelta`
        persists: the keys the parent index would assign the appended
        rows, without re-hashing at apply time.
        """
        if self._data is None:
            raise ValidationError("stream has not seen any data yet")
        return self._index.export_keys(start)

    def to_snapshot(self, *, meta: dict | None = None):
        """Capture the full current state as a serve-time snapshot.

        The streaming twin of
        :meth:`repro.serve.snapshot.DetectionSnapshot.from_result`: data
        matrix, LSH insert state, calibrated kernel and the current
        dominant clusters, ready to save or serve.  This is the *base*
        artifact a delta chain anchors to.
        """
        from repro.serve.snapshot import DetectionSnapshot

        if self._data is None:
            raise ValidationError("stream has not seen any data yet")
        oracle = self._make_oracle()
        engine = self._make_engine(oracle)
        base_meta = {
            "method": "StreamingALID",
            "batches": self._batches,
            "retired": self.n_retired,
        }
        base_meta.update(meta or {})
        return DetectionSnapshot.from_engine(
            engine, list(self._clusters), meta=base_meta
        )

    def result(self) -> DetectionResult:
        """Current detection snapshot without ingesting anything."""
        return self._snapshot(0.0)

    def retire(self, indices: np.ndarray) -> DetectionResult:
        """Remove items from the stream (expiry / deletion).

        Retired items disappear from every future LSH query and from
        every cluster: a cluster losing members re-converges by LID
        over its survivors; if it falls below the dominance threshold
        (or the minimum size) it dissolves and its surviving members
        return to the unassigned pool.  Retiring is idempotent.
        """
        if self._data is None:
            raise ValidationError("stream has not seen any data yet")
        from repro.utils.validation import check_index_array

        indices = check_index_array(indices, self.n_items, name="indices")
        with timed() as clock:
            self._retired[indices] = True
            self._assigned[indices] = False
            self._sync_index_mask()
            oracle = self._make_oracle()
            engine = self._make_engine(oracle)
            survivors: list[Cluster] = []
            for cluster in self._clusters:
                hit = self._retired[cluster.members]
                if not hit.any():
                    survivors.append(cluster)
                    continue
                refreshed = self._shrink_cluster(engine, cluster)
                if refreshed is not None:
                    survivors.append(refreshed)
            self._clusters = survivors
            self._sync_index_mask()
        return self._snapshot(clock[0])

    def rediscover(self) -> DetectionResult:
        """Run discovery over the whole unassigned pool.

        Useful after retirements: items that previously lost out to a
        now-dissolved cluster (or noise that has meanwhile accumulated
        peers) may form dominant clusters of their own.
        """
        if self._data is None:
            raise ValidationError("stream has not seen any data yet")
        with timed() as clock:
            pool = np.flatnonzero(~self._assigned & ~self._retired)
            if pool.size:
                oracle = self._make_oracle()
                self._discover(oracle, pool)
        return self._snapshot(clock[0])

    def _shrink_cluster(
        self, engine: ALIDEngine, cluster: Cluster
    ) -> Cluster | None:
        """Re-converge a cluster after member retirement.

        Returns the refreshed cluster, or None when the survivors no
        longer form a dominant cluster (they return to the pool).
        """
        from repro.dynamics.lid import LIDState, lid_dynamics

        cfg = self.config
        keep = ~self._retired[cluster.members]
        members = cluster.members[keep]
        if members.size < max(cfg.min_cluster_size, 2):
            self._assigned[members] = False
            return None
        weights = cluster.weights[keep]
        total = float(weights.sum())
        weights = (
            weights / total
            if total > 0
            else np.full(members.size, 1.0 / members.size)
        )
        oracle = engine.oracle
        g = oracle.block(members, members) @ weights
        state = LIDState(oracle, members.copy(), weights.copy(), g)
        lid_dynamics(
            state,
            max_iter=cfg.max_lid_iterations,
            tol=cfg.tol,
            kernel=cfg.lid_kernel,
        )
        state.restrict_to_support()
        new_members = state.support_global(cfg.support_tol)
        positions = state.support_positions(cfg.support_tol)
        new_weights = state.x[positions].copy()
        density = state.density()
        state.release()
        dropped = np.setdiff1d(members, new_members)
        self._assigned[dropped] = False
        if (
            density < cfg.density_threshold
            or new_members.size < cfg.min_cluster_size
        ):
            self._assigned[new_members] = False
            return None
        self._assigned[new_members] = True
        return Cluster(
            members=new_members,
            weights=new_weights,
            density=density,
            label=cluster.label,
            seed=cluster.seed,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bootstrap(self, batch: np.ndarray) -> None:
        cfg = self.config
        k = cfg.kernel_k
        if k is None:
            k = suggest_scaling_factor(
                batch,
                p=cfg.kernel_p,
                target_affinity=cfg.kernel_target_affinity,
                seed=cfg.seed,
            )
        self._kernel = LaplacianKernel(k=k, p=cfg.kernel_p)
        lsh_r = cfg.lsh_r
        if lsh_r is None:
            lsh_r = cfg.lsh_r_scale * self._kernel.distance_from_affinity(
                cfg.kernel_target_affinity
            )
        self._index = LSHIndex(
            batch,
            r=float(lsh_r),
            n_projections=cfg.lsh_projections,
            n_tables=cfg.lsh_tables,
            seed=cfg.seed,
        )
        self._data = batch.copy()
        self._assigned = np.zeros(batch.shape[0], dtype=bool)
        self._retired = np.zeros(batch.shape[0], dtype=bool)

    def _make_oracle(self) -> AffinityOracle:
        return AffinityOracle(
            self._data, self._kernel, counters=self._counters
        )

    def _make_engine(self, oracle: AffinityOracle) -> ALIDEngine:
        """Assemble an engine around the streaming state (no rebuilds)."""
        engine = ALIDEngine.__new__(ALIDEngine)
        engine.config = self.config
        engine.kernel = self._kernel
        engine.oracle = oracle
        engine.lsh_r = self._index.r
        engine.index = self._index
        return engine

    def _absorb(self, oracle: AffinityOracle, new_indices: np.ndarray) -> None:
        """Let arriving infective items join existing clusters via LID."""
        if not self._clusters or new_indices.size == 0:
            return
        cfg = self.config
        engine = self._make_engine(oracle)
        updated: list[Cluster] = []
        for cluster in self._clusters:
            fresh = new_indices[~self._assigned[new_indices]]
            if fresh.size == 0:
                updated.append(cluster)
                continue
            pay = item_payoffs(
                oracle,
                fresh,
                cluster.members,
                cluster.weights,
                cluster.density,
            )
            joiners = fresh[infective_mask(pay, cfg.tol)]
            if joiners.size == 0:
                updated.append(cluster)
                continue
            refreshed = self._reconverge(engine, cluster, joiners)
            updated.append(refreshed)
        self._clusters = updated

    def _reconverge(
        self, engine: ALIDEngine, cluster: Cluster, joiners: np.ndarray
    ) -> Cluster:
        """Re-run Alg. 2 over the cluster's support plus the joiners."""
        from repro.dynamics.lid import LIDState, lid_dynamics

        cfg = self.config
        oracle = engine.oracle
        beta = np.concatenate([cluster.members, joiners])
        x = np.concatenate([cluster.weights, np.zeros(joiners.size)])
        g = oracle.block(beta, cluster.members) @ cluster.weights
        state = LIDState(oracle, beta, x, g)
        lid_dynamics(
            state,
            max_iter=cfg.max_lid_iterations,
            tol=cfg.tol,
            kernel=cfg.lid_kernel,
        )
        state.restrict_to_support()
        members = state.support_global(cfg.support_tol)
        positions = state.support_positions(cfg.support_tol)
        weights = state.x[positions].copy()
        density = state.density()
        state.release()
        # Bookkeeping: dropped members go back to the pool; joiners that
        # made it into the support leave it.
        dropped = np.setdiff1d(cluster.members, members)
        self._assigned[dropped] = False
        self._index.reactivate_all()  # mask refreshed below
        self._assigned[members] = True
        self._sync_index_mask()
        return Cluster(
            members=members,
            weights=weights,
            density=density,
            label=cluster.label,
            seed=cluster.seed,
        )

    def _sync_index_mask(self) -> None:
        """Index visibility = unassigned, unretired items only."""
        self._index.reactivate_all()
        taken = np.flatnonzero(self._assigned | self._retired)
        if taken.size:
            self._index.deactivate(taken)

    def _discover(self, oracle: AffinityOracle, new_indices: np.ndarray) -> None:
        """Grow new dominant clusters seeded from the arriving items."""
        cfg = self.config
        self._sync_index_mask()
        engine = self._make_engine(oracle)
        schedule = SeedSchedule(self._index)
        new_set = set(int(i) for i in new_indices)
        attempts = 0
        cap = max(1, new_indices.size)
        while attempts < cap:
            seed = schedule.next_active()
            if seed is None:
                break
            if seed not in new_set:
                # Old unassigned noise: it failed to form a cluster
                # before and nothing about it changed — skip cheaply by
                # deactivating it for this discovery round only.
                self._index.deactivate(np.asarray([seed]))
                continue
            attempts += 1
            detection = engine.detect_from_seed(seed)
            members = detection.members
            if (
                detection.density >= cfg.density_threshold
                and members.size >= cfg.min_cluster_size
            ):
                self._clusters.append(
                    Cluster(
                        members=members,
                        weights=detection.weights,
                        density=detection.density,
                        label=self._next_label,
                        seed=seed,
                    )
                )
                self._next_label += 1
                self._assigned[members] = True
                self._sync_index_mask()
            else:
                # Not (yet) dominant: hide the seed for this round so
                # the schedule advances; it stays unassigned.
                self._index.deactivate(np.asarray([seed]))
        self._sync_index_mask()

    def _snapshot(self, runtime: float) -> DetectionResult:
        return DetectionResult(
            clusters=list(self._clusters),
            all_clusters=list(self._clusters),
            n_items=self.n_items,
            runtime_seconds=runtime,
            counters=self._counters.snapshot(),
            method="StreamingALID",
            metadata={
                "batches": self._batches,
                "retired": self.n_retired,
                "kernel_k": None if self._kernel is None else self._kernel.k,
            },
        )
