"""The paper's synthetic workloads (§5.2).

"The synthetic data sets are made up by sampling n 100-dimensional data
items from 20 different multivariate gaussian distributions as dominant
clusters and one uniform distribution as the background noise. [...] we
make some gaussian distributions partially overlapped by setting their
mean vectors close to each other and variate the shapes of all gaussian
distributions by different diagonal covariance matrices with elements
ranged in [0, 10]."

Three regimes control the largest-cluster size ``a*`` (paper Table 1):

* ``"omega_n"`` — ``a* = omega * n / 20`` (clean source, default omega=1:
  every item belongs to a cluster);
* ``"n_eta"``   — ``a* = n**eta / 20`` (noisy source, default eta=0.9);
* ``"bounded"`` — ``a* = P / 20`` (size-limited clusters, default P=1000).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import ValidationError
from repro.utils.rng import as_generator

__all__ = ["make_synthetic_mixture", "cluster_size_for_regime"]

_REGIMES = ("omega_n", "n_eta", "bounded")


def cluster_size_for_regime(
    n: int,
    regime: str,
    *,
    n_clusters: int = 20,
    omega: float = 1.0,
    eta: float = 0.9,
    bound: int = 1000,
) -> int:
    """Per-cluster size ``a*`` for the paper's three Table-1 regimes."""
    if regime not in _REGIMES:
        raise ValidationError(
            f"regime must be one of {_REGIMES}, got {regime!r}"
        )
    if regime == "omega_n":
        size = omega * n / n_clusters
    elif regime == "n_eta":
        size = (n**eta) / n_clusters
    else:
        size = bound / n_clusters
    size = int(round(size))
    max_size = n // n_clusters
    return max(1, min(size, max_size))


def make_synthetic_mixture(
    n: int,
    regime: str = "omega_n",
    *,
    n_clusters: int = 20,
    dim: int = 100,
    omega: float = 1.0,
    eta: float = 0.9,
    bound: int = 1000,
    overlap_pairs: int = 3,
    box_half_width: float = 100.0,
    var_low: float = 0.5,
    var_high: float = 10.0,
    seed=0,
) -> Dataset:
    """Generate one of the paper's three synthetic workloads.

    Parameters
    ----------
    n:
        Total number of items (clusters + noise).
    regime:
        ``"omega_n"``, ``"n_eta"`` or ``"bounded"`` (paper Table 1).
    n_clusters:
        Number of Gaussian dominant clusters (paper: 20).
    dim:
        Feature dimensionality (paper: 100).
    omega / eta / bound:
        Regime parameters (paper: omega=1.0, eta=0.9, P=1000).
    overlap_pairs:
        Number of cluster pairs whose means are moved close together to
        "partially overlap", as the paper describes.
    box_half_width:
        Noise items are uniform on ``[-w, w]^dim``; cluster means are
        drawn from the inner half of that box so noise surrounds them.
    var_low / var_high:
        Range of the diagonal covariance entries (paper: [0, 10]; we use
        a positive lower bound so no dimension degenerates).
    seed:
        RNG seed.

    Returns
    -------
    Dataset
        Items in cluster-major order followed by noise, with ground-truth
        labels (noise = -1).
    """
    if n < n_clusters:
        raise ValidationError(
            f"need n >= n_clusters, got n={n}, n_clusters={n_clusters}"
        )
    rng = as_generator(seed)
    per_cluster = cluster_size_for_regime(
        n,
        regime,
        n_clusters=n_clusters,
        omega=omega,
        eta=eta,
        bound=bound,
    )
    n_truth = per_cluster * n_clusters
    n_noise = n - n_truth

    # Cluster means inside the inner half of the noise box; a minimum
    # separation keeps non-overlapping clusters distinct.
    means = rng.uniform(
        -box_half_width / 2.0, box_half_width / 2.0, size=(n_clusters, dim)
    )
    # Partially overlap some pairs by pulling mean 2j+1 near mean 2j.
    for pair in range(min(overlap_pairs, n_clusters // 2)):
        a, b = 2 * pair, 2 * pair + 1
        direction = rng.normal(size=dim)
        direction /= np.linalg.norm(direction)
        means[b] = means[a] + direction * rng.uniform(2.0, 5.0)

    variances = rng.uniform(var_low, var_high, size=(n_clusters, dim))

    blocks = []
    labels = []
    for cluster_id in range(n_clusters):
        block = rng.normal(
            loc=means[cluster_id],
            scale=np.sqrt(variances[cluster_id]),
            size=(per_cluster, dim),
        )
        blocks.append(block)
        labels.append(np.full(per_cluster, cluster_id, dtype=np.int64))
    if n_noise > 0:
        noise = rng.uniform(
            -box_half_width, box_half_width, size=(n_noise, dim)
        )
        blocks.append(noise)
        labels.append(np.full(n_noise, -1, dtype=np.int64))

    data = np.vstack(blocks)
    label_arr = np.concatenate(labels)
    return Dataset(
        data=data,
        labels=label_arr,
        name=f"synthetic[{regime}]",
        metadata={
            "regime": regime,
            "n": n,
            "n_clusters": n_clusters,
            "per_cluster": per_cluster,
            "dim": dim,
            "omega": omega,
            "eta": eta,
            "bound": bound,
            "seed": seed,
        },
    )
