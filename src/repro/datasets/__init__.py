"""Dataset substrate: synthetic generators matching the paper's workloads.

The real NART / NDI / SIFT-50M collections are crawled or extracted data
we cannot access; each generator here reproduces the *geometry* those
datasets expose to a distance-based method (see DESIGN.md §2 for the
substitution argument).  The three synthetic regimes of §5.2 are generated
exactly as described in the paper.
"""

from repro.datasets.base import Dataset
from repro.datasets.nart import make_nart
from repro.datasets.ndi import make_ndi, make_sub_ndi
from repro.datasets.sift import make_sift
from repro.datasets.synthetic import make_synthetic_mixture

__all__ = [
    "Dataset",
    "make_nart",
    "make_ndi",
    "make_sub_ndi",
    "make_sift",
    "make_synthetic_mixture",
]
