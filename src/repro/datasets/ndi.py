"""NDI stand-in: near-duplicate-image GIST vectors (paper §5's NDI set).

The real NDI corpus has 109,815 images as 256-dimensional GIST features:
57 near-duplicate groups (11,951 images) are dominant clusters; 97,864
diverse images are background noise.  Sub-NDI (used for Fig. 6 and
Fig. 11 because AP cannot handle full NDI) has 6 clusters with 1,420
ground-truth and 8,520 noise images.

GIST features are dense real vectors in [0, 1]; near-duplicates differ by
small crops/compressions — tiny anisotropic perturbations of a shared
feature vector — while diverse images scatter broadly.  The generator
reproduces exactly that: tight anisotropic Gaussian clusters in the unit
hypercube plus broad background samples, clipped to [0, 1].
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import ValidationError
from repro.utils.rng import as_generator

__all__ = ["make_ndi", "make_sub_ndi"]

_PAPER_DIM = 256
_NDI_CLUSTERS = 57
_NDI_TRUTH = 11951
_NDI_NOISE = 97864
_SUB_NDI_CLUSTERS = 6
_SUB_NDI_TRUTH = 1420
_SUB_NDI_NOISE = 8520


def _generate(
    n_clusters: int,
    n_truth: int,
    n_noise: int,
    dim: int,
    cluster_spread: float,
    seed,
    name: str,
) -> Dataset:
    rng = as_generator(seed)
    raw = rng.dirichlet(np.full(n_clusters, 8.0))
    sizes = np.maximum(1, np.round(raw * n_truth).astype(int))
    while sizes.sum() > n_truth:
        sizes[int(np.argmax(sizes))] -= 1
    while sizes.sum() < n_truth:
        sizes[int(np.argmin(sizes))] += 1

    blocks = []
    labels = []
    for cluster_id, size in enumerate(sizes):
        center = rng.uniform(0.15, 0.85, size=dim)
        # Anisotropic: some GIST bands vary more under crops than others.
        scales = cluster_spread * rng.uniform(0.3, 1.0, size=dim)
        block = center + rng.normal(size=(size, dim)) * scales
        np.clip(block, 0.0, 1.0, out=block)
        blocks.append(block)
        labels.append(np.full(size, cluster_id, dtype=np.int64))

    if n_noise > 0:
        # Diverse images: broad low-rank structure + independent noise so
        # the background is scattered but not perfectly uniform.
        rank = min(dim, 24)
        basis = rng.normal(size=(rank, dim)) * 0.25
        coeffs = rng.normal(size=(n_noise, rank))
        noise = 0.5 + coeffs @ basis / np.sqrt(rank)
        noise += rng.normal(scale=0.15, size=(n_noise, dim))
        np.clip(noise, 0.0, 1.0, out=noise)
        blocks.append(noise)
        labels.append(np.full(n_noise, -1, dtype=np.int64))

    return Dataset(
        data=np.vstack(blocks),
        labels=np.concatenate(labels),
        name=name,
        metadata={
            "n_clusters": n_clusters,
            "n_truth": int(n_truth),
            "n_noise": int(n_noise),
            "dim": dim,
            "seed": seed,
        },
    )


def make_ndi(
    *,
    scale: float = 1.0,
    dim: int = _PAPER_DIM,
    cluster_spread: float = 0.02,
    noise_degree: float | None = None,
    seed=0,
) -> Dataset:
    """Generate the NDI-like corpus (defaults reproduce paper proportions).

    ``scale=1.0`` yields ~110k items like the real crawl; experiments use
    smaller scales.  ``noise_degree`` overrides the noise count for the
    Fig. 11 sweep.
    """
    if scale <= 0:
        raise ValidationError(f"scale must be positive, got {scale}")
    n_clusters = max(2, int(round(_NDI_CLUSTERS * min(1.0, scale * 4))))
    n_truth = max(n_clusters, int(round(_NDI_TRUTH * scale)))
    if noise_degree is None:
        n_noise = int(round(_NDI_NOISE * scale))
    else:
        n_noise = int(round(noise_degree * n_truth))
    return _generate(
        n_clusters, n_truth, n_noise, dim, cluster_spread, seed, "ndi"
    )


def make_sub_ndi(
    *,
    scale: float = 1.0,
    dim: int = _PAPER_DIM,
    cluster_spread: float = 0.02,
    noise_degree: float | None = None,
    seed=0,
) -> Dataset:
    """Generate the Sub-NDI-like corpus (6 clusters, 1,420 GT + 8,520 noise).

    The subset the paper uses for Fig. 6 and Fig. 11 because AP cannot
    process full NDI in 12 GB.
    """
    if scale <= 0:
        raise ValidationError(f"scale must be positive, got {scale}")
    n_truth = max(_SUB_NDI_CLUSTERS, int(round(_SUB_NDI_TRUTH * scale)))
    if noise_degree is None:
        n_noise = int(round(_SUB_NDI_NOISE * scale))
    else:
        n_noise = int(round(noise_degree * n_truth))
    return _generate(
        _SUB_NDI_CLUSTERS, n_truth, n_noise, dim, cluster_spread, seed,
        "sub_ndi",
    )
