"""The labelled dataset container shared by every generator and experiment."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["Dataset"]

NOISE_LABEL = -1


@dataclass
class Dataset:
    """A data matrix with dominant-cluster ground truth.

    Attributes
    ----------
    data:
        Data matrix of shape ``(n, d)``.
    labels:
        Ground-truth labels of shape ``(n,)``: cluster ids ``>= 0`` for
        items belonging to a dominant cluster, ``-1`` for background
        noise (the paper's unlabeled majority).
    name:
        Human-readable dataset name.
    metadata:
        Generator parameters (for experiment records).
    """

    data: np.ndarray
    labels: np.ndarray
    name: str = "dataset"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.data.ndim != 2:
            raise ValidationError(f"data must be 2-D, got ndim={self.data.ndim}")
        if self.labels.shape != (self.data.shape[0],):
            raise ValidationError(
                f"labels must have shape ({self.data.shape[0]},), "
                f"got {self.labels.shape}"
            )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of items."""
        return self.data.shape[0]

    @property
    def dim(self) -> int:
        """Feature dimensionality."""
        return self.data.shape[1]

    @property
    def n_noise(self) -> int:
        """Number of background-noise items."""
        return int((self.labels == NOISE_LABEL).sum())

    @property
    def n_ground_truth(self) -> int:
        """Number of items belonging to some dominant cluster."""
        return self.n - self.n_noise

    @property
    def n_true_clusters(self) -> int:
        """Number of ground-truth dominant clusters."""
        positive = self.labels[self.labels >= 0]
        if positive.size == 0:
            return 0
        return int(len(np.unique(positive)))

    def noise_degree(self) -> float:
        """``#noise / #ground-truth`` (paper Eq. 35)."""
        gt = self.n_ground_truth
        if gt == 0:
            return float("inf") if self.n_noise > 0 else 0.0
        return self.n_noise / gt

    def truth_clusters(self) -> list[np.ndarray]:
        """Index arrays of the ground-truth dominant clusters."""
        out = []
        for cluster_id in np.unique(self.labels[self.labels >= 0]):
            out.append(np.flatnonzero(self.labels == cluster_id).astype(np.intp))
        return out

    def largest_cluster_size(self) -> int:
        """The paper's ``a*`` — size of the largest dominant cluster."""
        clusters = self.truth_clusters()
        if not clusters:
            return 0
        return max(c.size for c in clusters)

    def subsample(self, n: int, seed=0) -> "Dataset":
        """Uniform subsample of *n* items (used by the NDI/SIFT sweeps)."""
        if n > self.n:
            raise ValidationError(
                f"cannot subsample {n} items from {self.n}"
            )
        rng = np.random.default_rng(seed)
        idx = rng.choice(self.n, size=n, replace=False)
        idx.sort()
        return Dataset(
            data=self.data[idx],
            labels=self.labels[idx],
            name=f"{self.name}[sub{n}]",
            metadata=dict(self.metadata, parent=self.name, subsample=n),
        )

    def shuffled(self, seed=0) -> "Dataset":
        """Random permutation of the items (defensive test utility)."""
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.n)
        return Dataset(
            data=self.data[perm],
            labels=self.labels[perm],
            name=self.name,
            metadata=dict(self.metadata),
        )
