"""SIFT stand-in: visual-word descriptor clusters (paper §5.3's SIFT-50M).

SIFT descriptors are L2-normalised 128-dimensional vectors.  Descriptors
extracted from near-duplicate image regions ("KFC grandpa" in paper
Fig. 8/10) are highly similar and form dominant clusters — the *visual
words* — while descriptors from random background regions scatter across
the descriptor space.

The generator places visual-word clusters as tight caps on the unit
sphere (center + Gaussian jitter, re-normalised) and background noise as
uniform directions on the sphere, reproducing the high-noise-regime
geometry PALID is evaluated on.  The paper's 50 million points are a
disk/time gate, not an algorithmic one; the default scales keep the same
cluster/noise ratio at laptop-feasible sizes, and the scalability bench
sweeps subset sizes exactly like paper Fig. 9.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import ValidationError
from repro.utils.rng import as_generator

__all__ = ["make_sift"]

_PAPER_DIM = 128


def make_sift(
    n: int,
    *,
    n_clusters: int = 50,
    truth_fraction: float = 0.3,
    dim: int = _PAPER_DIM,
    cluster_spread: float = 0.15,
    seed=0,
) -> Dataset:
    """Generate *n* SIFT-like descriptors.

    Parameters
    ----------
    n:
        Total number of descriptors.
    n_clusters:
        Number of visual words (dominant clusters).
    truth_fraction:
        Fraction of descriptors belonging to visual words; the rest are
        background-noise descriptors (uniform directions).
    dim:
        Descriptor dimensionality (SIFT: 128).
    cluster_spread:
        Typical *total* perturbation norm of a member around its word
        centre before re-normalising (the per-dimension jitter is
        ``cluster_spread / sqrt(dim)``); 0.15 gives the tight angular
        spreads of matching SIFT descriptors.
    seed:
        RNG seed.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if not 0.0 < truth_fraction <= 1.0:
        raise ValidationError(
            f"truth_fraction must be in (0, 1], got {truth_fraction}"
        )
    rng = as_generator(seed)
    n_truth = int(round(n * truth_fraction))
    n_clusters = max(1, min(n_clusters, n_truth))
    n_noise = n - n_truth

    raw = rng.dirichlet(np.full(n_clusters, 10.0))
    sizes = np.maximum(1, np.round(raw * n_truth).astype(int))
    while sizes.sum() > n_truth:
        sizes[int(np.argmax(sizes))] -= 1
    while sizes.sum() < n_truth:
        sizes[int(np.argmin(sizes))] += 1

    blocks = []
    labels = []
    for word_id, size in enumerate(sizes):
        center = rng.normal(size=dim)
        center /= np.linalg.norm(center)
        block = center + rng.normal(
            scale=cluster_spread / np.sqrt(dim), size=(size, dim)
        )
        block /= np.linalg.norm(block, axis=1, keepdims=True)
        blocks.append(block)
        labels.append(np.full(size, word_id, dtype=np.int64))
    if n_noise > 0:
        noise = rng.normal(size=(n_noise, dim))
        noise /= np.linalg.norm(noise, axis=1, keepdims=True)
        blocks.append(noise)
        labels.append(np.full(n_noise, -1, dtype=np.int64))

    return Dataset(
        data=np.vstack(blocks),
        labels=np.concatenate(labels),
        name="sift",
        metadata={
            "n": n,
            "n_clusters": int(n_clusters),
            "truth_fraction": truth_fraction,
            "dim": dim,
            "cluster_spread": cluster_spread,
            "seed": seed,
        },
    )
