"""NART stand-in: news-article topic vectors (paper §5's NART data set).

The real NART corpus is a crawl of 5,301 Chinese news articles represented
as normalized 350-dimensional LDA topic vectors: 13 hot events form
dominant clusters of 734 articles in total, the remaining 4,567 articles
are daily-news background noise.

This generator reproduces that geometry with a Dirichlet topic model:

* each hot event has a sparse topic profile (Dirichlet with small
  concentration), and its articles are drawn from a tight Dirichlet
  around that profile — highly similar vectors, i.e. a dense subgraph;
* background articles are drawn from diffuse Dirichlets around *many*
  distinct random profiles, so no noise region is dense.

Vectors are L1-normalised by construction (they are probability
distributions over topics), as LDA document-topic vectors are.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import ValidationError
from repro.utils.rng import as_generator

__all__ = ["make_nart"]

# The real corpus' shape (paper §5): 13 events, 734 labeled articles,
# 4,567 background articles, 350 topics.
_PAPER_EVENTS = 13
_PAPER_TRUTH = 734
_PAPER_NOISE = 4567
_PAPER_DIM = 350


def make_nart(
    *,
    scale: float = 1.0,
    n_events: int = _PAPER_EVENTS,
    dim: int = _PAPER_DIM,
    noise_degree: float | None = None,
    cluster_concentration: float = 400.0,
    noise_concentration: float = 3.0,
    seed=0,
) -> Dataset:
    """Generate the NART-like corpus.

    Parameters
    ----------
    scale:
        Scales both the ground-truth and noise counts (1.0 reproduces the
        paper's 734 + 4,567 items; tests use smaller scales).
    n_events:
        Number of hot events (dominant clusters; paper: 13).
    dim:
        Number of topics (paper: 350).
    noise_degree:
        When given, overrides the noise count so that
        ``#noise / #truth = noise_degree`` (the Fig. 11 sweep, Eq. 35).
    cluster_concentration:
        Dirichlet concentration of articles around their event profile —
        higher is tighter (denser subgraph).
    noise_concentration:
        Concentration of background articles around their own scattered
        profiles — low, so the background stays diffuse.
    seed:
        RNG seed.
    """
    if scale <= 0:
        raise ValidationError(f"scale must be positive, got {scale}")
    if n_events < 1:
        raise ValidationError(f"n_events must be >= 1, got {n_events}")
    rng = as_generator(seed)
    n_truth = max(n_events, int(round(_PAPER_TRUTH * scale)))
    if noise_degree is None:
        n_noise = int(round(_PAPER_NOISE * scale))
    else:
        if noise_degree < 0:
            raise ValidationError(
                f"noise_degree must be >= 0, got {noise_degree}"
            )
        n_noise = int(round(noise_degree * n_truth))

    # Split the labeled articles across events (sizes vary a little, as
    # real hot events do; the concentration keeps even the smallest event
    # large enough to clear the density threshold at modest scales).
    raw = rng.dirichlet(np.full(n_events, 20.0))
    sizes = np.maximum(1, np.round(raw * n_truth).astype(int))
    while sizes.sum() > n_truth:
        sizes[int(np.argmax(sizes))] -= 1
    while sizes.sum() < n_truth:
        sizes[int(np.argmin(sizes))] += 1

    blocks = []
    labels = []
    for event_id, size in enumerate(sizes):
        # Sparse topic profile: each event is about a handful of topics.
        profile = rng.dirichlet(np.full(dim, 0.05))
        profile = np.maximum(profile, 1e-8)
        articles = rng.dirichlet(profile * cluster_concentration, size=size)
        blocks.append(articles)
        labels.append(np.full(size, event_id, dtype=np.int64))

    if n_noise > 0:
        # Background: many scattered diffuse profiles, a few articles each,
        # so no background region forms a dense subgraph.
        n_profiles = max(1, n_noise // 3)
        profile_ids = rng.integers(0, n_profiles, size=n_noise)
        noise_rows = np.empty((n_noise, dim))
        profiles = rng.dirichlet(np.full(dim, 0.5), size=n_profiles)
        profiles = np.maximum(profiles, 1e-8)
        for i in range(n_noise):
            alpha = profiles[profile_ids[i]] * noise_concentration
            noise_rows[i] = rng.dirichlet(alpha)
        blocks.append(noise_rows)
        labels.append(np.full(n_noise, -1, dtype=np.int64))

    data = np.vstack(blocks)
    label_arr = np.concatenate(labels)
    return Dataset(
        data=data,
        labels=label_arr,
        name="nart",
        metadata={
            "scale": scale,
            "n_events": n_events,
            "dim": dim,
            "n_truth": int(n_truth),
            "n_noise": int(n_noise),
            "seed": seed,
        },
    )
