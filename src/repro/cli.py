"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Produce one of the paper's workloads and save it as ``.npz``.
``detect``
    Run a detection method on a saved (or freshly generated) dataset,
    print the summary/AVG-F and optionally save the result.
``compare``
    Run several methods on one dataset and print a comparison table.
``info``
    Describe a saved dataset or detection archive.
``snapshot``
    Fit ALID on a dataset and persist the fitted state as a versioned
    serve-time snapshot directory (see :mod:`repro.serve`).
``shard``
    Split a saved snapshot into per-worker serving shards (a shard plan
    directory; see :mod:`repro.serve.plan`).
``assign``
    Load a snapshot and assign a batch of query points to its dominant
    clusters (the serve-time workload).  With ``--workers N`` the
    snapshot is sharded on the fly and served by N worker processes
    (identical assignments, see :mod:`repro.serve.sharded`).  Both
    paths go through :func:`repro.serve.connect`.
``serve``
    Drive a deterministic open-loop traffic replay through the asyncio
    front-end (:mod:`repro.serve.frontend`): admission-controlled
    ingress, SLO-adaptive micro-batching, and — when sharded — a
    :class:`~repro.serve.supervisor.ShardSupervisor` healing crashed
    workers (``--kill-shard`` injects the crash).  Prints p50/p99
    latency, throughput, rejection accounting, and heal counters.
``ingest``
    Stream a dataset batch-by-batch through the live-corpus ingest
    tier (:mod:`repro.serve.ingest`): absorb each batch, re-peel the
    dirtied collision regions, and publish a base snapshot plus one
    incremental delta per subsequent batch — the artifact chain a
    serving process hot-applies with ``ClusterHandle.apply_delta``.
    With ``--wal`` every mutation is journaled write-ahead to
    ``<out>/ingest.wal``; re-running the command after a crash
    recovers the committed prefix (torn tail truncated, state
    replayed byte-identically) and continues the run.
``compact``
    Fold a chain directory (``base`` + ``delta_NNNN``) into one fresh
    base snapshot (:func:`repro.serve.compact.compact_chain`) serving
    byte-identical assignments to the chain tip.
``verify``
    Audit artifacts offline (:mod:`repro.serve.verify`): snapshot and
    delta checksums, delta parent-SHA links, WAL record CRCs, and
    journal/chain publish-marker agreement — exit 0 with a summary
    line per artifact, or exit 2 with a one-line diagnosis.
``stats``
    Serve a query batch against a snapshot with a shared
    :class:`~repro.obs.metrics.MetricsRegistry` wired through the
    backend (worker-process histogram deltas included) and print the
    Prometheus-style text exposition — the same output
    :meth:`~repro.serve.frontend.AsyncFrontend.metrics` scrapes.
``trace``
    Replay open-loop traffic (the ``serve`` schedule) with a
    :class:`~repro.obs.trace.TraceRecorder` attached to the front-end
    and the service, then export the spans — admission queueing,
    micro-batches, scatter / per-shard assign / merge, supervisor
    heals — as Chrome ``chrome://tracing`` / Perfetto-loadable
    trace-event JSONL.
``arena``
    Run the quality arena (:mod:`repro.arena`): every requested
    detector on every dataset, each cell in a subprocess under uniform
    wall/RSS limits, then print the deterministic ASCII leaderboard
    (and optionally save the JSON report).
``quality``
    Annotate a saved snapshot with per-cluster quality scores
    (:func:`repro.arena.quality.annotate_snapshot`) and print them;
    the annotated snapshot serves with quality gauges in ``stats``.

Examples
--------
::

    python -m repro generate --workload nart --scale 0.3 --out nart.npz
    python -m repro detect --input nart.npz --method alid --delta 400
    python -m repro compare --input nart.npz --methods alid iid km
    python -m repro snapshot --input nart.npz --out nart_snapshot
    python -m repro shard --snapshot nart_snapshot --out nart_shards --shards 4
    python -m repro assign --snapshot nart_snapshot --queries nart.npz --workers 2
    python -m repro serve --snapshot nart_snapshot --queries nart.npz --workers 2 --kill-shard 1.5
    python -m repro ingest --input nart.npz --out nart_chain --batch-size 500 --wal
    python -m repro compact --chain nart_chain --out nart_base2
    python -m repro verify nart_chain nart_snapshot
    python -m repro stats --snapshot nart_snapshot --queries nart.npz --workers 2
    python -m repro trace --snapshot nart_snapshot --queries nart.npz --out spans.jsonl
    python -m repro arena --detectors alid-fused iid km --wall-limit 60
    python -m repro quality --snapshot nart_snapshot --stability-refits 2
"""

from __future__ import annotations

import argparse
import sys


from repro.baselines import (
    AffinityPropagation,
    DominantSets,
    GraphShift,
    IIDDetector,
    KMeans,
    MeanShift,
    SEA,
    SpectralClustering,
)
from repro.baselines.common import KernelParams
from repro.core.alid import ALID
from repro.core.config import ALIDConfig
from repro.datasets import (
    Dataset,
    make_nart,
    make_ndi,
    make_sift,
    make_sub_ndi,
    make_synthetic_mixture,
)
from repro.eval.metrics import average_f1
from repro.exceptions import ValidationError
from repro.io import load_dataset, load_detection, save_dataset, save_detection
from repro.parallel.palid import PALID

__all__ = ["main", "build_parser"]

WORKLOADS = (
    "synthetic",
    "nart",
    "ndi",
    "sub_ndi",
    "sift",
    # End-to-end feature pipelines (raw media -> descriptors), §2 of
    # DESIGN.md; laptop-scale by construction.
    "nart_lda",
    "ndi_gist",
    "sift_patches",
)
METHODS = (
    "alid",
    "palid",
    "iid",
    "ds",
    "gs",
    "sea",
    "ap",
    "km",
    "sc-fl",
    "sc-nys",
    "ms",
)


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------
def _add_traffic_args(parser) -> None:
    """The open-loop replay knobs shared by ``serve`` and ``trace``."""
    parser.add_argument("--snapshot", required=True,
                        help="snapshot directory (or shard plan directory "
                             "with a plan.json)")
    parser.add_argument("--queries", required=True,
                        help="dataset .npz whose items feed the traffic")
    parser.add_argument("--workers", type=int, default=1,
                        help="serve through N shard worker processes "
                             "(default 1: single-process service)")
    parser.add_argument("--mmap", action="store_true",
                        help="memory-map snapshot arrays (single-process)")
    parser.add_argument("--rate", type=float, default=200.0,
                        help="mean request arrival rate, requests/s")
    parser.add_argument("--duration", type=float, default=3.0,
                        help="length of the arrival schedule, seconds")
    parser.add_argument("--request-rows", type=int, default=16,
                        help="query rows per request")
    parser.add_argument("--clients", type=int, default=4,
                        help="simulated clients cycling round-robin")
    parser.add_argument("--slo-ms", type=float, default=50.0,
                        help="latency SLO driving the adaptive batch cap")
    parser.add_argument("--max-batch", type=int, default=1024,
                        help="hard micro-batch row ceiling")
    parser.add_argument("--max-queued", type=int, default=4096,
                        help="admission bound, rows")
    parser.add_argument("--shortlist", choices=("lsh", "multiprobe", "all"),
                        default="lsh",
                        help="candidate-cluster shortlist mode")
    parser.add_argument("--kill-shard", type=float, default=None,
                        metavar="SECONDS",
                        help="SIGKILL one shard worker this far into the "
                             "replay (sharded only) to exercise "
                             "supervision and self-healing")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the arrival schedule")


def build_parser() -> argparse.ArgumentParser:
    """The full argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "ALID: Scalable Dominant Cluster Detection (VLDB 2015) — "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a paper workload")
    gen.add_argument("--workload", choices=WORKLOADS, required=True)
    gen.add_argument("--out", required=True, help="output .npz path")
    gen.add_argument("--n", type=int, default=5000,
                     help="size (synthetic/sift)")
    gen.add_argument("--scale", type=float, default=0.3,
                     help="scale factor (nart/ndi/sub_ndi)")
    gen.add_argument("--regime", default="bounded",
                     choices=("omega_n", "n_eta", "bounded"))
    gen.add_argument("--noise-degree", type=float, default=None)
    gen.add_argument("--seed", type=int, default=0)

    det = sub.add_parser("detect", help="run one detection method")
    det.add_argument("--input", required=True, help="dataset .npz path")
    det.add_argument("--method", choices=METHODS, default="alid")
    det.add_argument("--delta", type=int, default=800)
    det.add_argument("--density-threshold", type=float, default=0.75)
    det.add_argument("--executors", type=int, default=1,
                     help="PALID executors")
    det.add_argument("--k-clusters", type=int, default=None,
                     help="cluster count for partitioning methods "
                          "(default: true count + 1)")
    det.add_argument("--out", default=None, help="save result .npz here")
    det.add_argument("--seed", type=int, default=0)
    det.add_argument("--lid-kernel", default="fused",
                     choices=("reference", "fused", "numba"),
                     help="LID inner-loop backend (bit-identical; "
                          "'numba' falls back to 'fused' without numba)")
    det.add_argument("--profile", action="store_true",
                     help="run the fit under the phase profiler and "
                          "print per-phase wall/work keyed to the "
                          "paper's algorithms (ALID/PALID only)")

    cmp_cmd = sub.add_parser("compare", help="run several methods")
    cmp_cmd.add_argument("--input", required=True)
    cmp_cmd.add_argument("--methods", nargs="+", choices=METHODS,
                         default=["alid", "iid"])
    cmp_cmd.add_argument("--delta", type=int, default=800)
    cmp_cmd.add_argument("--density-threshold", type=float, default=0.75)
    cmp_cmd.add_argument("--seed", type=int, default=0)

    info = sub.add_parser("info", help="describe a saved archive")
    info.add_argument("path", help=".npz produced by generate or detect")
    info.add_argument("--kind", choices=("dataset", "detection"),
                      default="dataset")

    snap = sub.add_parser(
        "snapshot", help="fit ALID and persist a serve-time snapshot"
    )
    snap.add_argument("--input", required=True, help="dataset .npz path")
    snap.add_argument("--out", required=True,
                      help="snapshot directory to write")
    snap.add_argument("--delta", type=int, default=800)
    snap.add_argument("--density-threshold", type=float, default=0.75)
    snap.add_argument("--seed", type=int, default=0)
    snap.add_argument("--lid-kernel", default="fused",
                      choices=("reference", "fused", "numba"),
                      help="LID inner-loop backend (bit-identical)")

    shard = sub.add_parser(
        "shard", help="split a snapshot into per-worker serving shards"
    )
    shard.add_argument("--snapshot", required=True,
                       help="snapshot directory written by `repro snapshot`")
    shard.add_argument("--out", required=True,
                       help="shard plan directory to write")
    shard.add_argument("--shards", type=int, default=2,
                       help="number of shards (default 2)")
    shard.add_argument("--strategy", choices=("balanced", "contiguous"),
                       default="balanced",
                       help="cluster-to-shard assignment rule")

    assign = sub.add_parser(
        "assign", help="assign query points against a saved snapshot"
    )
    assign.add_argument("--snapshot", required=True,
                        help="snapshot directory written by `repro snapshot`"
                             " (or a shard plan directory when it holds a"
                             " plan.json)")
    assign.add_argument("--queries", required=True,
                        help="dataset .npz whose items are the queries")
    assign.add_argument("--mmap", action="store_true",
                        help="memory-map the snapshot arrays (read-only)")
    assign.add_argument("--workers", type=int, default=1,
                        help="serve through N shard worker processes "
                             "(default 1: single-process service)")
    assign.add_argument("--shortlist", choices=("lsh", "multiprobe", "all"),
                        default="lsh",
                        help="candidate-cluster shortlist mode")
    assign.add_argument("--out", default=None,
                        help="save per-query labels/scores .npz here")

    serve = sub.add_parser(
        "serve",
        help="drive open-loop traffic through the async front-end",
    )
    _add_traffic_args(serve)

    trace = sub.add_parser(
        "trace",
        help="replay traffic with request tracing and export the spans",
    )
    _add_traffic_args(trace)
    trace.add_argument("--out", required=True,
                       help="write Chrome trace-event JSONL here "
                            "(loadable by chrome://tracing / Perfetto)")

    stats = sub.add_parser(
        "stats",
        help="serve a query batch and print the metrics exposition",
    )
    stats.add_argument("--snapshot", required=True,
                       help="snapshot directory (or shard plan directory "
                            "with a plan.json)")
    stats.add_argument("--queries", required=True,
                       help="dataset .npz whose items are the queries")
    stats.add_argument("--workers", type=int, default=1,
                       help="serve through N shard worker processes "
                            "(default 1: single-process service)")
    stats.add_argument("--mmap", action="store_true",
                       help="memory-map snapshot arrays (single-process)")
    stats.add_argument("--batches", type=int, default=8,
                       help="split the queries into this many assign "
                            "batches (populates the latency histograms)")
    stats.add_argument("--shortlist", choices=("lsh", "multiprobe", "all"),
                       default="lsh",
                       help="candidate-cluster shortlist mode")

    ingest = sub.add_parser(
        "ingest",
        help="stream a dataset into a live corpus, publishing deltas",
    )
    ingest.add_argument("--input", required=True,
                        help="dataset .npz whose items arrive in batches")
    ingest.add_argument("--out", required=True,
                        help="chain directory: base/ plus delta_NNNN/ "
                             "subdirectories")
    ingest.add_argument("--batch-size", type=int, default=200,
                        help="arriving items per ingest batch (default 200)")
    ingest.add_argument("--delta", type=int, default=800)
    ingest.add_argument("--density-threshold", type=float, default=0.75)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--wal", action="store_true",
                        help="journal every mutation to <out>/ingest.wal "
                             "and recover a crashed run on restart")

    compact = sub.add_parser(
        "compact",
        help="fold a delta chain into a fresh base snapshot",
    )
    compact.add_argument("--chain", required=True,
                         help="chain directory (base/ + delta_NNNN/)")
    compact.add_argument("--out", required=True,
                         help="where to write the compacted snapshot "
                              "(must not be the chain's own base/)")
    compact.add_argument("--mmap", action="store_true",
                         help="memory-map the chain's arrays while "
                              "folding")

    verify = sub.add_parser(
        "verify",
        help="audit snapshot/delta/chain/WAL artifacts offline",
    )
    verify.add_argument("paths", nargs="+",
                        help="artifact path(s): snapshot or delta "
                             "directories, chain directories, or "
                             ".wal journal files")
    verify.add_argument("--allow-torn-tail", action="store_true",
                        help="report a journal's torn tail instead of "
                             "failing on it (recovery can truncate it)")

    arena = sub.add_parser(
        "arena",
        help="run detectors head-to-head under uniform limits",
    )
    arena.add_argument("--input", nargs="*", default=[],
                       help="dataset .npz path(s); the built-in tiny "
                            "synthetic pair when omitted")
    arena.add_argument("--detectors", nargs="+", default=None,
                       help="registry names (default: ALID + four "
                            "baselines; see repro.arena.registry)")
    arena.add_argument("--seeds", nargs="+", type=int, default=[0],
                       help="one cell per (detector, dataset, seed)")
    arena.add_argument("--wall-limit", type=float, default=120.0,
                       help="per-cell wall-clock budget, seconds")
    arena.add_argument("--rss-mb", type=float, default=None,
                       help="per-cell allocation budget beyond the "
                            "interpreter baseline, MB (default: "
                            "unlimited)")
    arena.add_argument("--delta", type=int, default=400,
                       help="ALID delta for the registry's alid-* specs")
    arena.add_argument("--density-threshold", type=float, default=0.75)
    arena.add_argument("--no-quality", action="store_true",
                       help="skip the per-cluster quality metrics "
                            "(pure wall/work sweep)")
    arena.add_argument("--out", default=None,
                       help="save the JSON ArenaReport here")

    quality = sub.add_parser(
        "quality",
        help="annotate a snapshot with per-cluster quality scores",
    )
    quality.add_argument("--snapshot", required=True,
                         help="snapshot directory to annotate")
    quality.add_argument("--out", default=None,
                         help="write the annotated snapshot here "
                              "(default: rewrite in place)")
    quality.add_argument("--stability-refits", type=int, default=0,
                         help="seed-perturbed refits for the stability "
                              "score (0 = skip stability; each refit "
                              "costs one full fit)")
    quality.add_argument("--seed", type=int, default=0)
    return parser


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------
def _cmd_generate(args) -> int:
    if args.workload == "synthetic":
        dataset = make_synthetic_mixture(
            args.n, regime=args.regime, seed=args.seed
        )
    elif args.workload == "nart":
        dataset = make_nart(
            scale=args.scale, noise_degree=args.noise_degree, seed=args.seed
        )
    elif args.workload == "ndi":
        dataset = make_ndi(
            scale=args.scale, noise_degree=args.noise_degree, seed=args.seed
        )
    elif args.workload == "sub_ndi":
        dataset = make_sub_ndi(
            scale=args.scale, noise_degree=args.noise_degree, seed=args.seed
        )
    elif args.workload == "sift":
        dataset = make_sift(args.n, seed=args.seed)
    elif args.workload == "nart_lda":
        from repro.features import nart_via_lda

        dataset = nart_via_lda(seed=args.seed)
    elif args.workload == "ndi_gist":
        from repro.features import ndi_via_gist

        dataset = ndi_via_gist(seed=args.seed)
    else:
        from repro.features import sift_via_patches

        dataset = sift_via_patches(seed=args.seed)
    path = save_dataset(dataset, args.out)
    print(
        f"wrote {path}: {dataset.n} items, dim {dataset.dim}, "
        f"{dataset.n_true_clusters} true clusters, "
        f"noise degree {dataset.noise_degree():.2f}"
    )
    return 0


def _build_method(name: str, dataset: Dataset, args):
    kernel = KernelParams(seed=args.seed)
    k_clusters = getattr(args, "k_clusters", None)
    if k_clusters is None:
        k_clusters = dataset.n_true_clusters + 1
    if name == "alid":
        return ALID(
            ALIDConfig(
                delta=args.delta,
                density_threshold=args.density_threshold,
                seed=args.seed,
                lid_kernel=getattr(args, "lid_kernel", "fused"),
            )
        )
    if name == "palid":
        return PALID(
            ALIDConfig(
                delta=args.delta,
                density_threshold=args.density_threshold,
                seed=args.seed,
                lid_kernel=getattr(args, "lid_kernel", "fused"),
            ),
            n_executors=getattr(args, "executors", 1),
        )
    if name == "iid":
        return IIDDetector(
            kernel=kernel, density_threshold=args.density_threshold
        )
    if name == "ds":
        return DominantSets(
            kernel=kernel, density_threshold=args.density_threshold
        )
    if name == "gs":
        return GraphShift(
            kernel=kernel, density_threshold=args.density_threshold
        )
    if name == "sea":
        return SEA(
            kernel=KernelParams(seed=args.seed, lsh_r_scale=20.0),
            density_threshold=args.density_threshold,
        )
    if name == "ap":
        return AffinityPropagation(kernel=kernel)
    if name == "km":
        return KMeans(k_clusters, seed=args.seed)
    if name == "sc-fl":
        return SpectralClustering(
            k_clusters, mode="full", kernel=kernel, seed=args.seed
        )
    if name == "sc-nys":
        return SpectralClustering(
            k_clusters, mode="nystrom", kernel=kernel, seed=args.seed
        )
    if name == "ms":
        return MeanShift(seed=args.seed)
    raise ValidationError(f"unknown method {name!r}")


def _evaluate_line(result, dataset: Dataset) -> str:
    truth = dataset.truth_clusters()
    avg = average_f1(result.member_lists(), truth) if truth else float("nan")
    work = result.counters.entries_computed if result.counters else 0
    mem = result.counters.peak_memory_mb if result.counters else 0.0
    return (
        f"{result.method:8s}  clusters={result.n_clusters:4d}  "
        f"AVG-F={avg:6.3f}  time={result.runtime_seconds:8.3f}s  "
        f"work={work:>12,}  peak-mem={mem:8.3f} MB"
    )


def _cmd_detect(args) -> int:
    dataset = load_dataset(args.input)
    method = _build_method(args.method, dataset, args)
    if getattr(args, "profile", False):
        from repro.obs.phases import PHASES, PhaseProfiler

        profiler = PhaseProfiler()
        with profiler:
            result = method.fit(dataset.data)
        print(_evaluate_line(result, dataset))
        summary = profiler.summary()
        for phase, record in sorted(summary.items()):
            wall = record.get("wall_seconds", 0.0)
            print(
                f"  phase {phase:10s} calls={record.get('calls', 0):6d}  "
                f"wall={wall:8.3f}s  "
                f"entries={record.get('entries', 0):>12,}  "
                f"({PHASES.get(phase, '?')})"
            )
    else:
        result = method.fit(dataset.data)
        print(_evaluate_line(result, dataset))
    if args.out:
        path = save_detection(result, args.out)
        print(f"saved detection to {path}")
    return 0


def _cmd_compare(args) -> int:
    dataset = load_dataset(args.input)
    print(
        f"dataset {dataset.name}: {dataset.n} items, "
        f"{dataset.n_true_clusters} true clusters, "
        f"noise degree {dataset.noise_degree():.2f}"
    )
    for name in args.methods:
        method = _build_method(name, dataset, args)
        result = method.fit(dataset.data)
        print(_evaluate_line(result, dataset))
    return 0


def _cmd_info(args) -> int:
    if args.kind == "dataset":
        dataset = load_dataset(args.path)
        print(f"dataset {dataset.name}")
        print(f"  items:        {dataset.n}")
        print(f"  dim:          {dataset.dim}")
        print(f"  true clusters:{dataset.n_true_clusters:>6}")
        print(f"  ground truth: {dataset.n_ground_truth}")
        print(f"  noise:        {dataset.n_noise}")
        print(f"  noise degree: {dataset.noise_degree():.3f}")
        print(f"  a*:           {dataset.largest_cluster_size()}")
    else:
        result = load_detection(args.path)
        print(result.summary())
        for cluster in sorted(result.clusters, key=lambda c: -c.size)[:10]:
            print(
                f"  label {cluster.label:4d}: size {cluster.size:5d}, "
                f"density {cluster.density:.3f}"
            )
    return 0


def _cmd_snapshot(args) -> int:
    from repro.serve import DetectionSnapshot

    dataset = load_dataset(args.input)
    detector = ALID(
        ALIDConfig(
            delta=args.delta,
            density_threshold=args.density_threshold,
            seed=args.seed,
            lid_kernel=getattr(args, "lid_kernel", "fused"),
        )
    )
    result = detector.fit(dataset.data)
    print(_evaluate_line(result, dataset))
    snapshot = DetectionSnapshot.from_result(detector, result)
    path = snapshot.save(args.out)
    print(
        f"wrote snapshot {path}: {snapshot.n_clusters} cluster(s), "
        f"{snapshot.n_items} items, dim {snapshot.dim}"
    )
    return 0


def _cmd_shard(args) -> int:
    from repro.serve import ShardPlanner

    plan = ShardPlanner(n_shards=args.shards, strategy=args.strategy).plan(
        args.snapshot, args.out
    )
    print(
        f"wrote shard plan {plan.root}: {plan.n_shards} shard(s), "
        f"strategy {plan.strategy}, parent {plan.parent_n_items} items / "
        f"{plan.parent_n_clusters} cluster(s)"
    )
    for spec in plan.shards:
        print(
            f"  {spec.dir_name}: {spec.n_items:6d} items, "
            f"{spec.n_clusters:3d} cluster(s) "
            f"(labels {', '.join(str(label) for label in spec.labels)})"
        )
    return 0


def _cmd_assign(args) -> int:
    import contextlib
    import pathlib
    import time

    import numpy as np

    from repro.serve import connect

    queries = load_dataset(args.queries).data
    with contextlib.ExitStack() as stack:
        if (pathlib.Path(args.snapshot) / "plan.json").is_file():
            # A shard plan directory: serve it with its own worker pool
            # (its shard count is baked in at planning time; workers
            # always mmap their shards).
            if args.workers > 1:
                print(
                    f"note: {args.snapshot} is a shard plan; serving with "
                    f"its planned shard count, --workers ignored"
                )
            service = stack.enter_context(connect(args.snapshot))
            served_by = f"{service.n_shards} shard worker(s)"
        elif args.workers > 1:
            # connect() shards the snapshot on the fly into a managed
            # scratch plan (removed again when the handle closes).
            service = stack.enter_context(
                connect(args.snapshot, workers=args.workers)
            )
            served_by = f"{service.n_shards} shard worker(s)"
        else:
            service = stack.enter_context(
                connect(args.snapshot, mmap=args.mmap)
            )
            served_by = "1 process"
        start = time.perf_counter()
        assignment = service.assign(queries, shortlist=args.shortlist)
        wall = max(time.perf_counter() - start, 1e-9)
        n_clusters = service.n_clusters
    print(
        f"assigned {int(assignment.assigned_mask.sum())}/"
        f"{assignment.n_queries} queries "
        f"({100 * assignment.coverage:.1f}%) across "
        f"{n_clusters} cluster(s) in {wall:.3f}s "
        f"({assignment.n_queries / wall:,.0f} queries/s, "
        f"{assignment.entries_computed:,} affinity entries, "
        f"served by {served_by})"
    )
    labels, counts = np.unique(
        assignment.labels[assignment.assigned_mask], return_counts=True
    )
    for label, count in zip(labels.tolist(), counts.tolist()):
        print(f"  cluster {label:4d}: {count:6d} queries")
    if args.out:
        path = args.out if str(args.out).endswith(".npz") else f"{args.out}.npz"
        np.savez_compressed(
            path,
            labels=assignment.labels,
            scores=assignment.scores,
            n_candidates=assignment.n_candidates,
        )
        print(f"saved assignment to {path}")
    return 0


def _traffic_schedule(args, data):
    """Deterministic open-loop schedule: exponential inter-arrivals at
    the requested mean rate, requests cycling through the dataset."""
    import numpy as np

    if args.rate <= 0.0:
        raise ValidationError(f"--rate must be > 0, got {args.rate}")
    if args.duration <= 0.0:
        raise ValidationError(
            f"--duration must be > 0, got {args.duration}"
        )
    if args.request_rows < 1:
        raise ValidationError(
            f"--request-rows must be >= 1, got {args.request_rows}"
        )
    if args.clients < 1:
        raise ValidationError(f"--clients must be >= 1, got {args.clients}")
    rng = np.random.default_rng(args.seed)
    arrivals = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / args.rate))
        if t >= args.duration:
            break
        arrivals.append(t)
    if not arrivals:
        raise ValidationError(
            "the arrival schedule is empty; raise --rate or --duration"
        )
    rows = args.request_rows
    requests = [
        data[np.arange(i * rows, (i + 1) * rows) % data.shape[0]]
        for i in range(len(arrivals))
    ]
    clients = [f"client-{i % args.clients}" for i in range(len(arrivals))]
    return arrivals, requests, clients


def _connect_traffic_service(stack, args, **hooks):
    """Open the serving backend for a traffic replay (plus supervisor).

    Sharded pools serve degraded around a dead worker ("skip") while a
    :class:`~repro.serve.ShardSupervisor` heals it — the traffic front
    must not fail whole batches for one lost shard.  ``hooks`` forwards
    ``registry`` / ``tracer`` to the backend.
    """
    import pathlib

    from repro.serve import ShardSupervisor, connect

    if (pathlib.Path(args.snapshot) / "plan.json").is_file():
        service = stack.enter_context(
            connect(args.snapshot, on_worker_error="skip", **hooks)
        )
    elif args.workers > 1:
        service = stack.enter_context(
            connect(
                args.snapshot,
                workers=args.workers,
                on_worker_error="skip",
                **hooks,
            )
        )
    else:
        service = stack.enter_context(
            connect(args.snapshot, mmap=args.mmap, **hooks)
        )
    if hasattr(service, "heal"):
        stack.enter_context(ShardSupervisor(service, interval=0.1))
    elif args.kill_shard is not None:
        raise ValidationError(
            "--kill-shard needs a sharded service; pass --workers N "
            "or a shard plan directory"
        )
    return service


def _drive_open_loop(service, args, arrivals, requests, clients,
                     registry=None, tracer=None):
    """Run the replay through an :class:`AsyncFrontend`; returns
    ``(records, frontend_stats)``."""
    import asyncio
    import os
    import signal

    from repro.serve import AsyncFrontend, run_open_loop

    async def _drive():
        async with AsyncFrontend(
            service,
            slo_ms=args.slo_ms,
            max_batch_rows=args.max_batch,
            max_queued_rows=args.max_queued,
            shortlist=args.shortlist,
            registry=registry,
            tracer=tracer,
        ) as frontend:
            kill_task = None
            if args.kill_shard is not None:

                async def _kill():
                    await asyncio.sleep(args.kill_shard)
                    victim = service._workers[0]
                    print(
                        f"[fault] SIGKILL shard "
                        f"{victim.shard_id} (pid {victim.process.pid})"
                    )
                    os.kill(victim.process.pid, signal.SIGKILL)

                kill_task = asyncio.ensure_future(_kill())
            try:
                records = await run_open_loop(
                    frontend, requests, arrivals, clients=clients
                )
            finally:
                if kill_task is not None and not kill_task.done():
                    kill_task.cancel()
            return records, frontend.stats()

    return asyncio.run(_drive())


def _cmd_serve(args) -> int:
    import contextlib

    import numpy as np

    data = load_dataset(args.queries).data
    arrivals, requests, clients = _traffic_schedule(args, data)
    with contextlib.ExitStack() as stack:
        service = _connect_traffic_service(stack, args)
        records, fe_stats = _drive_open_loop(
            service, args, arrivals, requests, clients
        )
        service_stats = service.stats()

    ok = [r for r in records if r["status"] == "ok"]
    rejected = [r for r in records if r["status"] == "rejected"]
    errors = [r for r in records if r["status"] == "error"]
    latencies = np.asarray([r["reply"].latency_ms for r in ok])
    print(
        f"offered {len(records)} requests over {args.duration:.1f}s "
        f"({args.rate:.0f} req/s x {args.request_rows} rows): "
        f"{len(ok)} ok, {len(rejected)} rejected, {len(errors)} errors"
    )
    if latencies.size:
        done_rows = sum(r["n_rows"] for r in ok)
        print(
            f"latency p50 {np.percentile(latencies, 50):.2f} ms, "
            f"p99 {np.percentile(latencies, 99):.2f} ms "
            f"(SLO {args.slo_ms:.0f} ms, "
            f"{fe_stats['slo_violations']} violations); "
            f"throughput {done_rows / args.duration:,.0f} rows/s in "
            f"{fe_stats['batches']} micro-batches "
            f"(mean {fe_stats['mean_batch_rows']:.1f} rows)"
        )
    admission = fe_stats["admission"]
    print(
        f"admission: {admission['admitted_requests']} admitted, "
        f"{admission['rejected_requests']} rejected, peak queue "
        f"{admission['peak_queued_rows']} rows "
        f"(bound {admission['max_queued_rows']})"
    )
    if "dead_shards" in service_stats:
        print(
            f"pool: {service_stats['n_shards']} shard(s), "
            f"dead now {service_stats['dead_shards']}, "
            f"{service_stats['respawns']} respawn(s), "
            f"{service_stats['healed_shards']} healed shard(s), "
            f"{service_stats['degraded_batches']} degraded batch(es)"
        )
    return 0 if not errors else 1


def _cmd_trace(args) -> int:
    import contextlib
    from collections import Counter

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import TraceRecorder

    data = load_dataset(args.queries).data
    arrivals, requests, clients = _traffic_schedule(args, data)
    tracer = TraceRecorder()
    registry = MetricsRegistry()
    with contextlib.ExitStack() as stack:
        service = _connect_traffic_service(
            stack, args, registry=registry, tracer=tracer
        )
        records, fe_stats = _drive_open_loop(
            service, args, arrivals, requests, clients,
            registry=registry, tracer=tracer,
        )
    ok = sum(1 for r in records if r["status"] == "ok")
    n_events = tracer.export_jsonl(args.out)
    names = Counter(
        event["name"] for event in tracer.events() if event["ph"] == "X"
    )
    print(
        f"replayed {len(records)} requests ({ok} ok); "
        f"wrote {n_events} trace event(s) to {args.out} "
        f"(spans opened {tracer.opened}, closed {tracer.closed}, "
        f"dropped {tracer.dropped}, "
        f"balanced {'yes' if tracer.balanced else 'NO'})"
    )
    for name, count in sorted(names.items()):
        print(f"  {name:12s} {count:6d}")
    return 0


def _cmd_stats(args) -> int:
    import contextlib
    import pathlib

    import numpy as np

    from repro.obs.metrics import MetricsRegistry
    from repro.serve import connect

    if args.batches < 1:
        raise ValidationError(
            f"--batches must be >= 1, got {args.batches}"
        )
    registry = MetricsRegistry()
    queries = load_dataset(args.queries).data
    with contextlib.ExitStack() as stack:
        if (pathlib.Path(args.snapshot) / "plan.json").is_file():
            service = stack.enter_context(
                connect(args.snapshot, registry=registry)
            )
        elif args.workers > 1:
            service = stack.enter_context(
                connect(args.snapshot, workers=args.workers,
                        registry=registry)
            )
        else:
            service = stack.enter_context(
                connect(args.snapshot, mmap=args.mmap, registry=registry)
            )
        n_batches = max(1, min(args.batches, queries.shape[0]))
        for block in np.array_split(queries, n_batches):
            if block.shape[0]:
                service.assign(block, shortlist=args.shortlist)
    print(registry.render_text(), end="")
    return 0


def _dir_bytes(path) -> int:
    """Total payload bytes of an artifact directory (recursive)."""
    return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())


def _cmd_ingest(args) -> int:
    import pathlib

    from repro.serve import IngestService
    from repro.streaming import StreamingALID

    if args.batch_size < 1:
        raise ValidationError(
            f"--batch-size must be >= 1, got {args.batch_size}"
        )
    dataset = load_dataset(args.input)
    out = pathlib.Path(args.out)
    config = ALIDConfig(
        delta=args.delta,
        density_threshold=args.density_threshold,
        seed=args.seed,
    )
    step = args.batch_size
    wal_path = out / "ingest.wal"
    # Synchronous re-peel: the CLI is a batch tool, so the published
    # chain must be deterministic for a given input and seed.
    if args.wal and wal_path.is_file():
        # A journal from a previous (possibly crashed) run: truncate
        # its torn tail, replay the committed prefix, continue.
        service = IngestService.recover(wal_path, out)
        info = service.recovery_info
        print(
            f"recovered {wal_path}: {info['records_replayed']} "
            f"record(s) replayed, {info['torn_bytes_truncated']} torn "
            f"byte(s) truncated, {info['publishes_restored']} "
            f"publish(es) restored"
        )
    else:
        service = IngestService(
            StreamingALID(config),
            repeel="sync",
            wal=wal_path if args.wal else None,
        )
    published = []
    with service:
        start = service.stream.n_items
        for lo in range(start, dataset.n, step):
            number = lo // step
            report = service.ingest(dataset.data[lo:lo + step])
            print(
                f"batch {number:3d}: {report.n_points:5d} points, "
                f"{report.absorbed:5d} absorbed, "
                f"{report.dirty_marked:5d} re-peeled, "
                f"{report.n_clusters:3d} cluster(s), "
                f"{report.entries_computed:,} affinity entries"
            )
            if service.stats()["chain_tip"] is None:
                snapshot = service.publish_base(out / "base")
                published.append(
                    f"  base: {snapshot.n_clusters} cluster(s), "
                    f"{snapshot.n_items} items, "
                    f"{_dir_bytes(out / 'base'):,} bytes"
                )
            else:
                name = (
                    f"delta_{service.stats()['published_sequence']:04d}"
                )
                delta = service.publish_delta(out / name)
                published.append(
                    f"  {name}: +{delta.n_appended} rows, "
                    f"-{delta.n_removed}/+{delta.n_upserted} cluster(s), "
                    f"{_dir_bytes(out / name):,} bytes"
                )
        stats = service.stats()
    print(f"wrote chain {out}: {len(published)} publish(es)")
    for line in published:
        print(line)
    print(
        f"final corpus: {stats['n_items']} items, "
        f"{stats['n_clusters']} cluster(s), chain tip "
        f"{str(stats['chain_tip'])[:12]}..."
    )
    return 0


def _cmd_compact(args) -> int:
    import pathlib

    from repro.serve import chain_artifacts, compact_chain

    _, deltas = chain_artifacts(args.chain)
    snapshot = compact_chain(args.chain, args.out, mmap=args.mmap)
    out = pathlib.Path(args.out)
    print(
        f"compacted {args.chain}: base + {len(deltas)} delta(s) -> "
        f"{out} ({_dir_bytes(out):,} bytes)"
    )
    print(
        f"  {snapshot.n_items} items, {snapshot.n_clusters} "
        f"cluster(s), folded tip {snapshot.meta['compacted_from'][:12]}"
        f"..., manifest {snapshot.manifest_sha256[:12]}..."
    )
    return 0


def _cmd_verify(args) -> int:
    from repro.serve import verify_artifact

    for path in args.paths:
        report = verify_artifact(
            path, allow_torn_tail=args.allow_torn_tail
        )
        kind = report["kind"]
        if kind == "chain":
            wal = report["wal"]
            journal = (
                "no journal"
                if wal is None
                else f"journal {wal['n_records']} record(s)"
                + (
                    f" ({wal['torn_bytes']} torn byte(s))"
                    if wal["torn_bytes"]
                    else ""
                )
            )
            print(
                f"{path}: chain ok — base + "
                f"{len(report['deltas'])} delta(s), tip "
                f"{report['tip_sha256'][:12]}..., {journal}"
            )
        elif kind == "snapshot":
            print(
                f"{path}: snapshot ok — {report['n_items']} items, "
                f"{report['n_clusters']} cluster(s), manifest "
                f"{report['manifest_sha256'][:12]}..."
            )
        elif kind == "delta":
            print(
                f"{path}: delta ok — sequence {report['sequence']}, "
                f"+{report['n_appended']} rows, "
                f"-{report['n_removed']}/+{report['n_upserted']} "
                f"cluster(s), {report['n_retired_rows']} retired "
                f"row(s), parent {report['parent_sha256'][:12]}..."
            )
        else:
            torn = (
                f", {report['torn_bytes']} torn byte(s)"
                if report["torn_bytes"]
                else ""
            )
            print(
                f"{path}: wal ok — {report['n_records']} record(s), "
                f"{report['committed_bytes']:,} committed bytes{torn}"
            )
    return 0


def _cmd_arena(args) -> int:
    from repro.arena import ArenaDataset, ArenaRunner, CellLimits
    from repro.arena.registry import default_registry, tiny_datasets

    if args.input:
        datasets = [
            ArenaDataset.from_dataset(load_dataset(path))
            for path in args.input
        ]
    else:
        datasets = tiny_datasets()
    runner = ArenaRunner(
        default_registry(
            delta=args.delta,
            density_threshold=args.density_threshold,
        ),
        limits=CellLimits(
            wall_seconds=args.wall_limit, rss_mb=args.rss_mb
        ),
        with_quality=not args.no_quality,
    )
    report = runner.run(datasets, detectors=args.detectors,
                        seeds=args.seeds)
    print(report.leaderboard())
    by_status: dict[str, int] = {}
    for cell in report.cells:
        by_status[cell.status] = by_status.get(cell.status, 0) + 1
    summary = ", ".join(
        f"{status}={count}" for status, count in sorted(by_status.items())
    )
    print(f"{len(report.cells)} cell(s): {summary}")
    for cell in report.cells:
        if cell.status != "OK":
            print(
                f"  {cell.status}: {cell.detector} x {cell.dataset} "
                f"seed {cell.seed}: {cell.error}"
            )
    print(f"report fingerprint: {report.fingerprint()[:16]}")
    if args.out is not None:
        report.save(args.out)
        print(f"report written to {args.out}")
    return 0


def _cmd_quality(args) -> int:
    from repro.arena.quality import QUALITY_METRICS, annotate_snapshot
    from repro.serve import DetectionSnapshot
    from repro.viz.ascii import render_leaderboard

    if args.stability_refits < 0:
        raise ValidationError(
            f"--stability-refits must be >= 0, got {args.stability_refits}"
        )
    snapshot = DetectionSnapshot.load(args.snapshot)
    annotate_snapshot(
        snapshot,
        seed=args.seed,
        stability_refits=args.stability_refits,
    )
    carried = [
        metric
        for metric in QUALITY_METRICS
        if all(metric in s for s in snapshot.quality.values())
    ]
    rows = [
        [str(label)] + [f"{snapshot.quality[label][m]:.3f}" for m in carried]
        for label in sorted(snapshot.quality)
    ]
    print(
        render_leaderboard(
            ["cluster"] + carried,
            rows,
            title=f"quality of {args.snapshot} "
                  f"({len(snapshot.quality)} cluster(s))",
        )
    )
    out = args.out if args.out is not None else args.snapshot
    snapshot.save(out)
    print(f"quality-annotated snapshot written to {out}")
    print(
        "note: the manifest sha changed — re-anchor any delta chain "
        "published against the unannotated artifact"
    )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "detect": _cmd_detect,
    "compare": _cmd_compare,
    "info": _cmd_info,
    "snapshot": _cmd_snapshot,
    "shard": _cmd_shard,
    "assign": _cmd_assign,
    "serve": _cmd_serve,
    "ingest": _cmd_ingest,
    "compact": _cmd_compact,
    "verify": _cmd_verify,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "arena": _cmd_arena,
    "quality": _cmd_quality,
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValidationError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
