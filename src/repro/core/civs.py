"""Candidate Infective Vertex Search — CIVS (paper §4.3, Fig. 4).

A single LSH query from the ROI centre covers only one locality-sensitive
region and can miss parts of the ROI (paper Fig. 4(a)).  CIVS therefore
queries the index from *every supporting data item* of the current local
dense subgraph, unions the collision sets, filters them exactly against
the ROI ball, and keeps at most ``delta`` candidates nearest to the
centre ``D`` (Fig. 4(b)).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.affinity.oracle import AffinityOracle
from repro.lsh.index import LSHIndex
from repro.obs import phases
from repro.utils.validation import check_index_array

__all__ = ["CIVSResult", "civs_retrieve"]


@dataclass(frozen=True)
class CIVSResult:
    """Outcome of one CIVS retrieval.

    Attributes
    ----------
    psi:
        Global indices of retrieved candidates (new vertices within the
        ROI, at most delta, nearest-to-centre first).
    n_candidates:
        Size of the raw LSH collision union before the exact ROI filter
        (diagnostic: how much the exact filter pruned).
    """

    psi: np.ndarray
    n_candidates: int


def civs_retrieve(
    index: LSHIndex,
    oracle: AffinityOracle,
    support: np.ndarray,
    center: np.ndarray,
    radius: float,
    delta: int,
    *,
    exclude: np.ndarray | None = None,
    candidates: np.ndarray | None = None,
) -> CIVSResult:
    """Retrieve candidate infective vertices inside the ROI.

    Parameters
    ----------
    index:
        The LSH index over all data items (peeled items are inactive).
    oracle:
        Affinity oracle (used for exact distance checks, which are charged
        as work like any other kernel-adjacent computation).
    support:
        Global indices of the supporting items of ``x_hat`` — each issues
        one LSH query (the multi-LSR coverage of Fig. 4(b)).
    center:
        The ROI centre ``D``.
    radius:
        Current working radius of the ROI (Eq. 16).
    delta:
        Maximum number of candidates to keep (paper: 800).
    exclude:
        Additional global indices to drop from the result (the support
        itself is always dropped — psi must contain *new* vertices only).
    candidates:
        Precomputed LSH collision union for *support* — must equal
        ``index.query_items(support)``.  The batched peeling driver
        passes the per-seed slice of one
        :meth:`~repro.lsh.index.LSHIndex.query_items_grouped` call here
        so a whole seed cohort shares a single fused gather; ``None``
        queries the index directly (the sequential path).

    Returns
    -------
    CIVSResult
        Candidates sorted by distance to the centre, nearest first.
    """
    prof = phases.active()
    if prof is None:
        return _civs_retrieve(
            index, oracle, support, center, radius, delta,
            exclude=exclude, candidates=candidates,
        )
    t0 = time.perf_counter()
    before = oracle.counters.entries_computed
    result = _civs_retrieve(
        index, oracle, support, center, radius, delta,
        exclude=exclude, candidates=candidates,
    )
    prof.record(
        "civs",
        wall=time.perf_counter() - t0,
        entries=oracle.counters.entries_computed - before,
        candidates=result.n_candidates,
        retrieved=int(result.psi.size),
    )
    return result


def _civs_retrieve(
    index: LSHIndex,
    oracle: AffinityOracle,
    support: np.ndarray,
    center: np.ndarray,
    radius: float,
    delta: int,
    *,
    exclude: np.ndarray | None = None,
    candidates: np.ndarray | None = None,
) -> CIVSResult:
    """The unprofiled CIVS body (see :func:`civs_retrieve`)."""
    support = check_index_array(support, index.n, name="support")
    if candidates is None:
        candidates = index.query_items(support)
    n_raw = int(candidates.size)
    if candidates.size == 0:
        return CIVSResult(psi=np.empty(0, dtype=np.intp), n_candidates=0)
    # query_items already excludes the support; only the caller's extra
    # exclusions (e.g. the immunity cache) remain to be filtered.
    if exclude is not None:
        exclude = np.asarray(exclude, dtype=np.intp).ravel()
        if exclude.size:
            candidates = candidates[
                np.isin(candidates, exclude, invert=True)
            ]
    if candidates.size == 0:
        return CIVSResult(psi=np.empty(0, dtype=np.intp), n_candidates=n_raw)
    # Exact fixed-radius filter against the ROI ball.
    dists = oracle.distances_to_point(center, rows=candidates)
    inside = dists <= radius
    candidates = candidates[inside]
    dists = dists[inside]
    if candidates.size > delta:
        # Keep the delta candidates nearest to the ball centre (paper:
        # "at most delta new data items within the ROI that are the
        # nearest to the ball center D").
        nearest = np.argsort(dists, kind="stable")[:delta]
        candidates = candidates[nearest]
    else:
        order = np.argsort(dists, kind="stable")
        candidates = candidates[order]
    return CIVSResult(psi=candidates, n_candidates=n_raw)
