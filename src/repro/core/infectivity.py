"""The Theorem 1 infectivity test, shared by fit-time and serve-time code.

A converged cluster strategy ``x`` (support ``members``, weights, density
``pi(x)``) is *immune* against a vertex ``s`` exactly when the payoff
margin ``pi(s - x, x) = a(s, members) . weights - pi(x)`` is at most the
immunity tolerance; vertices above the tolerance are **infective** and
would strictly increase the cluster's density if absorbed (paper
Theorem 1, the stop criterion of Alg. 2).

Three call sites evaluate this test against a *finished* strategy and
previously re-implemented it inline:

* :meth:`repro.streaming.online.StreamingALID` absorb — arriving items
  joining an existing cluster;
* :meth:`repro.core.alid.ALIDEngine` global verification — the exact
  full-range scan behind ``verify_global=True``;
* :class:`repro.serve.assigner.ClusterAssigner` — serve-time assignment
  of foreign query points to persisted clusters.

All three now route through the vectorised helpers below, so the
criterion (and its oracle accounting: one counted block per evaluation)
cannot drift between the online and serving paths.
"""

from __future__ import annotations

import numpy as np

from repro.affinity.oracle import AffinityOracle

__all__ = [
    "cluster_payoffs",
    "item_payoffs",
    "point_payoffs",
    "infective_mask",
    "max_item_payoffs",
]


def cluster_payoffs(
    block: np.ndarray, weights: np.ndarray, density: float
) -> np.ndarray:
    """Payoff margins ``pi(s - x, x)`` from a precomputed affinity block.

    Parameters
    ----------
    block:
        Affinity block of shape ``(m, support)`` — one row per candidate
        vertex, columns aligned with the cluster's support.
    weights:
        The cluster's converged strategy weights over its support.
    density:
        The cluster's graph density ``pi(x)``.

    Returns
    -------
    numpy.ndarray
        ``block @ weights - density``, one margin per candidate row.
    """
    weights = np.asarray(weights, dtype=np.float64)
    return np.asarray(block, dtype=np.float64) @ weights - float(density)


def item_payoffs(
    oracle: AffinityOracle,
    items: np.ndarray,
    members: np.ndarray,
    weights: np.ndarray,
    density: float,
) -> np.ndarray:
    """Payoff margins of **indexed items** against a cluster strategy.

    One counted :meth:`~repro.affinity.oracle.AffinityOracle.block`
    fetch of shape ``(len(items), len(members))`` — the exact evaluation
    (and accounting) streaming absorb has always performed.
    """
    return cluster_payoffs(oracle.block(items, members), weights, density)


def point_payoffs(
    oracle: AffinityOracle,
    points: np.ndarray,
    members: np.ndarray,
    weights: np.ndarray,
    density: float,
) -> np.ndarray:
    """Payoff margins of **foreign query points** against a cluster strategy.

    The serve-time twin of :func:`item_payoffs`: queries are arbitrary
    points, not rows of the oracle's data matrix, so the affinities come
    from one counted
    :meth:`~repro.affinity.oracle.AffinityOracle.point_block` fetch (no
    zero-diagonal rule applies — a query is never a support member).
    """
    return cluster_payoffs(
        oracle.point_block(points, members), weights, density
    )


def max_item_payoffs(
    oracle: AffinityOracle, items: np.ndarray, clusters
) -> np.ndarray:
    """Best payoff margin of each indexed item over a set of clusters.

    One counted :func:`item_payoffs` block per cluster, reduced with a
    running maximum — the bulk form of "is this item infective against
    *any* current cluster?".  The ingest tier
    (:class:`~repro.serve.ingest.IngestService`) uses it to classify
    items that absorption left behind: a near-miss margin just under the
    tolerance is pool noise, a margin above it means the re-converged
    strategy ejected the item and its collision component needs a
    re-peel.  An empty cluster list yields ``-inf`` margins.
    """
    items = np.asarray(items)
    best = np.full(items.shape[0], -np.inf)
    for cluster in clusters:
        pay = item_payoffs(
            oracle,
            items,
            cluster.members,
            cluster.weights,
            cluster.density,
        )
        np.maximum(best, pay, out=best)
    return best


def infective_mask(payoffs: np.ndarray, tol: float) -> np.ndarray:
    """Boolean mask of candidates that are infective (``payoff > tol``).

    This is the Theorem 1 decision itself; keeping the strict inequality
    in one place pins serve-time assignment to streaming absorb.
    """
    return np.asarray(payoffs) > float(tol)
