"""Region of Interest: the double-deck hyperball (paper §4.2, Eq. 15/16).

Given a converged local dense subgraph ``x_hat`` with support ``alpha``,
the double-deck hyperball ``H(D, R_in, R_out)`` is centred at the weighted
barycentre ``D = sum_i v_i * x_i`` with

* ``R_in  = ln(lambda_in  / pi(x)) / k``,
  ``lambda_in  = sum_i x_i * exp(-k ||v_i - D||_p)``;
* ``R_out = ln(lambda_out / pi(x)) / k``,
  ``lambda_out = sum_i x_i * exp(+k ||v_i - D||_p)``.

Proposition 1 (proved via the triangle inequality) guarantees that every
data item strictly inside the inner ball is infective against ``x_hat``
and every item strictly outside the outer ball is non-infective.  The
working ROI radius grows from ``R_in`` towards ``R_out`` on the logistic
schedule ``theta(c) = 1 / (1 + exp(4 - c/2))`` (Eq. 16), so early
iterations scan few points while convergence is still guaranteed by the
outer ball.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from repro.affinity.kernel import LaplacianKernel, pairwise_distances
from repro.exceptions import ValidationError
from repro.utils.validation import check_probability_vector

__all__ = ["DoubleDeckBall", "estimate_roi", "roi_radius", "logistic_growth"]


@dataclass(frozen=True)
class DoubleDeckBall:
    """The ROI's geometry: centre and the two guaranteed radii.

    Attributes
    ----------
    center:
        The barycentre ``D`` of the support, weighted by ``x_hat``.
    r_in:
        Inner radius: everything strictly inside is infective (clamped at
        0 when ``lambda_in < pi(x)``, i.e. the guarantee region is empty).
    r_out:
        Outer radius: everything strictly outside is non-infective.
    density:
        The density ``pi(x_hat)`` the ball was computed from.
    """

    center: np.ndarray
    r_in: float
    r_out: float
    density: float

    def contains(self, distances: np.ndarray, radius: float) -> np.ndarray:
        """Boolean mask of points (given their distances to D) within radius."""
        return np.asarray(distances) <= radius


def logistic_growth(c: int, offset: float = 4.0, rate: float = 2.0) -> float:
    """The shifted logistic ``theta(c) = 1 / (1 + exp(offset - c/rate))``.

    Controls how fast the ROI surface moves from the inner to the outer
    ball as the ALID iteration count *c* grows (paper Eq. 16).
    """
    if c < 0:
        raise ValidationError(f"iteration count must be >= 0, got {c}")
    return float(1.0 / (1.0 + np.exp(offset - c / rate)))


def estimate_roi(
    support_data: np.ndarray,
    weights: np.ndarray,
    density: float,
    kernel: LaplacianKernel,
) -> DoubleDeckBall:
    """Build the double-deck hyperball from a local dense subgraph.

    Parameters
    ----------
    support_data:
        Rows are the data items of the support ``alpha`` (shape (m, d)).
    weights:
        The support weights ``x_hat_alpha`` (must sum to 1).
    density:
        ``pi(x_hat)``, strictly positive (a singleton subgraph has
        density 0 under the zero-diagonal kernel and admits no ROI;
        callers fall back to the initial radius in that case).
    kernel:
        The Laplacian kernel of Eq. 1 (supplies ``k`` and ``p``).

    Notes
    -----
    ``lambda_out`` involves ``exp(+k * distance)`` which can overflow for
    distant support points; both lambdas are therefore evaluated in log
    space with :func:`scipy.special.logsumexp`.
    """
    weights = check_probability_vector(weights, name="weights")
    support_data = np.asarray(support_data, dtype=np.float64)
    if support_data.ndim != 2 or support_data.shape[0] != weights.size:
        raise ValidationError(
            f"support_data must be (m, d) with m = len(weights); "
            f"got {support_data.shape} vs {weights.size}"
        )
    if density <= 0.0:
        raise ValidationError(
            f"density must be > 0 to estimate a ROI, got {density}"
        )
    center = weights @ support_data
    dists = pairwise_distances(support_data, center[None, :], p=kernel.p)[:, 0]
    with np.errstate(divide="ignore"):
        log_w = np.where(weights > 0.0, np.log(weights), -np.inf)
    log_lambda_in = float(logsumexp(log_w - kernel.k * dists))
    log_lambda_out = float(logsumexp(log_w + kernel.k * dists))
    log_density = float(np.log(density))
    r_in = max(0.0, (log_lambda_in - log_density) / kernel.k)
    r_out = max(r_in, (log_lambda_out - log_density) / kernel.k)
    return DoubleDeckBall(center=center, r_in=r_in, r_out=r_out, density=density)


def roi_radius(
    ball: DoubleDeckBall,
    c: int,
    *,
    offset: float = 4.0,
    rate: float = 2.0,
) -> float:
    """Working ROI radius at ALID iteration *c* (paper Eq. 16).

    ``R = R_in + theta(c) * (R_out - R_in)`` — starts near the inner ball
    and approaches the outer ball as *c* grows.
    """
    theta = logistic_growth(c, offset=offset, rate=rate)
    return ball.r_in + theta * (ball.r_out - ball.r_in)
