"""ALID: Approximate Localized Infection Immunization Dynamics.

This module assembles the three steps of paper Alg. 2 —

1. **LID** (Step 1): localized infection/immunization on the current
   local range ``beta`` (:mod:`repro.dynamics.lid`);
2. **ROI** (Step 2): the double-deck hyperball estimated from the
   converged local dense subgraph (:mod:`repro.core.roi`);
3. **CIVS** (Step 3): LSH retrieval of candidate infective vertices
   inside the ROI (:mod:`repro.core.civs`) which extend ``beta`` for the
   next round —

into a lockstep-executable seed run (:class:`_SeedRun`), exposed through
:meth:`ALIDEngine.detect_from_seed` (one seed) and
:meth:`ALIDEngine.detect_cohort` (a block of seeds driven as a cohort
against batched LSH retrievals), and wraps the peeling driver of §4.4
(detect, peel, reiterate until everything is peeled; keep clusters whose
density clears the threshold) into the user-facing :class:`ALID`
estimator.

The peeling driver runs **batched seed rounds** by default: each round
pulls a rank-ordered block of surviving seeds from
:class:`SeedSchedule`, kills noise-isolated seeds with a vectorized
pre-filter (one fused-CSR bucket-population pass — no LID iteration is
ever spent on a seed that provably peels as a zero-work singleton), and
drives the surviving seeds of *distinct LSH collision components* as one
cohort.  Because a seeded Alg. 2 run can only reach items inside its
seed's collision component, cohort members peel independently and the
round's detections are identical — same clusters, same order, same
``entries_computed`` — to the paper-literal sequential peel
(``ALIDConfig(peel_driver="sequential")``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.affinity.kernel import LaplacianKernel, suggest_scaling_factor
from repro.affinity.oracle import AffinityOracle
from repro.core.civs import civs_retrieve
from repro.core.config import ALIDConfig
from repro.core.infectivity import infective_mask, item_payoffs
from repro.core.results import Cluster, DetectionResult
from repro.core.roi import estimate_roi, roi_radius
from repro.dynamics.lid import LIDState, lid_dynamics
from repro.exceptions import EmptyDatasetError
from repro.lsh.index import LSHIndex
from repro.obs import phases
from repro.utils.timing import timed
from repro.utils.validation import check_data_matrix

__all__ = ["ALID", "ALIDEngine", "SeedSchedule"]


@dataclass
class _SingleDetection:
    """Internal record of one Alg. 2 run."""

    members: np.ndarray
    weights: np.ndarray
    density: float
    outer_iterations: int
    globally_verified: bool


class _SeedRun:
    """One Alg. 2 run, sliced so a cohort can drive many in lockstep.

    The sequential loop of Alg. 2 alternates Step 1+2 (LID + ROI, pure
    per-seed state) with Step 3 (CIVS, whose LSH retrieval batches
    across seeds).  :meth:`step_local` runs Steps 1-2 and returns the
    CIVS query support; :meth:`absorb` consumes the (possibly batched)
    retrieval, applies the stop rules of Theorem 1, and reports whether
    the run is finished.  Driving a single run to completion through
    these two methods reproduces the historical ``detect_from_seed``
    loop exactly — the cohort driver is equivalence-by-construction.
    """

    __slots__ = (
        "engine",
        "seed",
        "state",
        "immune",
        "last_density",
        "c",
        "outer",
        "globally_verified",
        "trace",
        "hard_cap",
        "detection",
        "_center",
        "_radius",
        "_roi_complete",
        "_density",
        "_query_support",
    )

    def __init__(
        self, engine: "ALIDEngine", seed_index: int, trace: list | None = None
    ):
        cfg = engine.config
        self.engine = engine
        self.seed = int(seed_index)
        self.state = LIDState.from_seed(engine.oracle, self.seed)
        self.trace = trace
        self.hard_cap = (
            cfg.max_outer_iterations * 2
            if cfg.verify_global
            else cfg.max_outer_iterations
        )
        # Immunity cache: candidates CIVS retrieved that turned out to be
        # immune against the *current* x_hat.  Immunity only depends on
        # x_hat, so the cache stays valid while the dynamics do not move
        # and saves re-testing the same fringe on every ROI growth round.
        self.immune: set[int] = set()
        self.last_density = -1.0
        self.c = 0
        self.outer = 0
        self.globally_verified = False
        self.detection: _SingleDetection | None = None

    def step_local(self) -> np.ndarray:
        """Run Steps 1-2 of one outer iteration; return the CIVS support.

        Advances the iteration counter, runs the LID dynamics to local
        immunity, restricts to the support, and estimates the ROI
        (Eq. 15/16).  The returned index array is the support the CIVS
        retrieval must query from (Fig. 4(b)); the exact-filter
        geometry is kept on the run for :meth:`absorb`.
        """
        engine = self.engine
        cfg = engine.config
        state = self.state
        self.c += 1
        self.outer = self.c
        # --- Step 1: LID on the current local range -----------------
        lid_dynamics(
            state,
            max_iter=cfg.max_lid_iterations,
            tol=cfg.tol,
            kernel=cfg.lid_kernel,
        )
        state.restrict_to_support()
        density = state.density()
        if abs(density - self.last_density) > cfg.tol:
            self.immune.clear()
        self.last_density = density
        self._density = density
        alpha = state.beta
        # --- Step 2: estimate the ROI ------------------------------
        if density > 0.0:
            ball = estimate_roi(
                engine.data[alpha], state.x, density, engine.kernel
            )
            self._center = ball.center
            self._radius = roi_radius(
                ball,
                self.c,
                offset=cfg.roi_growth_offset,
                rate=cfg.roi_growth_rate,
            )
            # Prop. 1 only guarantees completeness at the *outer*
            # ball; with an intermediate radius, an empty or immune
            # retrieval does not prove global immunity yet.
            self._roi_complete = self._radius >= ball.r_out * (1.0 - 1e-9)
        else:
            # Singleton subgraph: Eq. 15 is undefined (pi = 0); use
            # the fallback radius around the seed item.  No outer
            # ball exists, so an empty retrieval ends the search.
            self._center = engine.data[self.seed]
            self._radius = engine._initial_radius(self.seed)
            self._roi_complete = True
        # Ablation hook (paper Fig. 4): with civs_single_query the
        # index is queried from the heaviest support item only, i.e.
        # one locality-sensitive region instead of one per support
        # item — the failure mode CIVS was designed to avoid.
        if cfg.extras.get("civs_single_query") and alpha.size > 1:
            heaviest = alpha[int(np.argmax(state.x))]
            query_support = np.asarray([heaviest], dtype=np.intp)
        else:
            query_support = alpha
        self._query_support = query_support
        return query_support

    def absorb(self, candidates: np.ndarray | None = None) -> bool:
        """Run Step 3 (CIVS) and the stop rules; return True when done.

        Parameters
        ----------
        candidates:
            Precomputed LSH collision union for the support returned by
            the matching :meth:`step_local` call (one slice of a
            grouped cohort retrieval), or None to query the index here.
        """
        engine = self.engine
        cfg = engine.config
        state = self.state
        # --- Step 3: CIVS ------------------------------------------
        exclude = (
            np.fromiter(self.immune, dtype=np.intp, count=len(self.immune))
            if self.immune
            else None
        )
        retrieval = civs_retrieve(
            engine.index,
            engine.oracle,
            support=self._query_support,
            center=self._center,
            radius=self._radius,
            delta=cfg.delta,
            exclude=exclude,
            candidates=candidates,
        )
        psi = retrieval.psi
        nothing_infective = psi.size == 0
        if psi.size > 0:
            prev_size = state.size
            state.extend(psi)
            new_pay = state.g[prev_size:] - self._density
            added = state.beta[prev_size:]
            self.immune.update(
                int(j) for j, pay in zip(added, new_pay) if pay <= cfg.tol
            )
            if new_pay.size > 0 and float(new_pay.max()) <= cfg.tol:
                # Every retrieved candidate is already immune; drop
                # them again (they carry zero weight).
                state.restrict_to_support()
                nothing_infective = True
        if self.trace is not None:
            self.trace.append(
                {
                    "c": self.c,
                    "support_size": int(
                        state.support_positions(cfg.support_tol).size
                    ),
                    "beta_size": int(state.size),
                    "density": float(self._density),
                    "radius": float(self._radius),
                    "retrieved": int(psi.size),
                }
            )
        # Stop when x_hat is immune against everything the ROI can
        # ever supply (Theorem 1 via Prop. 1's outer-ball guarantee),
        # or when the paper's iteration budget C runs out.
        stop = (nothing_infective and self._roi_complete) or (
            self.c >= cfg.max_outer_iterations
        )
        if stop:
            if cfg.verify_global and self.c < self.hard_cap:
                # Exact full-range scan (test oracle): resume the
                # dynamics if any infective vertex remains anywhere.
                if engine._verify_and_extend(state, self._density):
                    return self._finish_if_capped()
                self.globally_verified = True
            self._finish()
            return True
        # Otherwise iterate: the logistic schedule (Eq. 16) grows the
        # radius toward the outer ball on the next round.
        return self._finish_if_capped()

    def _finish_if_capped(self) -> bool:
        """Finish when the hard iteration cap is exhausted."""
        if self.c >= self.hard_cap:
            self._finish()
            return True
        return False

    def _finish(self) -> None:
        """Extract the final detection and release the cached columns."""
        cfg = self.engine.config
        state = self.state
        members = state.support_global(cfg.support_tol)
        positions = state.support_positions(cfg.support_tol)
        weights = state.x[positions].copy()
        density = state.density()
        state.release()
        self.detection = _SingleDetection(
            members=members,
            weights=weights,
            density=density,
            outer_iterations=self.outer,
            globally_verified=self.globally_verified,
        )


class ALIDEngine:
    """Shared machinery for one dataset: kernel, oracle, LSH index.

    Both the peeling drivers (:class:`ALID`) and the PALID mappers run
    :meth:`detect_from_seed` / :meth:`detect_cohort` against one engine,
    mirroring the paper's server-stored hash tables and data items
    (§4.6).

    Parameters
    ----------
    data:
        Data matrix ``(n, d)``; rows are items (the paper's ``V``).
    config:
        Detection configuration; None uses the paper defaults.
    budget_entries:
        Optional simulated-memory cap forwarded to the
        :class:`~repro.affinity.oracle.AffinityOracle` (emulates the
        paper's 12 GB RAM limit in Fig. 9).
    """

    def __init__(
        self,
        data: np.ndarray,
        config: ALIDConfig | None = None,
        *,
        budget_entries: int | None = None,
    ):
        self.config = config or ALIDConfig()
        data = check_data_matrix(data)
        k = self.config.kernel_k
        if k is None:
            k = suggest_scaling_factor(
                data,
                p=self.config.kernel_p,
                target_affinity=self.config.kernel_target_affinity,
                seed=self.config.seed,
            )
        self.kernel = LaplacianKernel(k=k, p=self.config.kernel_p)
        self.oracle = AffinityOracle(data, self.kernel,
                                     budget_entries=budget_entries)
        lsh_r = self.config.lsh_r
        if lsh_r is None:
            # Segment length ~10x the intra-cluster distance scale: with
            # 40 concatenated projections, pairs at the intra-cluster
            # scale then collide in a given table with probability ~4%,
            # i.e. ~85% recall over 50 tables, while background-noise
            # pairs (many multiples of the scale away) almost never do.
            lsh_r = self.config.lsh_r_scale * self.kernel.distance_from_affinity(
                self.config.kernel_target_affinity
            )
        self.lsh_r = float(lsh_r)
        self.index = LSHIndex(
            data,
            r=self.lsh_r,
            n_projections=self.config.lsh_projections,
            n_tables=self.config.lsh_tables,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of data items."""
        return self.oracle.n

    @property
    def data(self) -> np.ndarray:
        """The data matrix (rows are items)."""
        return self.oracle.data

    # ------------------------------------------------------------------
    def _initial_radius(self, seed_index: int) -> float:
        """ROI radius for iterations where pi(x)=0 (paper: R = 0.4 at c=1).

        ``initial_radius='auto'`` uses the median distance from the seed to
        its LSH-colliding neighbours, which adapts to the data scale.
        """
        cfg = self.config
        if cfg.initial_radius != "auto":
            return float(cfg.initial_radius)
        neighbors = self.index.query_item(seed_index)
        if neighbors.size == 0:
            # No collisions: fall back to the kernel's half-affinity scale.
            return self.kernel.distance_from_affinity(0.5)
        dists = self.oracle.distances_to_point(
            self.data[seed_index], rows=neighbors
        )
        return float(np.median(dists))

    def detect_from_seed(
        self, seed_index: int, *, trace: list | None = None
    ) -> _SingleDetection:
        """Run paper Alg. 2 from one initial vertex.

        Respects the LSH index's active mask, so peeled items are
        invisible.  Returns the final local dense subgraph; the caller
        decides whether it is dominant (density threshold) and whether to
        peel it.

        Parameters
        ----------
        seed_index:
            Global index of the initial vertex (Alg. 2 line 1:
            ``beta = {i}``, ``x = s_i``).
        trace:
            Pass a list to receive one record per outer iteration
            (support size, local-range size, density, ROI radius) — the
            raw series the Appendix B convergence analysis compares
            against Proposition 2's growth model
            (:mod:`repro.analysis.convergence`).

        Returns
        -------
        _SingleDetection
            Final support, weights, density, and convergence flags.
        """
        run = _SeedRun(self, seed_index, trace=trace)
        while True:
            run.step_local()
            if run.absorb():
                break
        return run.detection

    def detect_cohort(
        self,
        seeds: np.ndarray | list[int],
        *,
        traces: list[list] | None = None,
    ) -> list[_SingleDetection]:
        """Run paper Alg. 2 from several seeds, driven in lockstep.

        Every outer iteration advances all still-running seeds through
        Steps 1-2 (per-seed LID + ROI), then serves **all** their CIVS
        retrievals with one grouped LSH gather
        (:meth:`~repro.lsh.index.LSHIndex.query_items_grouped`) before
        Step 3 absorbs the per-seed slices.  Each seed's trajectory —
        and therefore its detection *and* its oracle work accounting —
        is identical to a standalone :meth:`detect_from_seed` call over
        the same active mask; only the uncharged LSH traffic is fused.

        The peeling driver additionally guarantees cohort seeds live in
        distinct LSH collision components so their detections commute
        with peeling; PALID's mappers, which never peel between seeds,
        may pass arbitrary seed blocks.

        Parameters
        ----------
        seeds:
            Global indices of the initial vertices (one lane each).
        traces:
            Optional per-seed trace lists, aligned with *seeds*.

        Returns
        -------
        list of _SingleDetection
            One detection per seed, in input order.
        """
        runs = [
            _SeedRun(
                self,
                int(seed),
                trace=traces[i] if traces is not None else None,
            )
            for i, seed in enumerate(seeds)
        ]
        live = list(runs)
        while live:
            supports = [run.step_local() for run in live]
            candidate_lists = self.index.query_items_grouped(supports)
            live = [
                run
                for run, candidates in zip(live, candidate_lists)
                if not run.absorb(candidates)
            ]
        return [run.detection for run in runs]

    def _verify_and_extend(self, state: LIDState, density: float) -> bool:
        """Exact full-range infectivity scan (``verify_global=True`` only).

        Computes ``pi(s_j - x, x)`` for every active vertex outside beta
        and extends the local range with the infective ones (up to delta).
        Returns True when something was added, i.e. the dynamics must
        continue.  This is the test-oracle for Theorem 1; benchmarks never
        enable it.
        """
        cfg = self.config
        active = self.index.active_mask
        in_beta = np.zeros(self.n, dtype=bool)
        in_beta[state.beta] = True
        outside = np.flatnonzero(active & ~in_beta)
        if outside.size == 0:
            return False
        alpha_pos = state.support_positions()
        alpha = state.beta[alpha_pos]
        if alpha.size == 0:
            return False
        pay = item_payoffs(
            self.oracle, outside, alpha, state.x[alpha_pos], density
        )
        infective = outside[infective_mask(pay, cfg.tol)]
        if infective.size == 0:
            return False
        if infective.size > cfg.delta:
            order = np.argsort(pay[pay > cfg.tol])[::-1][: cfg.delta]
            infective = infective[order]
        state.extend(infective)
        return True


class SeedSchedule:
    """Order in which the peeling driver picks initial vertices.

    Items in large LSH buckets are likely members of dominant clusters
    (the observation PALID's sampling is built on, §4.6), so we visit
    them first; remaining items follow in index order.
    """

    def __init__(self, index: LSHIndex):
        # Score = ACTIVE size of the item's table-0 bucket (< 2 active
        # collisions scores zero): one vectorised lookup over the fused
        # CSR.  Active counts matter when the schedule is built over a
        # partially peeled index (streaming re-discovery).
        sizes = index.item_bucket_sizes(table=0, active_only=True)
        score = np.where(sizes >= 2, sizes, 0).astype(np.int64)
        # Sort by descending bucket size, stable so ties keep index order.
        self._order = np.argsort(-score, kind="stable").astype(np.intp)
        self._cursor = 0
        self._index = index

    def next_active(self) -> int | None:
        """Next unpeeled seed, or None when everything is peeled."""
        active = self._index.active_mask
        while self._cursor < self._order.size:
            candidate = int(self._order[self._cursor])
            if active[candidate]:
                return candidate
            self._cursor += 1
        return None

    def next_block(self, limit: int) -> np.ndarray:
        """Up to *limit* distinct surviving seeds, in rank order.

        The batched peeling driver's round intake: one vectorized scan
        over the remaining schedule (the cursor permanently skips the
        peeled prefix, so repeated rounds do not rescan dead seeds).
        Seeds are *peeked*, not consumed — a seed stays eligible until
        something deactivates it, exactly like :meth:`next_active`.

        Parameters
        ----------
        limit:
            Maximum number of seeds to return (>= 1).

        Returns
        -------
        numpy.ndarray
            Active seed indices in schedule order; empty when
            everything is peeled.
        """
        active = self._index.active_mask
        remaining = self._order[self._cursor :]
        alive = np.flatnonzero(active[remaining])
        if alive.size == 0:
            self._cursor = self._order.size
            return np.empty(0, dtype=np.intp)
        self._cursor += int(alive[0])
        return remaining[alive[: max(1, int(limit))]]


class ALID:
    """Dominant-cluster detector with the paper's peeling protocol (§4.4).

    Detection peels one dominant cluster after another until every item
    is gone; the default driver batches the peel into seed rounds (see
    :class:`~repro.core.config.ALIDConfig.peel_driver`) with results
    equivalent to the paper-literal sequential loop.

    Parameters
    ----------
    config:
        Detection configuration; None uses the paper defaults.

    Attributes
    ----------
    engine_:
        The :class:`ALIDEngine` built by the last :meth:`fit` call
        (kernel, oracle, LSH index), or None before fitting.

    Example
    -------
    >>> from repro import ALID, make_synthetic_mixture
    >>> dataset = make_synthetic_mixture(n=400, regime="bounded", seed=0)
    >>> result = ALID().fit(dataset.data)
    >>> result.n_clusters > 0
    True
    """

    #: Registry name (arena `Detector` protocol).
    name = "ALID"
    def __init__(self, config: ALIDConfig | None = None):
        self.config = config or ALIDConfig()
        self.engine_: ALIDEngine | None = None

    def fit(
        self,
        data: np.ndarray,
        *,
        budget_entries: int | None = None,
        max_clusters: int | None = None,
    ) -> DetectionResult:
        """Detect all dominant clusters in *data*.

        Parameters
        ----------
        data:
            Data matrix ``(n, d)``.
        budget_entries:
            Optional simulated-memory cap (see
            :class:`~repro.affinity.oracle.AffinityOracle`).  A budget
            caps the detection cohort at one seed per round so the
            eviction behaviour matches the sequential peel; the noise
            pre-filter (which stores nothing) stays on.
        max_clusters:
            Optional cap on peeling rounds (diagnostics only; the paper
            peels until every item is gone).  A capped run uses the
            sequential driver so no cohort detection is ever computed
            past the cap and the work accounting stays cap-exact.

        Returns
        -------
        DetectionResult
            Dominant clusters (density >= ``config.density_threshold`` and
            size >= ``config.min_cluster_size``), plus every peeled
            cluster in ``all_clusters``.  ``metadata`` carries the
            per-round driver statistics (``seed_rounds``,
            ``noise_prefiltered``, ``lid_runs``, ``noise_lid_runs``,
            ``max_cohort``).
        """
        data = check_data_matrix(data)
        if data.shape[0] == 0:
            raise EmptyDatasetError("cannot fit ALID on an empty dataset")
        stats = {
            "seed_rounds": 0,
            "noise_prefiltered": 0,
            "lid_runs": 0,
            "noise_lid_runs": 0,
            "max_cohort": 0,
        }
        with timed() as clock:
            engine = ALIDEngine(
                data, self.config, budget_entries=budget_entries
            )
            self.engine_ = engine
            schedule = SeedSchedule(engine.index)
            all_clusters: list[Cluster] = []
            cap = max_clusters if max_clusters is not None else data.shape[0]
            # verify_global's exact full-range scan can resurrect items
            # with no LSH collisions, which voids both the pre-filter
            # proof and the component-independence invariant; a
            # max_clusters cap can truncate a round mid-plan, wasting
            # cohort detections the sequential driver would never have
            # started.  Both (diagnostics-only) modes fall back to the
            # paper-literal loop so the work accounting stays exact.
            if (
                self.config.peel_driver == "batched"
                and not self.config.verify_global
                and max_clusters is None
            ):
                cohort_cap = (
                    1
                    if budget_entries is not None
                    else self.config.seed_block_size
                )
                self._peel_batched(
                    engine, schedule, all_clusters, cap, cohort_cap, stats
                )
            else:
                self._peel_sequential(
                    engine, schedule, all_clusters, cap, stats
                )
        dominant = [
            c
            for c in all_clusters
            if c.density >= self.config.density_threshold
            and c.size >= self.config.min_cluster_size
        ]
        return DetectionResult(
            clusters=dominant,
            all_clusters=all_clusters,
            n_items=data.shape[0],
            runtime_seconds=clock[0],
            counters=engine.oracle.counters.snapshot(),
            method="ALID",
            metadata={
                "kernel_k": engine.kernel.k,
                "lsh_r": engine.lsh_r,
                "peeling_rounds": len(all_clusters),
                **stats,
            },
        )

    # ------------------------------------------------------------------
    # peeling drivers
    # ------------------------------------------------------------------
    def _emit(
        self,
        engine: ALIDEngine,
        all_clusters: list[Cluster],
        seed: int,
        members: np.ndarray,
        weights: np.ndarray,
        density: float,
    ) -> None:
        """Record one peeled cluster and deactivate its members."""
        cluster = Cluster(
            members=members,
            weights=weights,
            density=density,
            label=len(all_clusters),
            seed=seed,
        )
        all_clusters.append(cluster)
        engine.index.deactivate(members)

    def _is_noise(self, members: np.ndarray, density: float) -> bool:
        """True when a detection falls below the dominance thresholds."""
        return (
            density < self.config.density_threshold
            or members.size < self.config.min_cluster_size
        )

    def _emit_detection(
        self,
        engine: ALIDEngine,
        all_clusters: list[Cluster],
        seed: int,
        detection: _SingleDetection,
        stats: dict,
    ) -> None:
        """Emit one Alg. 2 detection, with the degenerate fallback.

        Shared by both drivers so the batch-vs-sequential equivalence
        contract cannot silently desynchronize: an empty detection
        peels the seed alone (progress guarantee), and sub-dominant
        results are counted as noise LID runs.
        """
        members = detection.members
        if members.size == 0:
            # Degenerate: peel the seed alone so progress is made.
            members = np.asarray([seed], dtype=np.intp)
            weights = np.asarray([1.0])
            density = 0.0
        else:
            weights = detection.weights
            density = detection.density
        if self._is_noise(members, density):
            stats["noise_lid_runs"] += 1
        self._emit(engine, all_clusters, seed, members, weights, density)

    def _peel_sequential(
        self,
        engine: ALIDEngine,
        schedule: SeedSchedule,
        all_clusters: list[Cluster],
        cap: int,
        stats: dict,
    ) -> None:
        """The paper-literal §4.4 loop: one seed, one peel, repeat."""
        while len(all_clusters) < cap:
            seed = schedule.next_active()
            if seed is None:
                break
            stats["seed_rounds"] += 1
            stats["lid_runs"] += 1
            stats["max_cohort"] = max(stats["max_cohort"], 1)
            prof = phases.active()
            t0 = time.perf_counter() if prof is not None else 0.0
            before = engine.oracle.counters.entries_computed
            detection = engine.detect_from_seed(seed)
            self._emit_detection(engine, all_clusters, seed, detection, stats)
            if prof is not None:
                prof.record(
                    "seed_round",
                    wall=time.perf_counter() - t0,
                    entries=(
                        engine.oracle.counters.entries_computed - before
                    ),
                    seeds=1,
                )

    def _peel_batched(
        self,
        engine: ALIDEngine,
        schedule: SeedSchedule,
        all_clusters: list[Cluster],
        cap: int,
        cohort_cap: int,
        stats: dict,
    ) -> None:
        """Batched seed rounds with the vectorized noise pre-filter.

        Per round: (1) pull a rank-ordered block of surviving seeds,
        (2) classify them against one fused-CSR bucket-population pass —
        noise-isolated seeds (no active LSH collision) peel as
        zero-work singletons without ever touching LID, (3) run the
        longest prefix of colliding seeds whose collision components
        are pairwise distinct as one detection cohort.  The prefix rule
        stops at the first seed whose component was already claimed
        this round (its detection would depend on an earlier peel), so
        emissions follow schedule order exactly and every detection is
        computed against the same active state the sequential driver
        would have shown it.
        """
        index = engine.index
        while len(all_clusters) < cap:
            block = schedule.next_block(self.config.seed_block_size)
            if block.size == 0:
                break
            stats["seed_rounds"] += 1
            prof = phases.active()
            t0 = time.perf_counter() if prof is not None else 0.0
            entries_before = engine.oracle.counters.entries_computed
            colliding = index.colliding_mask()
            components: np.ndarray | None = None
            claimed: set[int] = set()
            cohort: list[int] = []
            plan: list[tuple[int, bool]] = []  # (seed, prefiltered)
            budget = cap - len(all_clusters)
            for seed in block:
                if len(plan) >= budget:
                    break
                seed = int(seed)
                if not colliding[seed]:
                    plan.append((seed, True))
                    continue
                if components is None:
                    # Lazy: all-noise tail rounds never pay for this.
                    components = index.collision_components()
                component = int(components[seed])
                if component in claimed or len(cohort) >= cohort_cap:
                    break
                claimed.add(component)
                cohort.append(seed)
                plan.append((seed, False))
            detections = dict(
                zip(cohort, engine.detect_cohort(cohort))
            ) if cohort else {}
            stats["lid_runs"] += len(cohort)
            stats["max_cohort"] = max(stats["max_cohort"], len(cohort))
            for seed, prefiltered in plan:
                if len(all_clusters) >= cap:
                    break
                if prefiltered:
                    # Noise-isolated: Alg. 2 from here provably returns
                    # the bare seed at density 0 without any kernel
                    # work, so emit that result directly.
                    stats["noise_prefiltered"] += 1
                    self._emit(
                        engine,
                        all_clusters,
                        seed,
                        np.asarray([seed], dtype=np.intp),
                        np.asarray([1.0]),
                        0.0,
                    )
                    continue
                detection = detections[seed]
                while True:
                    self._emit_detection(
                        engine, all_clusters, seed, detection, stats
                    )
                    # A detection's support can drift away from its
                    # seed; the sequential driver then re-picks the
                    # same (still-active) seed before advancing.
                    # Re-running it here keeps the emission order
                    # paper-exact — the re-run stays inside the
                    # component this seed claimed, so no other planned
                    # seed is affected.
                    if (
                        not engine.index.active_mask[seed]
                        or len(all_clusters) >= cap
                    ):
                        break
                    stats["lid_runs"] += 1
                    detection = engine.detect_from_seed(seed)
            if prof is not None:
                prof.record(
                    "seed_round",
                    wall=time.perf_counter() - t0,
                    entries=(
                        engine.oracle.counters.entries_computed
                        - entries_before
                    ),
                    seeds=len(plan),
                )
