"""ALID: Approximate Localized Infection Immunization Dynamics.

This module assembles the three steps of paper Alg. 2 —

1. **LID** (Step 1): localized infection/immunization on the current
   local range ``beta`` (:mod:`repro.dynamics.lid`);
2. **ROI** (Step 2): the double-deck hyperball estimated from the
   converged local dense subgraph (:mod:`repro.core.roi`);
3. **CIVS** (Step 3): LSH retrieval of candidate infective vertices
   inside the ROI (:mod:`repro.core.civs`) which extend ``beta`` for the
   next round —

into :class:`ALIDEngine.detect_from_seed`, and wraps the peeling driver of
§4.4 (detect, peel, reiterate until everything is peeled; keep clusters
whose density clears the threshold) into the user-facing :class:`ALID`
estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.affinity.kernel import LaplacianKernel, suggest_scaling_factor
from repro.affinity.oracle import AffinityOracle
from repro.core.civs import civs_retrieve
from repro.core.config import ALIDConfig
from repro.core.results import Cluster, DetectionResult
from repro.core.roi import estimate_roi, roi_radius
from repro.dynamics.lid import LIDState, lid_dynamics
from repro.exceptions import EmptyDatasetError
from repro.lsh.index import LSHIndex
from repro.utils.timing import timed
from repro.utils.validation import check_data_matrix

__all__ = ["ALID", "ALIDEngine", "SeedSchedule"]


@dataclass
class _SingleDetection:
    """Internal record of one Alg. 2 run."""

    members: np.ndarray
    weights: np.ndarray
    density: float
    outer_iterations: int
    globally_verified: bool


class ALIDEngine:
    """Shared machinery for one dataset: kernel, oracle, LSH index.

    Both the sequential peeling driver (:class:`ALID`) and the PALID
    mappers run :meth:`detect_from_seed` against one engine, mirroring the
    paper's server-stored hash tables and data items (§4.6).
    """

    def __init__(
        self,
        data: np.ndarray,
        config: ALIDConfig | None = None,
        *,
        budget_entries: int | None = None,
    ):
        self.config = config or ALIDConfig()
        data = check_data_matrix(data)
        k = self.config.kernel_k
        if k is None:
            k = suggest_scaling_factor(
                data,
                p=self.config.kernel_p,
                target_affinity=self.config.kernel_target_affinity,
                seed=self.config.seed,
            )
        self.kernel = LaplacianKernel(k=k, p=self.config.kernel_p)
        self.oracle = AffinityOracle(data, self.kernel,
                                     budget_entries=budget_entries)
        lsh_r = self.config.lsh_r
        if lsh_r is None:
            # Segment length ~10x the intra-cluster distance scale: with
            # 40 concatenated projections, pairs at the intra-cluster
            # scale then collide in a given table with probability ~4%,
            # i.e. ~85% recall over 50 tables, while background-noise
            # pairs (many multiples of the scale away) almost never do.
            lsh_r = self.config.lsh_r_scale * self.kernel.distance_from_affinity(
                self.config.kernel_target_affinity
            )
        self.lsh_r = float(lsh_r)
        self.index = LSHIndex(
            data,
            r=self.lsh_r,
            n_projections=self.config.lsh_projections,
            n_tables=self.config.lsh_tables,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of data items."""
        return self.oracle.n

    @property
    def data(self) -> np.ndarray:
        """The data matrix (rows are items)."""
        return self.oracle.data

    # ------------------------------------------------------------------
    def _initial_radius(self, seed_index: int) -> float:
        """ROI radius for iterations where pi(x)=0 (paper: R = 0.4 at c=1).

        ``initial_radius='auto'`` uses the median distance from the seed to
        its LSH-colliding neighbours, which adapts to the data scale.
        """
        cfg = self.config
        if cfg.initial_radius != "auto":
            return float(cfg.initial_radius)
        neighbors = self.index.query_item(seed_index)
        if neighbors.size == 0:
            # No collisions: fall back to the kernel's half-affinity scale.
            return self.kernel.distance_from_affinity(0.5)
        dists = self.oracle.distances_to_point(
            self.data[seed_index], rows=neighbors
        )
        return float(np.median(dists))

    def detect_from_seed(
        self, seed_index: int, *, trace: list | None = None
    ) -> _SingleDetection:
        """Run paper Alg. 2 from one initial vertex.

        Respects the LSH index's active mask, so peeled items are
        invisible.  Returns the final local dense subgraph; the caller
        decides whether it is dominant (density threshold) and whether to
        peel it.

        Pass a list as *trace* to receive one record per outer iteration
        (support size, local-range size, density, ROI radius) — the raw
        series the Appendix B convergence analysis compares against
        Proposition 2's growth model (:mod:`repro.analysis.convergence`).
        """
        cfg = self.config
        state = LIDState.from_seed(self.oracle, seed_index)
        globally_verified = False
        outer = 0
        hard_cap = cfg.max_outer_iterations * 2 if cfg.verify_global else (
            cfg.max_outer_iterations
        )
        c = 0
        # Immunity cache: candidates CIVS retrieved that turned out to be
        # immune against the *current* x_hat.  Immunity only depends on
        # x_hat, so the cache stays valid while the dynamics do not move
        # and saves re-testing the same fringe on every ROI growth round.
        immune: set[int] = set()
        last_density = -1.0
        while c < hard_cap:
            c += 1
            outer = c
            # --- Step 1: LID on the current local range -----------------
            lid_dynamics(
                state, max_iter=cfg.max_lid_iterations, tol=cfg.tol
            )
            state.restrict_to_support()
            density = state.density()
            if abs(density - last_density) > cfg.tol:
                immune.clear()
            last_density = density
            alpha = state.beta
            # --- Step 2: estimate the ROI ------------------------------
            if density > 0.0:
                ball = estimate_roi(
                    self.data[alpha], state.x, density, self.kernel
                )
                center = ball.center
                radius = roi_radius(
                    ball,
                    c,
                    offset=cfg.roi_growth_offset,
                    rate=cfg.roi_growth_rate,
                )
                # Prop. 1 only guarantees completeness at the *outer*
                # ball; with an intermediate radius, an empty or immune
                # retrieval does not prove global immunity yet.
                roi_complete = radius >= ball.r_out * (1.0 - 1e-9)
            else:
                # Singleton subgraph: Eq. 15 is undefined (pi = 0); use
                # the fallback radius around the seed item.  No outer
                # ball exists, so an empty retrieval ends the search.
                center = self.data[seed_index]
                radius = self._initial_radius(seed_index)
                roi_complete = True
            # --- Step 3: CIVS ------------------------------------------
            # Ablation hook (paper Fig. 4): with civs_single_query the
            # index is queried from the heaviest support item only, i.e.
            # one locality-sensitive region instead of one per support
            # item — the failure mode CIVS was designed to avoid.
            if cfg.extras.get("civs_single_query") and alpha.size > 1:
                heaviest = alpha[int(np.argmax(state.x))]
                query_support = np.asarray([heaviest], dtype=np.intp)
            else:
                query_support = alpha
            exclude = (
                np.fromiter(immune, dtype=np.intp, count=len(immune))
                if immune
                else None
            )
            retrieval = civs_retrieve(
                self.index,
                self.oracle,
                support=query_support,
                center=center,
                radius=radius,
                delta=cfg.delta,
                exclude=exclude,
            )
            psi = retrieval.psi
            nothing_infective = psi.size == 0
            if psi.size > 0:
                prev_size = state.size
                state.extend(psi)
                new_pay = state.g[prev_size:] - density
                added = state.beta[prev_size:]
                immune.update(
                    int(j) for j, pay in zip(added, new_pay)
                    if pay <= cfg.tol
                )
                if new_pay.size > 0 and float(new_pay.max()) <= cfg.tol:
                    # Every retrieved candidate is already immune; drop
                    # them again (they carry zero weight).
                    state.restrict_to_support()
                    nothing_infective = True
            if trace is not None:
                trace.append(
                    {
                        "c": c,
                        "support_size": int(
                            state.support_positions(cfg.support_tol).size
                        ),
                        "beta_size": int(state.size),
                        "density": float(density),
                        "radius": float(radius),
                        "retrieved": int(psi.size),
                    }
                )
            # Stop when x_hat is immune against everything the ROI can
            # ever supply (Theorem 1 via Prop. 1's outer-ball guarantee),
            # or when the paper's iteration budget C runs out.
            stop = (nothing_infective and roi_complete) or (
                c >= cfg.max_outer_iterations
            )
            if stop:
                if cfg.verify_global and c < hard_cap:
                    # Exact full-range scan (test oracle): resume the
                    # dynamics if any infective vertex remains anywhere.
                    added = self._verify_and_extend(state, density)
                    if added:
                        continue
                    globally_verified = True
                break
            # Otherwise iterate: the logistic schedule (Eq. 16) grows the
            # radius toward the outer ball on the next round.
        members = state.support_global(cfg.support_tol)
        positions = state.support_positions(cfg.support_tol)
        weights = state.x[positions].copy()
        density = state.density()
        state.release()
        return _SingleDetection(
            members=members,
            weights=weights,
            density=density,
            outer_iterations=outer,
            globally_verified=globally_verified,
        )

    def _verify_and_extend(self, state: LIDState, density: float) -> bool:
        """Exact full-range infectivity scan (``verify_global=True`` only).

        Computes ``pi(s_j - x, x)`` for every active vertex outside beta
        and extends the local range with the infective ones (up to delta).
        Returns True when something was added, i.e. the dynamics must
        continue.  This is the test-oracle for Theorem 1; benchmarks never
        enable it.
        """
        cfg = self.config
        active = self.index.active_mask
        in_beta = np.zeros(self.n, dtype=bool)
        in_beta[state.beta] = True
        outside = np.flatnonzero(active & ~in_beta)
        if outside.size == 0:
            return False
        alpha_pos = state.support_positions()
        alpha = state.beta[alpha_pos]
        if alpha.size == 0:
            return False
        block = self.oracle.block(outside, alpha)
        pay = block @ state.x[alpha_pos] - density
        infective = outside[pay > cfg.tol]
        if infective.size == 0:
            return False
        if infective.size > cfg.delta:
            order = np.argsort(pay[pay > cfg.tol])[::-1][: cfg.delta]
            infective = infective[order]
        state.extend(infective)
        return True


class SeedSchedule:
    """Order in which the peeling driver picks initial vertices.

    Items in large LSH buckets are likely members of dominant clusters
    (the observation PALID's sampling is built on, §4.6), so we visit
    them first; remaining items follow in index order.
    """

    def __init__(self, index: LSHIndex):
        # Score = ACTIVE size of the item's table-0 bucket (< 2 active
        # collisions scores zero): one vectorised lookup over the fused
        # CSR.  Active counts matter when the schedule is built over a
        # partially peeled index (streaming re-discovery).
        sizes = index.item_bucket_sizes(table=0, active_only=True)
        score = np.where(sizes >= 2, sizes, 0).astype(np.int64)
        # Sort by descending bucket size, stable so ties keep index order.
        self._order = np.argsort(-score, kind="stable").astype(np.intp)
        self._cursor = 0
        self._index = index

    def next_active(self) -> int | None:
        """Next unpeeled seed, or None when everything is peeled."""
        active = self._index.active_mask
        while self._cursor < self._order.size:
            candidate = int(self._order[self._cursor])
            if active[candidate]:
                return candidate
            self._cursor += 1
        return None


class ALID:
    """Sequential ALID detector with the paper's peeling protocol (§4.4).

    Example
    -------
    >>> from repro import ALID, make_synthetic_mixture
    >>> dataset = make_synthetic_mixture(n=400, regime="bounded", seed=0)
    >>> result = ALID().fit(dataset.data)
    >>> result.n_clusters > 0
    True
    """

    def __init__(self, config: ALIDConfig | None = None):
        self.config = config or ALIDConfig()
        self.engine_: ALIDEngine | None = None

    def fit(
        self,
        data: np.ndarray,
        *,
        budget_entries: int | None = None,
        max_clusters: int | None = None,
    ) -> DetectionResult:
        """Detect all dominant clusters in *data*.

        Parameters
        ----------
        data:
            Data matrix ``(n, d)``.
        budget_entries:
            Optional simulated-memory cap (see
            :class:`~repro.affinity.oracle.AffinityOracle`).
        max_clusters:
            Optional cap on peeling rounds (diagnostics only; the paper
            peels until every item is gone).

        Returns
        -------
        DetectionResult
            Dominant clusters (density >= ``config.density_threshold`` and
            size >= ``config.min_cluster_size``), plus every peeled
            cluster in ``all_clusters``.
        """
        data = check_data_matrix(data)
        if data.shape[0] == 0:
            raise EmptyDatasetError("cannot fit ALID on an empty dataset")
        with timed() as clock:
            engine = ALIDEngine(
                data, self.config, budget_entries=budget_entries
            )
            self.engine_ = engine
            schedule = SeedSchedule(engine.index)
            all_clusters: list[Cluster] = []
            label = 0
            cap = max_clusters if max_clusters is not None else data.shape[0]
            while len(all_clusters) < cap:
                seed = schedule.next_active()
                if seed is None:
                    break
                detection = engine.detect_from_seed(seed)
                members = detection.members
                if members.size == 0:
                    # Degenerate: peel the seed alone so progress is made.
                    members = np.asarray([seed], dtype=np.intp)
                    weights = np.asarray([1.0])
                    density = 0.0
                else:
                    weights = detection.weights
                    density = detection.density
                cluster = Cluster(
                    members=members,
                    weights=weights,
                    density=density,
                    label=label,
                    seed=seed,
                )
                all_clusters.append(cluster)
                label += 1
                engine.index.deactivate(members)
        dominant = [
            c
            for c in all_clusters
            if c.density >= self.config.density_threshold
            and c.size >= self.config.min_cluster_size
        ]
        return DetectionResult(
            clusters=dominant,
            all_clusters=all_clusters,
            n_items=data.shape[0],
            runtime_seconds=clock[0],
            counters=engine.oracle.counters.snapshot(),
            method="ALID",
            metadata={
                "kernel_k": engine.kernel.k,
                "lsh_r": engine.lsh_r,
                "peeling_rounds": len(all_clusters),
            },
        )
