"""The paper's primary contribution: the ALID dominant-cluster detector.

* :mod:`~repro.core.config`  — all tunables with the paper's defaults;
* :mod:`~repro.core.roi`     — the double-deck hyperball ROI (Eq. 15/16);
* :mod:`~repro.core.civs`    — Candidate Infective Vertex Search (§4.3);
* :mod:`~repro.core.alid`    — Alg. 2 single-cluster iteration plus the
  peeling driver of §4.4;
* :mod:`~repro.core.results` — cluster / detection result types shared by
  every method in the repository.
"""

from repro.core.alid import ALID
from repro.core.civs import civs_retrieve
from repro.core.config import ALIDConfig
from repro.core.results import Cluster, DetectionResult
from repro.core.roi import DoubleDeckBall, estimate_roi, roi_radius

__all__ = [
    "ALID",
    "ALIDConfig",
    "Cluster",
    "DetectionResult",
    "DoubleDeckBall",
    "estimate_roi",
    "roi_radius",
    "civs_retrieve",
]
