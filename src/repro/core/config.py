"""Configuration for ALID / PALID with the paper's published defaults."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError

__all__ = ["ALIDConfig"]


@dataclass(frozen=True)
class ALIDConfig:
    """All tunables of ALID (paper §4 and §5).

    Attributes
    ----------
    delta:
        Maximum number of new vertices CIVS may retrieve per iteration
        (paper fixes ``delta = 800`` in all experiments).
    max_outer_iterations:
        The paper's ``C`` — cap on ALID iterations per cluster ("a small
        value of C = 10 is adequate").
    max_lid_iterations:
        The paper's ``T`` — cap on LID iterations per Step 1 call.
    tol:
        Immunity tolerance for the infection/immunization dynamics.
    density_threshold:
        Clusters with final density ``pi(x)`` at or above this value are
        reported as dominant (paper §4.4 uses 0.75).
    initial_radius:
        ROI radius for the first iteration ``c = 1``, when ``pi(x) = 0``
        makes Eq. 15 undefined.  The paper hard-codes R = 0.4, which
        assumes its normalised feature scales; the default ``"auto"``
        uses the median distance from the seed to its LSH-colliding
        neighbours instead, adapting to any data scale (DESIGN.md §6;
        pass 0.4 to reproduce the paper's literal choice).
    support_tol:
        Weights at or below this value count as outside the support.
    lsh_r / lsh_projections / lsh_tables:
        LSH parameters; the paper's Fig. 6 uses 40 projections and 50
        tables and sweeps ``r``.  ``lsh_r = None`` auto-picks
        ``lsh_r_scale`` times the intra-cluster distance scale (the
        distance whose affinity is 0.8), which gives 40-projection hash
        values a per-table collision probability of a few percent for
        intra-cluster pairs — high recall over 50 tables, near-zero for
        noise pairs.
    lsh_r_scale:
        Multiplier for the auto-picked segment length (ablation hook).
    kernel_k / kernel_p:
        Laplacian-kernel parameters of Eq. 1; ``kernel_k = None``
        auto-selects via
        :func:`repro.affinity.kernel.suggest_scaling_factor`.
    kernel_target_affinity:
        Calibration anchor: the affinity assigned to pairs at the
        intra-cluster distance scale.  Used both by the auto kernel
        selection and as the distance anchor for the auto LSH segment
        length.
    roi_growth_offset / roi_growth_rate:
        The logistic ROI schedule ``theta(c) = 1 / (1 + exp(offset -
        c / rate))`` (paper Eq. 16 uses offset 4 and rate 2).
    min_cluster_size:
        Dominant clusters smaller than this are reported as noise.
    peel_driver:
        Which §4.4 peeling driver :meth:`repro.core.alid.ALID.fit`
        uses.  ``"batched"`` (default) runs seed-block rounds with the
        vectorized noise pre-filter and cohort detection — detections
        are equivalent to the sequential peel (same clusters, in the
        same order, with identical work accounting) but the per-seed
        Python overhead is amortised.  ``"sequential"`` forces the
        paper-literal one-seed-at-a-time loop (reference / debugging).
    seed_block_size:
        Maximum number of surviving seeds pulled from the schedule per
        batched peeling round (upper bound on both the pre-filtered
        block and the detection cohort).
    lid_kernel:
        Which inner-loop backend :func:`repro.dynamics.lid.lid_dynamics`
        runs (see :mod:`repro.dynamics.lid_kernel`).  ``"fused"``
        (default) executes consecutive LID periods in one run-until-miss
        pass over the column cache's resident block; ``"reference"``
        forces the historical per-period loop (the equivalence oracle);
        ``"numba"`` compiles the per-period step when numba is
        installed, auto-falling back to ``"fused"`` otherwise.  All
        backends produce bit-identical iterates, detections, and work
        accounting.
    verify_global:
        If True, after ROI/CIVS convergence the detector performs an exact
        full scan for remaining infective vertices (only sensible for
        small n; used by correctness tests, not by benchmarks).
    seed:
        Seed for the LSH projections and any sampling.
    """

    delta: int = 800
    max_outer_iterations: int = 10
    max_lid_iterations: int = 1000
    tol: float = 1e-7
    density_threshold: float = 0.75
    initial_radius: float | str = "auto"
    support_tol: float = 0.0
    lsh_r: float | None = None
    lsh_r_scale: float = 10.0
    lsh_projections: int = 40
    lsh_tables: int = 50
    kernel_k: float | None = None
    kernel_p: float = 2.0
    kernel_target_affinity: float = 0.9
    roi_growth_offset: float = 4.0
    roi_growth_rate: float = 2.0
    min_cluster_size: int = 2
    peel_driver: str = "batched"
    seed_block_size: int = 256
    lid_kernel: str = "fused"
    verify_global: bool = False
    seed: int = 0
    extras: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValidationError(f"delta must be positive, got {self.delta}")
        if self.max_outer_iterations <= 0:
            raise ValidationError(
                f"max_outer_iterations must be positive, "
                f"got {self.max_outer_iterations}"
            )
        if self.max_lid_iterations <= 0:
            raise ValidationError(
                f"max_lid_iterations must be positive, got {self.max_lid_iterations}"
            )
        if self.tol < 0:
            raise ValidationError(f"tol must be >= 0, got {self.tol}")
        if not 0.0 <= self.density_threshold <= 1.0:
            raise ValidationError(
                f"density_threshold must be in [0, 1], got {self.density_threshold}"
            )
        if isinstance(self.initial_radius, str):
            if self.initial_radius != "auto":
                raise ValidationError(
                    f"initial_radius must be a positive float or 'auto', "
                    f"got {self.initial_radius!r}"
                )
        elif self.initial_radius <= 0:
            raise ValidationError(
                f"initial_radius must be positive, got {self.initial_radius}"
            )
        if self.min_cluster_size < 1:
            raise ValidationError(
                f"min_cluster_size must be >= 1, got {self.min_cluster_size}"
            )
        if self.peel_driver not in ("batched", "sequential"):
            raise ValidationError(
                f"peel_driver must be 'batched' or 'sequential', "
                f"got {self.peel_driver!r}"
            )
        if self.seed_block_size < 1:
            raise ValidationError(
                f"seed_block_size must be >= 1, got {self.seed_block_size}"
            )
        if self.lid_kernel not in ("reference", "fused", "numba"):
            raise ValidationError(
                f"lid_kernel must be 'reference', 'fused' or 'numba', "
                f"got {self.lid_kernel!r}"
            )
