"""Result types shared by every detection method in the repository.

All detectors — ALID, PALID and the seven baselines — return a
:class:`DetectionResult`, so the evaluation harness (AVG-F, accounting,
report rendering) treats them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.affinity.oracle import AffinityCounters
from repro.exceptions import ValidationError

__all__ = ["Cluster", "DetectionResult"]


@dataclass
class Cluster:
    """One detected cluster.

    Attributes
    ----------
    members:
        Global indices of the cluster's data items.
    weights:
        Probabilistic memberships aligned with *members* (uniform for
        partitioning baselines that have no notion of weights).
    density:
        The cluster's graph density ``pi(x)`` (internal coherence); the
        paper selects clusters with ``pi(x) >= 0.75`` as dominant.
    label:
        Unique cluster label within one detection run.
    seed:
        The initial vertex the cluster was grown from (-1 if not seeded).
    """

    members: np.ndarray
    weights: np.ndarray
    density: float
    label: int
    seed: int = -1

    def __post_init__(self) -> None:
        self.members = np.asarray(self.members, dtype=np.intp)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.members.shape != self.weights.shape:
            raise ValidationError(
                f"members and weights must align: "
                f"{self.members.shape} vs {self.weights.shape}"
            )

    @property
    def size(self) -> int:
        """Number of member items."""
        return int(self.members.size)

    def member_set(self) -> set[int]:
        """Members as a Python set (for evaluation convenience)."""
        return set(int(i) for i in self.members)


@dataclass
class DetectionResult:
    """Uniform output of every detection method.

    Attributes
    ----------
    clusters:
        The *dominant* clusters (density above the method's threshold when
        the method filters; all clusters for partitioning baselines).
    all_clusters:
        Every cluster found, including sub-threshold ones peeled as noise.
    n_items:
        Total number of data items the detector saw.
    runtime_seconds:
        Wall-clock detection time (including any affinity computation, as
        in the paper's measurement protocol).
    counters:
        Snapshot of the affinity-oracle counters at completion (work and
        simulated memory).
    method:
        Human-readable method name ("ALID", "IID", ...).
    metadata:
        Free-form extras (iteration counts, parallel speedup inputs, ...).
    """

    clusters: list[Cluster]
    all_clusters: list[Cluster]
    n_items: int
    runtime_seconds: float = 0.0
    counters: AffinityCounters | None = None
    method: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def n_clusters(self) -> int:
        """Number of dominant clusters."""
        return len(self.clusters)

    def labels(self) -> np.ndarray:
        """Per-item labels: cluster label, or -1 for unclustered noise.

        When clusters overlap (possible for PALID before reduction), the
        densest cluster wins — mirroring the paper's reducer rule.
        """
        labels = np.full(self.n_items, -1, dtype=np.int64)
        best_density = np.full(self.n_items, -np.inf)
        for cluster in self.clusters:
            better = cluster.density > best_density[cluster.members]
            chosen = cluster.members[better]
            labels[chosen] = cluster.label
            best_density[chosen] = cluster.density
        return labels

    def member_lists(self) -> list[np.ndarray]:
        """Member index arrays of the dominant clusters (for AVG-F)."""
        return [c.members for c in self.clusters]

    def coverage(self) -> float:
        """Fraction of items assigned to some dominant cluster."""
        if self.n_items == 0:
            return 0.0
        return float((self.labels() >= 0).sum()) / self.n_items

    def summary(self) -> str:
        """One-line human-readable summary."""
        mem = (
            f", peak-mem {self.counters.peak_memory_mb:.2f} MB"
            if self.counters is not None
            else ""
        )
        return (
            f"{self.method or 'detection'}: {self.n_clusters} dominant "
            f"cluster(s) over {self.n_items} items in "
            f"{self.runtime_seconds:.3f}s{mem}"
        )
