"""Result types shared by every detection method in the repository.

All detectors — ALID, PALID and the seven baselines — return a
:class:`DetectionResult`, so the evaluation harness (AVG-F, accounting,
report rendering) treats them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.affinity.oracle import AffinityCounters
from repro.exceptions import ValidationError

__all__ = ["Cluster", "DetectionResult", "pack_clusters", "unpack_clusters"]


@dataclass
class Cluster:
    """One detected cluster.

    Attributes
    ----------
    members:
        Global indices of the cluster's data items.
    weights:
        Probabilistic memberships aligned with *members* (uniform for
        partitioning baselines that have no notion of weights).
    density:
        The cluster's graph density ``pi(x)`` (internal coherence); the
        paper selects clusters with ``pi(x) >= 0.75`` as dominant.
    label:
        Unique cluster label within one detection run.
    seed:
        The initial vertex the cluster was grown from (-1 if not seeded).
    """

    members: np.ndarray
    weights: np.ndarray
    density: float
    label: int
    seed: int = -1

    def __post_init__(self) -> None:
        self.members = np.asarray(self.members, dtype=np.intp)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.members.shape != self.weights.shape:
            raise ValidationError(
                f"members and weights must align: "
                f"{self.members.shape} vs {self.weights.shape}"
            )

    @property
    def size(self) -> int:
        """Number of member items."""
        return int(self.members.size)

    def member_set(self) -> set[int]:
        """Members as a Python set (for evaluation convenience)."""
        return set(int(i) for i in self.members)


@dataclass
class DetectionResult:
    """Uniform output of every detection method.

    Attributes
    ----------
    clusters:
        The *dominant* clusters (density above the method's threshold when
        the method filters; all clusters for partitioning baselines).
    all_clusters:
        Every cluster found, including sub-threshold ones peeled as noise.
    n_items:
        Total number of data items the detector saw.
    runtime_seconds:
        Wall-clock detection time (including any affinity computation, as
        in the paper's measurement protocol).
    counters:
        Snapshot of the affinity-oracle counters at completion (work and
        simulated memory).
    method:
        Human-readable method name ("ALID", "IID", ...).
    metadata:
        Free-form extras (iteration counts, parallel speedup inputs, ...).
    """

    clusters: list[Cluster]
    all_clusters: list[Cluster]
    n_items: int
    runtime_seconds: float = 0.0
    counters: AffinityCounters | None = None
    method: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def n_clusters(self) -> int:
        """Number of dominant clusters."""
        return len(self.clusters)

    def labels(self) -> np.ndarray:
        """Per-item labels: cluster label, or -1 for unclustered noise.

        When clusters overlap (possible for PALID before reduction), the
        densest cluster wins — mirroring the paper's reducer rule.
        """
        labels = np.full(self.n_items, -1, dtype=np.int64)
        best_density = np.full(self.n_items, -np.inf)
        for cluster in self.clusters:
            better = cluster.density > best_density[cluster.members]
            chosen = cluster.members[better]
            labels[chosen] = cluster.label
            best_density[chosen] = cluster.density
        return labels

    def member_lists(self) -> list[np.ndarray]:
        """Member index arrays of the dominant clusters (for AVG-F)."""
        return [c.members for c in self.clusters]

    def coverage(self) -> float:
        """Fraction of items assigned to some dominant cluster."""
        if self.n_items == 0:
            return 0.0
        return float((self.labels() >= 0).sum()) / self.n_items

    def dominant_rows(self) -> np.ndarray:
        """Indices into ``all_clusters`` of the dominant clusters.

        Identity-based (a cluster may appear in both lists as the same
        object), which is how the persistence layers mark dominance
        without duplicating member arrays.
        """
        dominant_ids = {id(c) for c in self.clusters}
        return np.flatnonzero(
            np.asarray(
                [id(c) in dominant_ids for c in self.all_clusters], dtype=bool
            )
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        mem = (
            f", peak-mem {self.counters.peak_memory_mb:.2f} MB"
            if self.counters is not None
            else ""
        )
        return (
            f"{self.method or 'detection'}: {self.n_clusters} dominant "
            f"cluster(s) over {self.n_items} items in "
            f"{self.runtime_seconds:.3f}s{mem}"
        )


# ---------------------------------------------------------------------------
# flat array packing (shared by repro.io and repro.serve.snapshot)
# ---------------------------------------------------------------------------
def pack_clusters(clusters: list[Cluster]) -> dict[str, np.ndarray]:
    """Flatten a cluster list into parallel arrays for persistence.

    Members and weights are concatenated with a CSR-style ``offsets``
    array (``offsets[i]:offsets[i+1]`` slices cluster *i*); densities,
    labels and seeds are one scalar per cluster.  This is the single
    serialisation both the detection archive (:mod:`repro.io`) and the
    serve-time snapshot (:mod:`repro.serve.snapshot`) write, so the two
    formats cannot drift.
    """
    members = (
        np.concatenate([c.members for c in clusters])
        if clusters
        else np.empty(0, dtype=np.intp)
    )
    weights = (
        np.concatenate([c.weights for c in clusters])
        if clusters
        else np.empty(0)
    )
    return {
        "members": members,
        "weights": weights,
        "offsets": np.cumsum([0] + [c.size for c in clusters]),
        "densities": np.asarray([c.density for c in clusters]),
        "labels": np.asarray([c.label for c in clusters], dtype=np.int64),
        "seeds": np.asarray([c.seed for c in clusters], dtype=np.int64),
    }


def unpack_clusters(arrays, *, n_items: int | None = None) -> list[Cluster]:
    """Rebuild the cluster list written by :func:`pack_clusters`.

    *arrays* is any mapping holding the six packed arrays (an ``.npz``
    archive, a snapshot's array dict, ...).  Round-trips bit-identically:
    member indices, weights, densities, labels and seeds all survive.

    Parameters
    ----------
    arrays:
        Mapping with the six :func:`pack_clusters` keys.
    n_items:
        When given, every member index must lie in ``[0, n_items)`` —
        pass it so a corrupt archive fails loudly instead of yielding
        clusters pointing outside the data matrix.

    Raises
    ------
    ValidationError
        If the offsets are inconsistent with the flat arrays
        (non-monotonic, wrong total) or members are out of range.
    """
    offsets = np.asarray(arrays["offsets"], dtype=np.int64)
    members = np.asarray(arrays["members"])
    weights = np.asarray(arrays["weights"])
    densities = np.asarray(arrays["densities"])
    labels = np.asarray(arrays["labels"])
    seeds = np.asarray(arrays["seeds"])
    if offsets.size < 1:
        raise ValidationError("cluster offsets must hold at least [0]")
    if int(offsets[0]) != 0 or (np.diff(offsets) < 0).any():
        raise ValidationError(
            "cluster offsets must start at 0 and be non-decreasing"
        )
    if members.size and n_items is not None:
        if int(members.min()) < 0 or int(members.max()) >= n_items:
            raise ValidationError(
                f"cluster members out of range for {n_items} items: "
                f"min={int(members.min())}, max={int(members.max())}"
            )
    n_clusters = offsets.size - 1
    if not (
        densities.size == n_clusters
        and labels.size == n_clusters
        and seeds.size == n_clusters
    ):
        raise ValidationError(
            f"cluster scalar arrays disagree with offsets: "
            f"{n_clusters} clusters expected"
        )
    if int(offsets[-1]) != members.size or members.size != weights.size:
        raise ValidationError(
            f"cluster member/weight arrays ({members.size}/{weights.size}) "
            f"disagree with offsets (total {int(offsets[-1])})"
        )
    clusters = []
    for i in range(n_clusters):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        clusters.append(
            Cluster(
                members=members[lo:hi],
                weights=weights[lo:hi],
                density=float(densities[i]),
                label=int(labels[i]),
                seed=int(seeds[i]),
            )
        )
    return clusters
