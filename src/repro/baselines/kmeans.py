"""k-means (KM) — Lloyd's algorithm with k-means++ seeding.

The canonical partitioning baseline of the paper's noise-resistance
analysis (Appendix C): every item, noise included, is forced into one of
K clusters, which is exactly why AVG-F collapses as the noise degree
grows (Fig. 11).  Following the paper's protocol, the caller supplies
``n_clusters`` as the true cluster count plus one extra for the noise.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import Cluster, DetectionResult
from repro.exceptions import EmptyDatasetError, ValidationError
from repro.utils.rng import as_generator
from repro.utils.timing import timed
from repro.utils.validation import check_data_matrix

__all__ = ["KMeans", "kmeans_plus_plus"]


def kmeans_plus_plus(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii): D^2-weighted centers."""
    n = data.shape[0]
    centers = np.empty((n_clusters, data.shape[1]))
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest_sq = ((data - centers[0]) ** 2).sum(axis=1)
    for j in range(1, n_clusters):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All remaining points coincide with chosen centers.
            centers[j:] = data[int(rng.integers(n))]
            break
        probs = closest_sq / total
        choice = int(rng.choice(n, p=probs))
        centers[j] = data[choice]
        dist_sq = ((data - centers[j]) ** 2).sum(axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


class KMeans:
    """Lloyd's k-means with k-means++ restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters K (the paper sets the true count + 1 so noise
        gets its own bucket, following Liu et al.).
    n_init:
        Independent k-means++ restarts; the lowest-inertia run wins.
    max_iter / tol:
        Lloyd iteration cap and center-movement tolerance.
    seed:
        RNG seed.
    """

    #: Registry name (arena `Detector` protocol).
    name = "KM"
    def __init__(
        self,
        n_clusters: int,
        *,
        n_init: int = 4,
        max_iter: int = 200,
        tol: float = 1e-6,
        seed=0,
    ):
        if n_clusters < 1:
            raise ValidationError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed

    # ------------------------------------------------------------------
    def _lloyd(
        self, data: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float]:
        for _ in range(self.max_iter):
            # Assignment step.
            sq = (
                (data**2).sum(axis=1)[:, None]
                - 2.0 * data @ centers.T
                + (centers**2).sum(axis=1)[None, :]
            )
            labels = np.argmin(sq, axis=1)
            # Update step.
            new_centers = centers.copy()
            for j in range(self.n_clusters):
                mask = labels == j
                if mask.any():
                    new_centers[j] = data[mask].mean(axis=0)
            shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            if shift < self.tol:
                break
        sq = (
            (data**2).sum(axis=1)[:, None]
            - 2.0 * data @ centers.T
            + (centers**2).sum(axis=1)[None, :]
        )
        labels = np.argmin(sq, axis=1)
        inertia = float(np.maximum(sq[np.arange(len(data)), labels], 0.0).sum())
        return labels, centers, inertia

    def fit(self, data: np.ndarray) -> DetectionResult:
        """Partition *data* into ``n_clusters`` clusters."""
        data = check_data_matrix(data)
        if data.shape[0] < self.n_clusters:
            raise EmptyDatasetError(
                f"need at least n_clusters={self.n_clusters} items, "
                f"got {data.shape[0]}"
            )
        rng = as_generator(self.seed)
        with timed() as clock:
            best: tuple[np.ndarray, np.ndarray, float] | None = None
            for _ in range(max(1, self.n_init)):
                centers = kmeans_plus_plus(data, self.n_clusters, rng)
                labels, centers, inertia = self._lloyd(data, centers)
                if best is None or inertia < best[2]:
                    best = (labels, centers, inertia)
            labels, centers, inertia = best
            clusters: list[Cluster] = []
            for j in range(self.n_clusters):
                members = np.flatnonzero(labels == j).astype(np.intp)
                if members.size == 0:
                    continue
                clusters.append(
                    Cluster(
                        members=members,
                        weights=np.full(members.size, 1.0 / members.size),
                        density=0.0,
                        label=j,
                    )
                )
        return DetectionResult(
            clusters=clusters,
            all_clusters=list(clusters),
            n_items=data.shape[0],
            runtime_seconds=clock[0],
            counters=None,
            method="KM",
            metadata={"inertia": inertia, "n_clusters": self.n_clusters},
        )
