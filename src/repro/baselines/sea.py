"""SEA — the Shrink-and-Expansion Algorithm (Liu, Latecki & Yan, 2013).

SEA avoids running replicator dynamics on the whole graph by restricting
every RD run to a small evolving subgraph of a *sparse* affinity graph:

* **shrink** — run RD on the current vertex set ``B`` and keep only the
  support of the converged strategy;
* **expansion** — grow ``B`` with the sparse-graph neighbours of the
  support, so infective vertices reachable through graph edges can join.

Time and space are linear in the number of graph *edges* (paper §2), so
SEA's scalability tracks the sparse degree of the affinity graph — the
sensitivity the paper's Fig. 6 probes.  Peeling and density threshold are
shared with the other affinity-based methods.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.baselines.common import KernelParams, prepare_affinity, submatrix
from repro.core.results import Cluster, DetectionResult
from repro.dynamics.replicator import replicator_dynamics
from repro.exceptions import EmptyDatasetError
from repro.utils.timing import timed

__all__ = ["SEA"]


class SEA:
    """Shrink-and-expansion dense-subgraph peeling on a sparse graph.

    Parameters
    ----------
    density_threshold / min_cluster_size:
        Dominant-cluster selection rule shared with ALID (paper §4.4).
    support_cutoff:
        Relative support cutoff for the shrink step (as in DS).
    max_rounds:
        Cap on shrink/expansion alternations per extraction.
    rd_max_iter / tol:
        Replicator-dynamics budget per shrink step.
    sparsify:
        True (default) builds the LSH-sparsified graph, with ``lsh_r``
        controlling the sparse degree (the Fig. 6 protocol).  False
        computes and stores the complete affinity matrix, reproducing the
        paper's §3 observation that SEA "needs the complete affinity
        matrix as well" — the O(n^2) cost visible in Fig. 7/9.
    kernel:
        Kernel/LSH parameters shared with the other methods.
    """

    #: Registry name (arena `Detector` protocol).
    name = "SEA"
    def __init__(
        self,
        *,
        density_threshold: float = 0.75,
        min_cluster_size: int = 2,
        support_cutoff: float = 1e-2,
        max_rounds: int = 10,
        rd_max_iter: int = 500,
        tol: float = 1e-7,
        sparsify: bool = True,
        kernel: KernelParams | None = None,
    ):
        self.density_threshold = float(density_threshold)
        self.min_cluster_size = int(min_cluster_size)
        self.support_cutoff = float(support_cutoff)
        self.max_rounds = int(max_rounds)
        self.rd_max_iter = int(rd_max_iter)
        self.tol = float(tol)
        self.sparsify = bool(sparsify)
        self.kernel = kernel or KernelParams()

    def fit(
        self, data: np.ndarray, *, budget_entries: int | None = None
    ) -> DetectionResult:
        """Detect dominant clusters by shrink/expansion peeling."""
        with timed() as clock:
            setup = prepare_affinity(
                data,
                self.kernel,
                sparsify=self.sparsify,
                budget_entries=budget_entries,
            )
            if sp.issparse(setup.matrix):
                graph = setup.matrix.tocsr()
            else:
                # Full-matrix protocol: every pair is a graph edge.
                graph = sp.csr_matrix(setup.matrix)
            all_clusters = self._peel(graph, setup.n)
            setup.release()
        dominant = [
            c
            for c in all_clusters
            if c.density >= self.density_threshold
            and c.size >= self.min_cluster_size
        ]
        return DetectionResult(
            clusters=dominant,
            all_clusters=all_clusters,
            n_items=setup.n,
            runtime_seconds=clock[0],
            counters=setup.oracle.counters.snapshot(),
            method="SEA",
            metadata={"nnz": int(graph.nnz), "sparsify": self.sparsify},
        )

    # ------------------------------------------------------------------
    def _neighbors(self, matrix: sp.csr_matrix, vertices: np.ndarray) -> np.ndarray:
        """Union of sparse-graph neighbours of *vertices*."""
        seen: set[int] = set()
        indptr = matrix.indptr
        indices = matrix.indices
        for v in vertices:
            seen.update(indices[indptr[v]: indptr[v + 1]].tolist())
        if not seen:
            return np.empty(0, dtype=np.intp)
        out = np.fromiter(seen, dtype=np.intp, count=len(seen))
        out.sort()
        return out

    def _extract_one(
        self, matrix: sp.csr_matrix, active: np.ndarray, seed: int
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """One shrink/expansion extraction starting at *seed*."""
        neighbors = self._neighbors(matrix, np.asarray([seed]))
        neighbors = neighbors[active[neighbors]]
        b_set = np.unique(np.concatenate([[seed], neighbors])).astype(np.intp)
        support = np.asarray([seed], dtype=np.intp)
        weights = np.asarray([1.0])
        density = 0.0
        for _ in range(self.max_rounds):
            local = submatrix(matrix, b_set)
            x0 = np.full(b_set.size, 1.0 / b_set.size)
            result = replicator_dynamics(
                local, x0, max_iter=self.rd_max_iter, tol=self.tol
            )
            cutoff = self.support_cutoff * float(result.x.max())
            local_support = np.flatnonzero(result.x > cutoff)
            if local_support.size == 0:
                break
            support = b_set[local_support]
            weights = result.x[local_support]
            weights = weights / weights.sum()
            density = result.density
            expansion = self._neighbors(matrix, support)
            expansion = expansion[active[expansion]]
            new_b = np.unique(np.concatenate([support, expansion])).astype(np.intp)
            if new_b.size == b_set.size and np.array_equal(new_b, b_set):
                break
            b_set = new_b
        return support, weights, density

    def _peel(self, matrix: sp.csr_matrix, n: int) -> list[Cluster]:
        if n == 0:
            raise EmptyDatasetError("cannot fit SEA on empty data")
        active = np.ones(n, dtype=bool)
        # Seed priority: weighted degree in the sparse graph, densest
        # neighbourhoods first (SEA's seeding heuristic).
        degree = np.asarray(matrix.sum(axis=1)).ravel()
        order = np.argsort(-degree, kind="stable")
        cursor = 0
        clusters: list[Cluster] = []
        label = 0
        while active.any():
            while cursor < n and not active[order[cursor]]:
                cursor += 1
            if cursor >= n:
                break
            seed = int(order[cursor])
            # Mask peeled vertices out of this extraction by zeroing their
            # columns in the local submatrices: simplest is to keep the
            # extraction within active vertices only.
            support, weights, density = self._extract_one(matrix, active, seed)
            keep = active[support]
            support = support[keep]
            if support.size == 0:
                support = np.asarray([seed], dtype=np.intp)
                weights = np.asarray([1.0])
                density = 0.0
            else:
                weights = weights[keep]
                weights = weights / weights.sum()
            clusters.append(
                Cluster(
                    members=support,
                    weights=weights,
                    density=density,
                    label=label,
                )
            )
            label += 1
            active[support] = False
        return clusters
