"""IID baseline — full-matrix Infection Immunization Dynamics with peeling.

Rota Bulò et al.'s solver (§2/§3): each iteration costs O(n) *given the
affinity matrix*, but the matrix itself takes O(n^2) time and space to
compute and store — the exact bottleneck the paper's Fig. 7/9 curves show
and ALID removes.  Peeling protocol and density threshold are shared with
DS and ALID for fair comparison (§4.4).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import AffinitySetup, KernelParams, prepare_affinity
from repro.core.results import Cluster, DetectionResult
from repro.dynamics.iid import iid_dynamics
from repro.exceptions import EmptyDatasetError
from repro.utils.timing import timed

__all__ = ["IIDDetector"]


class IIDDetector:
    """Infection-immunization peeling on the materialised affinity matrix.

    Parameters
    ----------
    density_threshold / min_cluster_size:
        Dominant-cluster selection rule shared with ALID (paper §4.4).
    max_iter / tol:
        IID iteration cap and immunity tolerance.
    sparsify:
        Use a sparsified matrix instead of the full one (Fig. 6's IID
        curves use the LSH sparsifier of §5.1).
    sparsifier / enn_k:
        Which sparsifier when ``sparsify=True``: ``"lsh"`` (paper) or
        ``"enn"`` (exact ``enn_k``-NN, Chen et al.'s other recipe).
    kernel:
        Kernel/LSH parameters (defaults match ALID's auto-selection).
    """

    #: Registry name (arena `Detector` protocol).
    name = "IID"
    def __init__(
        self,
        *,
        density_threshold: float = 0.75,
        min_cluster_size: int = 2,
        max_iter: int = 5000,
        tol: float = 1e-7,
        sparsify: bool = False,
        sparsifier: str = "lsh",
        enn_k: int = 10,
        kernel: KernelParams | None = None,
    ):
        self.density_threshold = float(density_threshold)
        self.min_cluster_size = int(min_cluster_size)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.sparsify = bool(sparsify)
        self.sparsifier = str(sparsifier)
        self.enn_k = int(enn_k)
        self.kernel = kernel or KernelParams()

    def fit(
        self, data: np.ndarray, *, budget_entries: int | None = None
    ) -> DetectionResult:
        """Detect dominant clusters by IID peeling."""
        with timed() as clock:
            setup = prepare_affinity(
                data,
                self.kernel,
                sparsify=self.sparsify,
                budget_entries=budget_entries,
                sparsifier=self.sparsifier,
                enn_k=self.enn_k,
            )
            all_clusters = self._peel(setup)
            setup.release()
        dominant = [
            c
            for c in all_clusters
            if c.density >= self.density_threshold
            and c.size >= self.min_cluster_size
        ]
        return DetectionResult(
            clusters=dominant,
            all_clusters=all_clusters,
            n_items=setup.n,
            runtime_seconds=clock[0],
            counters=setup.oracle.counters.snapshot(),
            method="IID",
            metadata={"sparsify": self.sparsify},
        )

    def _peel(self, setup: AffinitySetup) -> list[Cluster]:
        n = setup.n
        if n == 0:
            raise EmptyDatasetError("cannot fit IIDDetector on empty data")
        active = np.ones(n, dtype=bool)
        clusters: list[Cluster] = []
        label = 0
        while active.any():
            idx = np.flatnonzero(active)
            x0 = np.zeros(n)
            x0[idx] = 1.0 / idx.size
            result = iid_dynamics(
                setup.matrix,
                x0,
                max_iter=self.max_iter,
                tol=self.tol,
                active=active,
            )
            # Immunization drives weights to exact zero, so the support
            # needs no cutoff heuristics.
            support = result.support()
            support = support[active[support]]
            if support.size == 0:
                support = idx[:1]
            weights = result.x[support]
            total = float(weights.sum())
            weights = (
                weights / total
                if total > 0
                else np.full(support.size, 1.0 / support.size)
            )
            clusters.append(
                Cluster(
                    members=support,
                    weights=weights,
                    density=result.density,
                    label=label,
                )
            )
            label += 1
            active[support] = False
        return clusters
