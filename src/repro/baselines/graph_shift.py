"""Graph Shift (GS) — Liu & Yan, ICML 2010 (paper reference [19]).

The paper leans on Liu & Yan's observation that the internal connection
strength ``pi(x)`` "is a robust measurement of the intrinsic cohesiveness"
of a subgraph (§3) and cites graph shift as the mode-seeking relative of
the dense-subgraph family.  Graph shift treats every dense subgraph as a
*mode* of the graph density function and shifts each starting vertex
toward its mode by alternating:

1. **Replicator dynamics** restricted to the current support (climbing
   the density within the spanned face of the simplex);
2. **Neighbourhood expansion**: neighbours that are infective against
   the current strategy (``pi(s_j - x, x) > 0``) join the support.

A vertex's shift ends when no neighbour is infective — by Theorem 1 the
strategy then sits on a local dense subgraph.  Vertices reaching the
same mode share a cluster; weak modes (density below the shared
threshold) are background noise.  Unlike the peeling family (DS, IID,
SEA, ALID), graph shift never removes items, so overlapping modes are
resolved by first-discovery here.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.baselines.common import (
    AffinitySetup,
    KernelParams,
    prepare_affinity,
    submatrix,
)
from repro.core.results import Cluster, DetectionResult
from repro.dynamics.replicator import replicator_dynamics
from repro.exceptions import EmptyDatasetError
from repro.utils.timing import timed

__all__ = ["GraphShift"]


class GraphShift:
    """Graph-shift mode seeking over a materialised affinity matrix.

    Parameters
    ----------
    density_threshold / min_cluster_size:
        Dominant-mode selection rule, shared with the peeling family.
    support_cutoff:
        Relative weight cutoff reading a mode's support off the
        converged (multiplicative) replicator strategy.
    expansion_cap:
        Most infective neighbours admitted per expansion phase — keeps
        each shift local, the property the method is named for.
    max_rounds:
        Shrink/expand alternations per seed.
    max_iter / tol:
        Replicator-dynamics settings within one shrink phase.
    sparsify:
        Use the LSH-sparsified matrix of §5.1 instead of the full one
        (graph shift only ever reads neighbourhood rows, so it pairs
        naturally with a sparse graph).
    kernel:
        Kernel/LSH parameters (defaults match ALID's auto-selection).
    """

    #: Registry name (arena `Detector` protocol).
    name = "GS"
    def __init__(
        self,
        *,
        density_threshold: float = 0.75,
        min_cluster_size: int = 2,
        support_cutoff: float = 1e-2,
        expansion_cap: int = 50,
        max_rounds: int = 30,
        max_iter: int = 1000,
        tol: float = 1e-7,
        sparsify: bool = False,
        kernel: KernelParams | None = None,
    ):
        self.density_threshold = float(density_threshold)
        self.min_cluster_size = int(min_cluster_size)
        self.support_cutoff = float(support_cutoff)
        self.expansion_cap = int(expansion_cap)
        self.max_rounds = int(max_rounds)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.sparsify = bool(sparsify)
        self.kernel = kernel or KernelParams()

    # ------------------------------------------------------------------
    def fit(
        self, data: np.ndarray, *, budget_entries: int | None = None
    ) -> DetectionResult:
        """Detect dominant clusters as the strong modes of the graph."""
        with timed() as clock:
            setup = prepare_affinity(
                data,
                self.kernel,
                sparsify=self.sparsify,
                budget_entries=budget_entries,
            )
            all_clusters = self._seek_modes(setup)
            setup.release()
        dominant = [
            c
            for c in all_clusters
            if c.density >= self.density_threshold
            and c.size >= self.min_cluster_size
        ]
        return DetectionResult(
            clusters=dominant,
            all_clusters=all_clusters,
            n_items=setup.n,
            runtime_seconds=clock[0],
            counters=setup.oracle.counters.snapshot(),
            method="GS",
            metadata={"sparsify": self.sparsify},
        )

    # ------------------------------------------------------------------
    def _neighbors_of(self, matrix, support: np.ndarray, n: int) -> np.ndarray:
        """Vertices with non-zero affinity to the support (support excluded)."""
        if sp.issparse(matrix):
            mask = np.zeros(n, dtype=bool)
            csr = matrix.tocsr()
            for i in support:
                row = csr.indices[csr.indptr[i] : csr.indptr[i + 1]]
                mask[row] = True
        else:
            mask = (matrix[support] > 0).any(axis=0)
        mask[support] = False
        return np.flatnonzero(mask)

    def _shift_from(self, setup: AffinitySetup, seed: int) -> Cluster:
        """Shift one seed vertex to its mode."""
        matrix = setup.matrix
        n = setup.n
        support = np.asarray([seed], dtype=np.intp)
        x_local = np.asarray([1.0])
        density = 0.0
        for _ in range(self.max_rounds):
            # Shrink: replicator dynamics on the spanned face.
            block = submatrix(matrix, support)
            result = replicator_dynamics(
                block, x_local, max_iter=self.max_iter, tol=self.tol
            )
            cutoff = self.support_cutoff * float(result.x.max())
            keep = result.x > cutoff
            support = support[keep]
            x_local = result.x[keep]
            total = float(x_local.sum())
            x_local = (
                x_local / total
                if total > 0
                else np.full(support.size, 1.0 / support.size)
            )
            density = result.density
            # Expand: admit infective neighbours (pi(s_j, x) > pi(x)).
            neighbors = self._neighbors_of(matrix, support, n)
            if neighbors.size == 0:
                break
            if sp.issparse(matrix):
                payoff = np.asarray(
                    matrix[neighbors][:, support] @ x_local
                ).ravel()
            else:
                payoff = matrix[np.ix_(neighbors, support)] @ x_local
            infective = payoff > density + self.tol
            if not infective.any():
                break
            order = np.argsort(payoff[infective])[::-1][: self.expansion_cap]
            newcomers = neighbors[infective][order]
            support = np.concatenate([support, newcomers])
            x_local = np.concatenate(
                [x_local, np.zeros(newcomers.size)]
            )
            # Zero-weight newcomers would be fixed points of the
            # multiplicative dynamics; seed them with a small uniform
            # share instead.
            x_local = x_local + 1.0 / (10.0 * support.size)
            x_local /= x_local.sum()
        return Cluster(
            members=support,
            weights=x_local,
            density=float(density),
            label=-1,
            seed=seed,
        )

    def _seek_modes(self, setup: AffinitySetup) -> list[Cluster]:
        n = setup.n
        if n == 0:
            raise EmptyDatasetError("cannot fit GraphShift on empty data")
        assigned = np.zeros(n, dtype=bool)
        clusters: list[Cluster] = []
        label = 0
        for seed in range(n):
            if assigned[seed]:
                continue
            mode = self._shift_from(setup, seed)
            members = mode.members[~assigned[mode.members]]
            if members.size == 0:
                # The whole mode belongs to earlier discoveries; the
                # seed joins them implicitly.
                assigned[seed] = True
                continue
            weights = mode.weights[~assigned[mode.members]]
            total = float(weights.sum())
            weights = (
                weights / total
                if total > 0
                else np.full(members.size, 1.0 / members.size)
            )
            clusters.append(
                Cluster(
                    members=members,
                    weights=weights,
                    density=mode.density,
                    label=label,
                    seed=seed,
                )
            )
            label += 1
            assigned[members] = True
        return clusters
