"""Mean shift (MS) — Comaniciu & Meer, TPAMI 2002.

Mode seeking in feature space with a Gaussian kernel: every point is
iteratively shifted to the weighted mean of its neighbourhood until it
reaches a density mode; points converging to the same mode form a
cluster.  The paper (§2, Appendix C) notes MS's detection quality hinges
on the bandwidth and the assumed density shape — it competes on NART but
degrades on Sub-NDI's more complex feature distribution (Fig. 11).
"""

from __future__ import annotations

import numpy as np

from repro.affinity.kernel import pairwise_distances
from repro.core.results import Cluster, DetectionResult
from repro.exceptions import EmptyDatasetError, ValidationError
from repro.utils.rng import as_generator
from repro.utils.timing import timed
from repro.utils.validation import check_data_matrix

__all__ = ["MeanShift", "estimate_bandwidth"]


def estimate_bandwidth(
    data: np.ndarray, *, quantile: float = 0.1, sample_size: int = 512, seed=0
) -> float:
    """Bandwidth heuristic: the *quantile* of sampled pairwise distances."""
    data = check_data_matrix(data)
    if not 0.0 < quantile <= 1.0:
        raise ValidationError(f"quantile must be in (0, 1], got {quantile}")
    rng = as_generator(seed)
    n = data.shape[0]
    sample = data
    if n > sample_size:
        sample = data[rng.choice(n, size=sample_size, replace=False)]
    dists = pairwise_distances(sample)
    positive = dists[dists > 0]
    if positive.size == 0:
        return 1.0
    return float(np.quantile(positive, quantile))


class MeanShift:
    """Gaussian-kernel mean shift with mode merging.

    Parameters
    ----------
    bandwidth:
        Gaussian kernel bandwidth; ``None`` auto-estimates via
        :func:`estimate_bandwidth`.
    max_iter / tol:
        Shift iteration cap and movement tolerance.
    merge_factor:
        Modes within ``merge_factor * bandwidth`` are merged into one
        cluster.
    min_cluster_size:
        Modes attracting fewer points than this are reported but carry
        density 0 (they are typically noise artifacts).
    """

    #: Registry name (arena `Detector` protocol).
    name = "MS"
    def __init__(
        self,
        *,
        bandwidth: float | None = None,
        max_iter: int = 50,
        tol: float = 1e-4,
        merge_factor: float = 0.5,
        min_cluster_size: int = 1,
        seed=0,
    ):
        self.bandwidth = bandwidth
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.merge_factor = float(merge_factor)
        self.min_cluster_size = int(min_cluster_size)
        self.seed = seed

    def fit(self, data: np.ndarray) -> DetectionResult:
        """Cluster *data* by mode seeking."""
        data = check_data_matrix(data)
        n = data.shape[0]
        if n == 0:
            raise EmptyDatasetError("cannot fit MeanShift on empty data")
        with timed() as clock:
            bandwidth = (
                self.bandwidth
                if self.bandwidth is not None
                else estimate_bandwidth(data, seed=self.seed)
            )
            if bandwidth <= 0:
                raise ValidationError(f"bandwidth must be > 0, got {bandwidth}")
            shifted = data.copy()
            inv_two_h_sq = 1.0 / (2.0 * bandwidth * bandwidth)
            for _ in range(self.max_iter):
                dists = pairwise_distances(shifted, data)
                weights = np.exp(-(dists**2) * inv_two_h_sq)
                denom = weights.sum(axis=1, keepdims=True)
                denom[denom == 0.0] = 1.0
                new_shifted = weights @ data / denom
                movement = float(
                    np.linalg.norm(new_shifted - shifted, axis=1).max()
                )
                shifted = new_shifted
                if movement < self.tol * bandwidth:
                    break
            labels = self._merge_modes(shifted, bandwidth)
            clusters: list[Cluster] = []
            for label in np.unique(labels):
                members = np.flatnonzero(labels == label).astype(np.intp)
                clusters.append(
                    Cluster(
                        members=members,
                        weights=np.full(members.size, 1.0 / members.size),
                        density=0.0,
                        label=int(label),
                    )
                )
        return DetectionResult(
            clusters=clusters,
            all_clusters=list(clusters),
            n_items=n,
            runtime_seconds=clock[0],
            counters=None,
            method="MS",
            metadata={"bandwidth": bandwidth},
        )

    def _merge_modes(self, modes: np.ndarray, bandwidth: float) -> np.ndarray:
        """Union points whose converged modes are within the merge radius."""
        n = modes.shape[0]
        radius = self.merge_factor * bandwidth
        labels = np.full(n, -1, dtype=np.int64)
        centers: list[np.ndarray] = []
        for i in range(n):
            assigned = False
            for label, center in enumerate(centers):
                if np.linalg.norm(modes[i] - center) <= radius:
                    labels[i] = label
                    assigned = True
                    break
            if not assigned:
                labels[i] = len(centers)
                centers.append(modes[i])
        return labels
