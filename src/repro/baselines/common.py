"""Shared machinery for the baseline detectors.

Every affinity-based baseline materialises its payoff matrix — full
(``O(n^2)``, the paper's scalability bottleneck) or LSH-sparsified
(§5.1) — through :func:`prepare_affinity`, so work and simulated memory
are charged on the same oracle ALID uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np
from scipy import sparse as sp

from repro.affinity.kernel import LaplacianKernel, suggest_scaling_factor
from repro.affinity.oracle import AffinityOracle
from repro.affinity.sparse import ENNAffinityBuilder, SparseAffinityBuilder
from repro.exceptions import ValidationError
from repro.lsh.index import LSHIndex
from repro.utils.validation import check_data_matrix

__all__ = [
    "AffinitySetup",
    "Detector",
    "KernelParams",
    "prepare_affinity",
    "submatrix",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.results import DetectionResult


@runtime_checkable
class Detector(Protocol):
    """What the arena registry requires of every detection method.

    Every baseline in this package, plus :class:`~repro.core.alid.ALID`
    and :class:`~repro.parallel.palid.PALID`, satisfies this protocol
    structurally — no per-module shims: a ``name`` (the method tag the
    leaderboard prints) and a ``fit`` returning a
    :class:`~repro.core.results.DetectionResult`, whose ``labels()`` /
    ``member_lists()`` give the detected clusters and whose
    ``counters`` (``None`` for methods that never touch an affinity
    oracle, e.g. k-means) carry the work accounting the arena charges
    per cell.
    """

    #: Method tag (e.g. ``"ALID"``, ``"DS"``); matches the
    #: ``DetectionResult.method`` the fit reports.
    name: str

    def fit(self, data, **kwargs) -> "DetectionResult":
        """Detect clusters in ``data`` and return the result."""
        ...


@dataclass(frozen=True)
class KernelParams:
    """Kernel/LSH configuration shared by the affinity-based baselines.

    ``kernel_k=None`` auto-selects the Laplacian scaling factor exactly
    like ALID does, so every method sees the same affinities.
    """

    kernel_k: float | None = None
    kernel_p: float = 2.0
    kernel_target_affinity: float = 0.9
    lsh_r: float | None = None
    lsh_r_scale: float = 10.0
    lsh_projections: int = 40
    lsh_tables: int = 50
    seed: int = 0

    def resolve_kernel(self, data: np.ndarray) -> LaplacianKernel:
        """Build the Laplacian kernel, auto-selecting ``k`` if needed."""
        k = self.kernel_k
        if k is None:
            k = suggest_scaling_factor(
                data,
                p=self.kernel_p,
                target_affinity=self.kernel_target_affinity,
                seed=self.seed,
            )
        return LaplacianKernel(k=k, p=self.kernel_p)

    def resolve_lsh_r(self, kernel: LaplacianKernel) -> float:
        """Segment length: explicit value or the auto anchor ALID uses."""
        if self.lsh_r is not None:
            return float(self.lsh_r)
        return self.lsh_r_scale * kernel.distance_from_affinity(
            self.kernel_target_affinity
        )


@dataclass
class AffinitySetup:
    """A materialised affinity matrix plus its accounting handles."""

    oracle: AffinityOracle
    matrix: np.ndarray | sp.csr_matrix
    stored_entries: int
    index: LSHIndex | None = None

    @property
    def n(self) -> int:
        """Number of data items."""
        return self.oracle.n

    def release(self) -> None:
        """Release the matrix storage from the simulated-memory ledger."""
        if self.stored_entries:
            self.oracle.release_stored(self.stored_entries)
            self.stored_entries = 0


def prepare_affinity(
    data: np.ndarray,
    params: KernelParams,
    *,
    sparsify: bool = False,
    budget_entries: int | None = None,
    max_neighbors: int | None = None,
    sparsifier: str = "lsh",
    enn_k: int = 10,
) -> AffinitySetup:
    """Materialise the affinity matrix a baseline method will consume.

    ``sparsify=False`` computes and stores the full ``n x n`` matrix
    (charging ``n^2`` work and storage — the O(n^2) bottleneck of §2).
    ``sparsify=True`` builds a sparsified matrix instead, charging only
    the kept pairs; ``sparsifier`` selects between Chen et al.'s two
    recipes — ``"lsh"`` (the approximate path of §5.1, the paper's
    choice) and ``"enn"`` (exact ``enn_k``-nearest neighbours via the
    k-d tree).
    """
    data = check_data_matrix(data)
    kernel = params.resolve_kernel(data)
    oracle = AffinityOracle(data, kernel, budget_entries=budget_entries)
    if not sparsify:
        n = oracle.n
        oracle.charge_stored(n * n)
        matrix = oracle.pairwise()
        return AffinitySetup(oracle=oracle, matrix=matrix, stored_entries=n * n)
    if sparsifier == "enn":
        matrix = ENNAffinityBuilder(oracle, k=enn_k).build(
            charge_storage=True
        )
        return AffinitySetup(
            oracle=oracle, matrix=matrix, stored_entries=matrix.nnz
        )
    if sparsifier != "lsh":
        raise ValidationError(
            f"sparsifier must be 'lsh' or 'enn', got {sparsifier!r}"
        )
    index = LSHIndex(
        data,
        r=params.resolve_lsh_r(kernel),
        n_projections=params.lsh_projections,
        n_tables=params.lsh_tables,
        seed=params.seed,
    )
    builder = SparseAffinityBuilder(oracle, index, max_neighbors=max_neighbors)
    matrix = builder.build(charge_storage=True)
    return AffinitySetup(
        oracle=oracle, matrix=matrix, stored_entries=matrix.nnz, index=index
    )


def submatrix(matrix, indices: np.ndarray) -> np.ndarray:
    """Dense square submatrix over *indices* (dense or sparse input)."""
    indices = np.asarray(indices, dtype=np.intp)
    if sp.issparse(matrix):
        return np.asarray(matrix[np.ix_(indices, indices)].todense())
    return matrix[np.ix_(indices, indices)]
