"""Spectral clustering: SC-FL (full affinity) and SC-NYS (Nystrom).

The two spectral baselines of the paper's noise-resistance analysis
(Appendix C): normalized-cut style spectral clustering on the full
affinity matrix (Ng, Jordan & Weiss), and the Nystrom-approximated
variant (Fowlkes et al.) that samples landmark columns to avoid the full
O(n^2) matrix.  Both force every item into one of K clusters, so, like
k-means, their AVG-F collapses under heavy noise (Fig. 11).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro.baselines.common import KernelParams
from repro.baselines.kmeans import KMeans
from repro.affinity.oracle import AffinityOracle
from repro.core.results import Cluster, DetectionResult
from repro.exceptions import EmptyDatasetError, ValidationError
from repro.utils.rng import as_generator
from repro.utils.timing import timed
from repro.utils.validation import check_data_matrix

__all__ = ["SpectralClustering"]


class SpectralClustering:
    """Normalized spectral clustering with exact or Nystrom embeddings.

    Parameters
    ----------
    n_clusters:
        Number of clusters K (paper protocol: true count + 1 for noise).
    mode:
        ``"full"`` (SC-FL) materialises the whole affinity matrix;
        ``"nystrom"`` (SC-NYS) samples ``n_landmarks`` columns.
    n_landmarks:
        Landmark count for Nystrom mode.
    kernel:
        Kernel parameters (shared auto-selection with other methods).
    seed:
        RNG seed for landmarks and k-means.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        mode: str = "full",
        n_landmarks: int = 200,
        kernel: KernelParams | None = None,
        seed=0,
    ):
        if mode not in ("full", "nystrom"):
            raise ValidationError(f"mode must be 'full' or 'nystrom', got {mode!r}")
        if n_clusters < 1:
            raise ValidationError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = int(n_clusters)
        self.mode = mode
        self.n_landmarks = int(n_landmarks)
        self.kernel = kernel or KernelParams()
        self.seed = seed

    @property
    def name(self) -> str:
        """Registry name of this configuration (arena `Detector` protocol)."""
        return "SC-FL" if self.mode == "full" else "SC-NYS"

    # ------------------------------------------------------------------
    def _embed_full(self, oracle: AffinityOracle) -> np.ndarray:
        n = oracle.n
        oracle.charge_stored(n * n)
        affinity = oracle.pairwise()
        degree = affinity.sum(axis=1)
        degree[degree <= 0] = 1.0
        d_inv_sqrt = 1.0 / np.sqrt(degree)
        normalized = affinity * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]
        k = min(self.n_clusters, n - 1)
        eigvals, eigvecs = linalg.eigh(
            normalized, subset_by_index=(n - k, n - 1)
        )
        oracle.release_stored(n * n)
        return eigvecs

    def _embed_nystrom(self, oracle: AffinityOracle) -> np.ndarray:
        n = oracle.n
        m = min(self.n_landmarks, n)
        rng = as_generator(self.seed)
        landmarks = rng.choice(n, size=m, replace=False)
        landmarks.sort()
        all_rows = np.arange(n, dtype=np.intp)
        oracle.charge_stored(n * m)
        c_block = oracle.block(all_rows, landmarks)
        w_block = c_block[landmarks]
        # Eigen-decompose the landmark block; clip non-positive modes.
        eigvals, eigvecs = linalg.eigh(w_block)
        order = np.argsort(eigvals)[::-1]
        eigvals = eigvals[order]
        eigvecs = eigvecs[:, order]
        keep = eigvals > max(1e-12, 1e-10 * abs(eigvals[0]))
        eigvals = eigvals[keep]
        eigvecs = eigvecs[:, keep]
        k = min(self.n_clusters, eigvals.size)
        embedding = c_block @ eigvecs[:, :k] / np.sqrt(eigvals[:k])[None, :]
        oracle.release_stored(n * m)
        return embedding

    def fit(
        self, data: np.ndarray, *, budget_entries: int | None = None
    ) -> DetectionResult:
        """Partition *data* by spectral clustering."""
        data = check_data_matrix(data)
        n = data.shape[0]
        if n < self.n_clusters:
            raise EmptyDatasetError(
                f"need at least n_clusters={self.n_clusters} items, got {n}"
            )
        with timed() as clock:
            kernel = self.kernel.resolve_kernel(data)
            oracle = AffinityOracle(data, kernel, budget_entries=budget_entries)
            if self.mode == "full":
                embedding = self._embed_full(oracle)
            else:
                embedding = self._embed_nystrom(oracle)
            # Row-normalise (Ng-Jordan-Weiss) and k-means the embeddings.
            norms = np.linalg.norm(embedding, axis=1, keepdims=True)
            norms[norms == 0.0] = 1.0
            embedding = embedding / norms
            km = KMeans(self.n_clusters, seed=self.seed, n_init=4)
            km_result = km.fit(embedding)
            clusters = [
                Cluster(
                    members=c.members,
                    weights=c.weights,
                    density=c.density,
                    label=c.label,
                )
                for c in km_result.clusters
            ]
        method = "SC-FL" if self.mode == "full" else "SC-NYS"
        return DetectionResult(
            clusters=clusters,
            all_clusters=list(clusters),
            n_items=n,
            runtime_seconds=clock[0],
            counters=oracle.counters.snapshot(),
            method=method,
            metadata={"mode": self.mode, "n_landmarks": self.n_landmarks},
        )
