"""Baseline methods the paper compares against (all from scratch).

Affinity-based (noise resistant, §5.1–5.2):

* :class:`~repro.baselines.dominant_sets.DominantSets` — DS, replicator
  dynamics with peeling (Pavan & Pelillo);
* :class:`~repro.baselines.iid_detector.IIDDetector` — full-matrix
  Infection Immunization Dynamics (Rota Bulò et al.);
* :class:`~repro.baselines.sea.SEA` — shrink-and-expansion on a sparse
  affinity graph (Liu et al.);
* :class:`~repro.baselines.affinity_propagation.AffinityPropagation` —
  message passing (Frey & Dueck);
* :class:`~repro.baselines.graph_shift.GraphShift` — GS, graph-mode
  seeking (Liu & Yan, reference [19]).

Partitioning-based (Fig. 11 / Appendix C):

* :class:`~repro.baselines.kmeans.KMeans` — k-means++ with Lloyd;
* :class:`~repro.baselines.spectral.SpectralClustering` — SC-FL (full
  affinity) and SC-NYS (Nystrom approximation);
* :class:`~repro.baselines.meanshift.MeanShift` — Gaussian-kernel mode
  seeking.
"""

from repro.baselines.affinity_propagation import AffinityPropagation
from repro.baselines.dominant_sets import DominantSets
from repro.baselines.graph_shift import GraphShift
from repro.baselines.iid_detector import IIDDetector
from repro.baselines.kmeans import KMeans
from repro.baselines.meanshift import MeanShift
from repro.baselines.sea import SEA
from repro.baselines.spectral import SpectralClustering

__all__ = [
    "AffinityPropagation",
    "DominantSets",
    "GraphShift",
    "IIDDetector",
    "KMeans",
    "MeanShift",
    "SEA",
    "SpectralClustering",
]
