"""Dominant Sets (DS) — Pavan & Pelillo, TPAMI 2007.

The lineage baseline of the paper (§2/§3): dense subgraphs are extracted
one at a time by running replicator dynamics on the full affinity matrix
from the barycentre of the remaining vertices, peeling the support of the
converged strategy, and repeating until every item is peeled — the same
peeling protocol ALID adopts (§4.4).

Replicator dynamics is multiplicative, so weights outside a converged
dominant set decay geometrically but never reach exact zero; the support
is read off with a relative cutoff, as is standard for DS extraction.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import AffinitySetup, KernelParams, prepare_affinity
from repro.core.results import Cluster, DetectionResult
from repro.dynamics.replicator import replicator_dynamics
from repro.exceptions import EmptyDatasetError
from repro.utils.timing import timed

__all__ = ["DominantSets"]


class DominantSets:
    """Dominant-set peeling with replicator dynamics.

    Parameters
    ----------
    density_threshold:
        Clusters with ``pi(x)`` at or above this are dominant (paper:
        0.75, shared by all affinity-based methods for fairness).
    min_cluster_size:
        Dominant clusters smaller than this are treated as noise.
    support_cutoff:
        Relative cutoff: vertices with weight above
        ``support_cutoff * max(x)`` form the extracted dominant set.
    max_iter / tol:
        Replicator-dynamics iteration cap and convergence tolerance.
    sparsify:
        Use the LSH-sparsified affinity matrix of §5.1 instead of the
        full matrix.
    kernel:
        Kernel/LSH parameters (defaults match ALID's auto-selection).
    """

    #: Registry name (arena `Detector` protocol).
    name = "DS"
    def __init__(
        self,
        *,
        density_threshold: float = 0.75,
        min_cluster_size: int = 2,
        support_cutoff: float = 1e-2,
        max_iter: int = 1000,
        tol: float = 1e-7,
        sparsify: bool = False,
        kernel: KernelParams | None = None,
    ):
        self.density_threshold = float(density_threshold)
        self.min_cluster_size = int(min_cluster_size)
        self.support_cutoff = float(support_cutoff)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.sparsify = bool(sparsify)
        self.kernel = kernel or KernelParams()

    def fit(
        self, data: np.ndarray, *, budget_entries: int | None = None
    ) -> DetectionResult:
        """Detect dominant clusters by replicator peeling."""
        with timed() as clock:
            setup = prepare_affinity(
                data,
                self.kernel,
                sparsify=self.sparsify,
                budget_entries=budget_entries,
            )
            all_clusters = self._peel(setup)
            setup.release()
        dominant = [
            c
            for c in all_clusters
            if c.density >= self.density_threshold
            and c.size >= self.min_cluster_size
        ]
        return DetectionResult(
            clusters=dominant,
            all_clusters=all_clusters,
            n_items=setup.n,
            runtime_seconds=clock[0],
            counters=setup.oracle.counters.snapshot(),
            method="DS",
            metadata={"sparsify": self.sparsify},
        )

    def _peel(self, setup: AffinitySetup) -> list[Cluster]:
        n = setup.n
        if n == 0:
            raise EmptyDatasetError("cannot fit DominantSets on empty data")
        matrix = setup.matrix
        active = np.ones(n, dtype=bool)
        clusters: list[Cluster] = []
        label = 0
        while active.any():
            idx = np.flatnonzero(active)
            x0 = np.zeros(n)
            x0[idx] = 1.0 / idx.size
            result = replicator_dynamics(
                matrix, x0, max_iter=self.max_iter, tol=self.tol
            )
            cutoff = self.support_cutoff * float(result.x.max())
            support = np.flatnonzero(result.x > cutoff).astype(np.intp)
            # Guard: the support must lie in the active set and be
            # non-empty so every round peels at least one item.
            support = support[active[support]]
            if support.size == 0:
                support = idx[:1]
            weights = result.x[support]
            total = float(weights.sum())
            if total > 0:
                weights = weights / total
            else:
                weights = np.full(support.size, 1.0 / support.size)
            clusters.append(
                Cluster(
                    members=support,
                    weights=weights,
                    density=result.density,
                    label=label,
                )
            )
            label += 1
            # Replicator dynamics is multiplicative: vertices starting at
            # zero weight stay at zero, so restricting x0 to the active
            # set is exactly RD on the peeled submatrix — no need to zero
            # rows/columns of the matrix itself.
            active[support] = False
        return clusters
