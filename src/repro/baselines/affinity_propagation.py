"""Affinity Propagation (AP) — Frey & Dueck, Science 2007.

AP detects an unknown number of clusters by passing responsibility and
availability messages along graph edges.  The paper lists it among the
noise-resistant affinity-based methods but notes it is "very time
consuming when there are many vertices and edges" (§2) — each iteration
touches every entry of the similarity matrix, and three dense n x n
matrices (S, R, A) must be held simultaneously, which our simulated
memory model charges accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import KernelParams, prepare_affinity
from repro.core.results import Cluster, DetectionResult
from repro.exceptions import EmptyDatasetError, ValidationError
from repro.utils.rng import as_generator
from repro.utils.timing import timed

__all__ = ["AffinityPropagation"]


class AffinityPropagation:
    """Message-passing exemplar clustering on the affinity matrix.

    Parameters
    ----------
    damping:
        Message damping factor in [0.5, 1) (Frey & Dueck use 0.5-0.9;
        we default to 0.8 as tuned in DESIGN.md §7).
    max_iter:
        Iteration cap.
    convergence_iter:
        Stop early when the exemplar set is stable this many iterations.
    preference:
        Diagonal self-similarity; ``None`` uses the median off-diagonal
        similarity (the Frey & Dueck default, yielding a moderate number
        of clusters).
    sparsify:
        Use the LSH-sparsified affinity as similarity (missing entries
        are treated as strongly dissimilar), for the Fig. 6 sweeps.
    kernel:
        Kernel/LSH parameters shared with the other methods.
    """

    #: Registry name (arena `Detector` protocol).
    name = "AP"
    def __init__(
        self,
        *,
        damping: float = 0.8,
        max_iter: int = 200,
        convergence_iter: int = 15,
        preference: float | None = None,
        sparsify: bool = False,
        kernel: KernelParams | None = None,
    ):
        if not 0.5 <= damping < 1.0:
            raise ValidationError(f"damping must be in [0.5, 1), got {damping}")
        self.damping = float(damping)
        self.max_iter = int(max_iter)
        self.convergence_iter = int(convergence_iter)
        self.preference = preference
        self.sparsify = bool(sparsify)
        self.kernel = kernel or KernelParams()

    def fit(
        self, data: np.ndarray, *, budget_entries: int | None = None
    ) -> DetectionResult:
        """Cluster *data* by affinity propagation."""
        with timed() as clock:
            setup = prepare_affinity(
                data,
                self.kernel,
                sparsify=self.sparsify,
                budget_entries=budget_entries,
            )
            n = setup.n
            if n == 0:
                raise EmptyDatasetError("cannot fit AP on empty data")
            if self.sparsify:
                similarity = np.asarray(setup.matrix.todense())
                # Non-colliding pairs carry zero affinity; make them
                # clearly dissimilar rather than neutral.
                similarity[similarity == 0.0] = -1.0
            else:
                similarity = setup.matrix.copy()
            # AP holds R and A alongside S: charge both (the 3 n^2 cost
            # that makes AP the heaviest method in Fig. 7's memory panels).
            setup.oracle.charge_stored(2 * n * n)
            labels, exemplars, iterations = self._message_passing(similarity)
            clusters = self._build_clusters(labels, exemplars, setup)
            setup.oracle.release_stored(2 * n * n)
            setup.release()
        return DetectionResult(
            clusters=clusters,
            all_clusters=list(clusters),
            n_items=n,
            runtime_seconds=clock[0],
            counters=setup.oracle.counters.snapshot(),
            method="AP",
            metadata={"iterations": iterations, "sparsify": self.sparsify},
        )

    # ------------------------------------------------------------------
    def _message_passing(
        self, similarity: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        n = similarity.shape[0]
        s_matrix = similarity.astype(np.float64, copy=True)
        off_diag = s_matrix[~np.eye(n, dtype=bool)]
        preference = (
            float(np.median(off_diag))
            if self.preference is None
            else float(self.preference)
        )
        np.fill_diagonal(s_matrix, preference)
        # Tiny deterministic jitter breaks exemplar ties (standard trick).
        rng = as_generator(self.kernel.seed)
        s_matrix += 1e-12 * rng.standard_normal((n, n)) * (
            np.abs(s_matrix).max() + 1e-12
        )

        responsibility = np.zeros((n, n))
        availability = np.zeros((n, n))
        stable_rounds = 0
        last_exemplars: np.ndarray | None = None
        iterations = 0
        idx = np.arange(n)
        for iterations in range(1, self.max_iter + 1):
            # Responsibility update: r(i,k) = s(i,k) - max_{k'!=k}(a+s).
            a_plus_s = availability + s_matrix
            first_max_idx = np.argmax(a_plus_s, axis=1)
            first_max = a_plus_s[idx, first_max_idx]
            a_plus_s[idx, first_max_idx] = -np.inf
            second_max = a_plus_s.max(axis=1)
            new_r = s_matrix - first_max[:, None]
            new_r[idx, first_max_idx] = (
                s_matrix[idx, first_max_idx] - second_max
            )
            responsibility = (
                self.damping * responsibility + (1.0 - self.damping) * new_r
            )
            # Availability update.
            rp = np.maximum(responsibility, 0.0)
            np.fill_diagonal(rp, np.diag(responsibility))
            col_sums = rp.sum(axis=0)
            new_a = col_sums[None, :] - rp
            diag_a = np.diag(new_a).copy()
            new_a = np.minimum(new_a, 0.0)
            np.fill_diagonal(new_a, diag_a)
            availability = (
                self.damping * availability + (1.0 - self.damping) * new_a
            )
            # Convergence: exemplar set stability.
            evidence = np.diag(availability) + np.diag(responsibility)
            exemplars = np.flatnonzero(evidence > 0)
            if last_exemplars is not None and np.array_equal(
                exemplars, last_exemplars
            ):
                stable_rounds += 1
                if stable_rounds >= self.convergence_iter and exemplars.size:
                    break
            else:
                stable_rounds = 0
            last_exemplars = exemplars

        evidence = np.diag(availability) + np.diag(responsibility)
        exemplars = np.flatnonzero(evidence > 0)
        if exemplars.size == 0:
            # Degenerate: everything in one cluster around the best point.
            exemplars = np.asarray([int(np.argmax(evidence))])
        assignment = exemplars[
            np.argmax(s_matrix[:, exemplars], axis=1)
        ]
        assignment[exemplars] = exemplars
        return assignment, exemplars, iterations

    def _build_clusters(
        self, assignment: np.ndarray, exemplars: np.ndarray, setup
    ) -> list[Cluster]:
        clusters: list[Cluster] = []
        for label, exemplar in enumerate(exemplars):
            members = np.flatnonzero(assignment == exemplar).astype(np.intp)
            if members.size == 0:
                continue
            weights = np.full(members.size, 1.0 / members.size)
            density = self._cluster_density(members, setup)
            clusters.append(
                Cluster(
                    members=members,
                    weights=weights,
                    density=density,
                    label=label,
                    seed=int(exemplar),
                )
            )
        return clusters

    @staticmethod
    def _cluster_density(members: np.ndarray, setup) -> float:
        """Uniform-weight graph density of a cluster (reads stored entries)."""
        if members.size < 2:
            return 0.0
        from repro.baselines.common import submatrix

        local = submatrix(setup.matrix, members)
        m = members.size
        return float(local.sum() - np.trace(local)) / (m * m)
