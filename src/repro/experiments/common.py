"""Shared experiment plumbing: result rows, tables and method runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.baselines import (
    AffinityPropagation,
    IIDDetector,
    SEA,
)
from repro.baselines.common import KernelParams
from repro.core.alid import ALID
from repro.core.config import ALIDConfig
from repro.core.results import DetectionResult
from repro.datasets.base import Dataset
from repro.eval.metrics import average_f1
from repro.exceptions import BudgetExceededError, ValidationError

__all__ = [
    "Row",
    "ExperimentTable",
    "affinity_method",
    "evaluate_detection",
    "AFFINITY_METHODS",
]

AFFINITY_METHODS = ("AP", "SEA", "IID", "ALID")


@dataclass
class Row:
    """One measurement: a method at one parameter point."""

    method: str
    params: dict[str, Any] = field(default_factory=dict)
    avg_f: float | None = None
    runtime_seconds: float | None = None
    work_entries: int | None = None
    peak_entries: int | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def memory_mb(self) -> float | None:
        """Simulated memory (8 bytes per stored affinity entry)."""
        if self.peak_entries is None:
            return None
        return self.peak_entries * 8 / 1e6


@dataclass
class ExperimentTable:
    """A named collection of rows, renderable as an aligned text table."""

    name: str
    rows: list[Row] = field(default_factory=list)
    notes: str = ""

    def add(self, row: Row) -> None:
        """Append one measurement."""
        self.rows.append(row)

    def series(self, method: str, x_key: str, y_attr: str) -> tuple[list, list]:
        """Extract an (x, y) series for one method.

        ``y_attr`` may be a Row attribute (``avg_f``, ``runtime_seconds``,
        ``memory_mb``, ...) or a key into ``extras``.
        """
        xs, ys = [], []
        for row in self.rows:
            if row.method != method or x_key not in row.params:
                continue
            y = getattr(row, y_attr, None)
            if y is None and y_attr in row.extras:
                y = row.extras[y_attr]
            if y is None:
                continue
            xs.append(row.params[x_key])
            ys.append(y)
        return xs, ys

    def render(self, columns: list[str] | None = None) -> str:
        """Render the table as aligned text (the bench output format)."""
        if not self.rows:
            return f"== {self.name} ==\n(no rows)"
        param_keys: list[str] = []
        for row in self.rows:
            for key in row.params:
                if key not in param_keys:
                    param_keys.append(key)
        headers = ["method", *param_keys, "AVG-F", "runtime_s", "mem_MB", "work"]
        lines = []
        for row in self.rows:
            cells = [row.method]
            for key in param_keys:
                cells.append(_fmt(row.params.get(key)))
            cells.append(_fmt(row.avg_f))
            cells.append(_fmt(row.runtime_seconds))
            cells.append(_fmt(row.memory_mb))
            cells.append(_fmt(row.work_entries))
            lines.append(cells)
        widths = [
            max(len(headers[j]), *(len(line[j]) for line in lines))
            for j in range(len(headers))
        ]
        def join(cells):
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        out = [f"== {self.name} ==", join(headers), join(["-" * w for w in widths])]
        out.extend(join(line) for line in lines)
        if self.notes:
            out.append(self.notes)
        return "\n".join(out)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def affinity_method(
    name: str,
    *,
    sparsify: bool,
    kernel: KernelParams | None = None,
    alid_config: ALIDConfig | None = None,
    density_threshold: float = 0.75,
):
    """Build one of the paper's four affinity-based methods by name.

    All four share kernel parameters so Fig. 6 comparisons hold the
    affinity definition fixed and vary only the sparsification.
    """
    kernel = kernel or KernelParams()
    if name == "ALID":
        config = alid_config or ALIDConfig(
            density_threshold=density_threshold,
            lsh_r=kernel.lsh_r,
            lsh_projections=kernel.lsh_projections,
            lsh_tables=kernel.lsh_tables,
            kernel_k=kernel.kernel_k,
            kernel_p=kernel.kernel_p,
            kernel_target_affinity=kernel.kernel_target_affinity,
            seed=kernel.seed,
        )
        return ALID(config)
    if name == "IID":
        return IIDDetector(
            sparsify=sparsify,
            kernel=kernel,
            density_threshold=density_threshold,
        )
    if name == "SEA":
        return SEA(
            sparsify=sparsify,
            kernel=kernel,
            density_threshold=density_threshold,
        )
    if name == "AP":
        return AffinityPropagation(sparsify=sparsify, kernel=kernel)
    raise ValidationError(f"unknown affinity method {name!r}")


def evaluate_detection(
    result: DetectionResult, dataset: Dataset
) -> tuple[float, Row]:
    """AVG-F of a detection result plus a pre-filled measurement row."""
    truth = dataset.truth_clusters()
    avg = average_f1(result.member_lists(), truth) if truth else float("nan")
    row = Row(
        method=result.method,
        avg_f=avg,
        runtime_seconds=result.runtime_seconds,
        work_entries=(
            result.counters.entries_computed if result.counters else None
        ),
        peak_entries=(
            result.counters.entries_stored_peak if result.counters else None
        ),
    )
    return avg, row


def run_method_guarded(method, data: np.ndarray, *, budget_entries=None):
    """Fit a method, returning None when it exceeds the memory budget.

    Mirrors the paper's protocol of stopping baselines at the RAM limit
    (Fig. 9): a budget hit is an expected outcome, not an error.
    """
    try:
        if budget_entries is not None:
            return method.fit(data, budget_entries=budget_entries)
        return method.fit(data)
    except BudgetExceededError:
        return None
