"""Fig. 10 — qualitative SIFT dominant-cluster detection, quantified.

The paper shows the "KFC grandpa" image with detected visual-word SIFTs
in green and filtered noise SIFTs in red.  With the generator's ground
truth available, the same assessment becomes quantitative: for each
method we report

* *kept recall* — fraction of true visual-word descriptors assigned to
  some dominant cluster (the green points that should be green);
* *noise filter rate* — fraction of noise descriptors left unassigned
  (the red points that should be red);
* AVG-F for reference.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.common import KernelParams
from repro.core.config import ALIDConfig
from repro.datasets.sift import make_sift
from repro.experiments.common import (
    ExperimentTable,
    affinity_method,
    evaluate_detection,
)
from repro.parallel.palid import PALID

__all__ = ["run_sift_quality"]


def run_sift_quality(
    n_items: int,
    *,
    methods: Sequence[str] = ("PALID", "ALID", "IID", "SEA", "AP"),
    n_clusters: int = 20,
    delta: int = 400,
    seed: int = 0,
) -> ExperimentTable:
    """Run the Fig. 10 proxy on one SIFT-like corpus."""
    table = ExperimentTable(
        name=f"Fig10 SIFT visual-word detection quality (n={n_items})",
        notes=(
            "kept_recall ~ green points correctly kept; "
            "noise_filtered ~ red points correctly filtered"
        ),
    )
    dataset = make_sift(int(n_items), n_clusters=n_clusters, seed=seed)
    truth_mask = dataset.labels >= 0
    kernel = KernelParams(seed=seed)
    for method_name in methods:
        if method_name == "PALID":
            detector = PALID(ALIDConfig(delta=delta, seed=seed))
        elif method_name == "ALID":
            detector = affinity_method(
                "ALID",
                sparsify=False,
                kernel=kernel,
                alid_config=ALIDConfig(delta=delta, seed=seed),
            )
        else:
            detector = affinity_method(
                method_name, sparsify=False, kernel=kernel
            )
        result = detector.fit(dataset.data)
        _, row = evaluate_detection(result, dataset)
        row.params = {"n": int(n_items)}
        # Paper Fig. 10: "green points are SIFTs from dominant clusters
        # with high densities (pi(x) > 0.75)" — the same filter applies
        # to every method, including AP whose raw output assigns all
        # points.
        assigned = np.zeros(dataset.n, dtype=bool)
        for cluster in result.clusters:
            if cluster.density >= 0.75:
                assigned[cluster.members] = True
        kept_recall = (
            float((assigned & truth_mask).sum()) / max(1, truth_mask.sum())
        )
        noise_filtered = float(
            (~assigned & ~truth_mask).sum()
        ) / max(1, (~truth_mask).sum())
        row.extras["kept_recall"] = kept_recall
        row.extras["noise_filtered"] = noise_filtered
        table.add(row)
    return table
