"""Table 1 — empirical verification of ALID's complexity regimes.

Runs ALID alone across sizes for each synthetic regime and fits log-log
slopes of its *work* (affinity entries computed, the paper's runtime
driver) and *space* (peak entries stored) against n.  Paper expectations
(§5.2, Fig. 7 slopes):

=============  ==================  ===============
regime         theoretical time    observed slope
=============  ==================  ===============
a* = omega*n   O(C(omega n^2))     ~2
a* = n^0.9     O(C n^1.9)          ~1.7 (measured)
a* <= P        O(C (P+delta) n)    ~1
=============  ==================  ===============
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.alid import ALID
from repro.core.config import ALIDConfig
from repro.datasets.synthetic import make_synthetic_mixture
from repro.eval.orders import loglog_slope, loglog_slope_ci
from repro.experiments.common import ExperimentTable, evaluate_detection

__all__ = ["run_complexity_table", "REGIME_EXPECTED_SLOPES"]

REGIME_EXPECTED_SLOPES = {
    "omega_n": 2.0,
    "n_eta": 1.7,
    "bounded": 1.0,
}


def run_complexity_table(
    sizes: Sequence[int],
    *,
    regimes: Sequence[str] = ("omega_n", "n_eta", "bounded"),
    bound: int = 1000,
    eta: float = 0.9,
    delta: int = 800,
    seed: int = 0,
) -> ExperimentTable:
    """Measure ALID work/space growth orders per regime.

    Returns a table whose per-regime ``slope_runtime`` / ``slope_work`` /
    ``slope_space`` extras (attached to the last row of each regime) are
    the measured log-log slopes to compare against
    :data:`REGIME_EXPECTED_SLOPES`.  Runtime is the primary order measure
    (matching the paper's Fig. 7 reading); the work counter can come in
    *below* the theoretical bound in the bounded regime because noise
    items that collide with nothing in the LSH index cost no kernel
    evaluations at all.
    """
    table = ExperimentTable(
        name="Table1 complexity regimes (ALID work/space growth orders)",
        notes="expected slopes: omega_n ~2, n_eta ~1.7, bounded ~1",
    )
    for regime in regimes:
        runtime_series: list[tuple[int, float]] = []
        work_series: list[tuple[int, int]] = []
        space_series: list[tuple[int, int]] = []
        for n in sizes:
            dataset = make_synthetic_mixture(
                int(n), regime=regime, bound=bound, eta=eta, seed=seed
            )
            detector = ALID(ALIDConfig(delta=delta, seed=seed))
            result = detector.fit(dataset.data)
            _, row = evaluate_detection(result, dataset)
            row.params = {"regime": regime, "n": int(n)}
            row.extras["a_star"] = dataset.largest_cluster_size()
            table.add(row)
            runtime_series.append((int(n), result.runtime_seconds))
            work_series.append((int(n), result.counters.entries_computed))
            space_series.append((int(n), result.counters.entries_stored_peak))
        if len(work_series) >= 2:
            xs = [x for x, _ in work_series]
            last = table.rows[-1]
            last.extras["slope_runtime"] = loglog_slope(
                xs, [max(1e-6, y) for _, y in runtime_series]
            )
            work_ys = [max(1, y) for _, y in work_series]
            slope, low, high = loglog_slope_ci(xs, work_ys, seed=seed)
            last.extras["slope_work"] = slope
            last.extras["slope_work_ci"] = (round(low, 3), round(high, 3))
            last.extras["slope_space"] = loglog_slope(
                xs, [max(1, y) for _, y in space_series]
            )
            last.extras["expected_slope"] = REGIME_EXPECTED_SLOPES[regime]
    return table
