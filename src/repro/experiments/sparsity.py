"""Fig. 6 — sparsity influence analysis (paper §5.1).

Sweeps the LSH segment length ``r`` and records, for AP / SEA / IID on
the LSH-sparsified affinity matrix and for ALID (which shares the same
LSH module through CIVS):

* AVG-F (Fig. 6(a)/(b)),
* runtime (Fig. 6(c)/(d)),
* the sparse degree of the matrix each method consumed.

Expected shape (paper): baselines need a low sparse degree (large r) to
reach their best AVG-F, while ALID stays accurate at extreme sparse
degrees because the ROI-restricted local matrices preserve the dense
subgraphs' cohesiveness.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.affinity.sparse import sparse_degree
from repro.baselines.common import KernelParams
from repro.datasets.base import Dataset
from repro.experiments.common import (
    AFFINITY_METHODS,
    ExperimentTable,
    affinity_method,
    evaluate_detection,
)

__all__ = ["run_sparsity_influence", "default_r_sweep"]


def default_r_sweep(
    dataset: Dataset,
    *,
    multipliers: Sequence[float] = (3.0, 5.0, 7.5, 10.0, 15.0, 20.0, 30.0),
    target_affinity: float = 0.9,
    seed: int = 0,
) -> tuple[list[float], float]:
    """Data-adaptive segment-length sweep for Fig. 6.

    The paper sweeps r over 0.2-1.4 on its (normalised) NART features;
    the equivalent sweep for arbitrary data spans multiples of the
    intra-cluster distance scale ``d_q`` (the distance whose affinity is
    *target_affinity* under the auto-selected kernel).  Small multiples
    give near-total sparsity (left edge of Fig. 6), large multiples give
    dense matrices (right edge).

    Returns
    -------
    (r_values, kernel_k)
        The sweep and the kernel scale it was derived from (pass the
        latter to :func:`run_sparsity_influence` so affinities stay
        fixed across the sweep).
    """
    params = KernelParams(seed=seed, kernel_target_affinity=target_affinity)
    kernel = params.resolve_kernel(dataset.data)
    d_q = kernel.distance_from_affinity(target_affinity)
    return [float(m) * d_q for m in multipliers], kernel.k


def run_sparsity_influence(
    dataset: Dataset,
    r_values: Sequence[float],
    *,
    methods: Sequence[str] = AFFINITY_METHODS,
    kernel_k: float | None = None,
    lsh_projections: int = 40,
    lsh_tables: int = 50,
    density_threshold: float = 0.75,
    seed: int = 0,
) -> ExperimentTable:
    """Run the Fig. 6 sweep on one dataset.

    Parameters
    ----------
    dataset:
        NART-like or Sub-NDI-like dataset (paper §5.1).
    r_values:
        The LSH segment lengths to sweep (paper: 0.2-1.4 on NART).
    methods:
        Subset of ("AP", "SEA", "IID", "ALID").
    kernel_k:
        Fixed kernel scale; ``None`` auto-selects once per dataset so all
        r-points share the same affinities.
    """
    table = ExperimentTable(
        name=f"Fig6 sparsity influence on {dataset.name}",
        notes=(
            "paper expectation: baselines peak only at low sparse degree; "
            "ALID stays accurate at sparse degree ~0.998"
        ),
    )
    base_params = KernelParams(
        kernel_k=kernel_k,
        lsh_projections=lsh_projections,
        lsh_tables=lsh_tables,
        seed=seed,
    )
    if kernel_k is None:
        # Resolve once so every method and r-value sees identical affinities.
        resolved = base_params.resolve_kernel(dataset.data)
        base_params = KernelParams(
            kernel_k=resolved.k,
            lsh_projections=lsh_projections,
            lsh_tables=lsh_tables,
            seed=seed,
        )
    for r in r_values:
        params = KernelParams(
            kernel_k=base_params.kernel_k,
            lsh_r=float(r),
            lsh_projections=lsh_projections,
            lsh_tables=lsh_tables,
            seed=seed,
        )
        sd_cache: float | None = None
        for name in methods:
            method = affinity_method(
                name,
                sparsify=True,
                kernel=params,
                density_threshold=density_threshold,
            )
            result = method.fit(dataset.data)
            _, row = evaluate_detection(result, dataset)
            row.params = {"r": float(r)}
            if name == "ALID":
                # ALID never materialises a matrix; its effective sparse
                # degree is the fraction of the n^2 entries it computed.
                n = dataset.n
                row.extras["sparse_degree"] = 1.0 - min(
                    1.0, result.counters.entries_computed / (n * n)
                )
            else:
                if sd_cache is None:
                    sd_cache = _matrix_sparse_degree(dataset, params)
                row.extras["sparse_degree"] = sd_cache
            table.add(row)
    return table


def _matrix_sparse_degree(dataset: Dataset, params: KernelParams) -> float:
    """Sparse degree of the LSH-sparsified matrix at these parameters."""
    from repro.baselines.common import prepare_affinity

    setup = prepare_affinity(dataset.data, params, sparsify=True)
    degree = sparse_degree(setup.matrix)
    setup.release()
    return degree
