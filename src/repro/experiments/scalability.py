"""Fig. 7 — scalability analysis (paper §5.2).

Sweeps the dataset size ``n`` for each of the paper's three synthetic
regimes (a* = omega*n/20, n^eta/20, P/20) and for NDI subsets, recording
runtime, simulated memory and AVG-F per method.  Read with
:func:`repro.eval.orders.loglog_slope`, the runtime/memory series expose
the empirical growth orders the paper reports:

* a* = omega*n : ALID slope ~2 (clusters grow with n; Table 1 row 1),
* a* = n^0.9   : ALID slope ~1.7,
* a* = P       : ALID slope ~1 — while the full-matrix baselines stay at
  slope ~2 everywhere.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.common import KernelParams
from repro.core.config import ALIDConfig
from repro.experiments.common import (
    ExperimentTable,
    affinity_method,
    evaluate_detection,
    run_method_guarded,
)

__all__ = ["run_scalability"]


def run_scalability(
    dataset_factory,
    sizes: Sequence[int],
    *,
    methods: Sequence[str] = ("AP", "IID", "SEA", "ALID"),
    baseline_cap: int | None = None,
    budget_entries: int | None = None,
    delta: int = 800,
    density_threshold: float = 0.75,
    seed: int = 0,
    name: str = "Fig7 scalability",
) -> ExperimentTable:
    """Run one Fig. 7 column (one regime / dataset family).

    Parameters
    ----------
    dataset_factory:
        Callable ``(n, seed) -> Dataset`` generating one size point.
    sizes:
        Data sizes to sweep (paper: 10^3 .. 10^5).
    methods:
        Methods to run at each size.
    baseline_cap:
        Skip non-ALID methods above this size (the paper stops baselines
        at the 12 GB RAM limit; this is the coarse equivalent for cheap
        bench runs).  ``budget_entries`` is the precise equivalent.
    budget_entries:
        Simulated-memory cap passed to every affinity-based method;
        methods that exceed it are recorded as capped rows.
    """
    table = ExperimentTable(
        name=name,
        notes=(
            "log-log slopes of runtime/memory vs n give the empirical "
            "growth orders (paper Fig. 7 / Table 1)"
        ),
    )
    for n in sizes:
        dataset = dataset_factory(int(n), seed)
        for method_name in methods:
            if (
                method_name != "ALID"
                and baseline_cap is not None
                and n > baseline_cap
            ):
                continue
            detector = _build(method_name, delta, density_threshold, seed)
            result = run_method_guarded(
                detector, dataset.data, budget_entries=budget_entries
            )
            if result is None:
                # Budget hit: record the stop, as the paper does when a
                # baseline reaches the 12 GB RAM limit.
                from repro.experiments.common import Row

                table.add(
                    Row(
                        method=method_name,
                        params={"n": int(n)},
                        extras={"budget_exceeded": True},
                    )
                )
                continue
            _, row = evaluate_detection(result, dataset)
            row.params = {"n": int(n)}
            row.extras["a_star"] = dataset.largest_cluster_size()
            table.add(row)
    return table


def _build(method_name: str, delta: int, density_threshold: float, seed: int):
    kernel = KernelParams(seed=seed)
    if method_name == "ALID":
        return affinity_method(
            "ALID",
            sparsify=False,
            kernel=kernel,
            alid_config=ALIDConfig(
                delta=delta, density_threshold=density_threshold, seed=seed
            ),
        )
    if method_name == "SEA":
        # Substitution (documented in EXPERIMENTS.md): the paper feeds
        # SEA the complete matrix, but full-graph replicator peeling of
        # n noise items is O(n^3) — infeasible for a pure-Python RD.  A
        # high-recall LSH graph (20x the intra-cluster scale) preserves
        # SEA's quality and still shows its super-ALID growth in work
        # and memory (intra-cluster edges alone grow quadratically in
        # the omega_n regime).
        return affinity_method(
            "SEA",
            sparsify=True,
            kernel=KernelParams(seed=seed, lsh_r_scale=20.0),
            density_threshold=density_threshold,
        )
    # IID and AP follow the paper's Fig. 7 protocol: the full affinity
    # matrix (their best-quality configuration).
    return affinity_method(
        method_name,
        sparsify=False,
        kernel=kernel,
        density_threshold=density_threshold,
    )
