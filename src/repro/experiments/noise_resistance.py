"""Fig. 11 / Appendix C — noise-resistance analysis.

Sweeps the noise degree (Eq. 35: #noise / #ground-truth) on NART-like or
Sub-NDI-like data and compares the affinity-based methods (AP, IID, SEA,
ALID, run on the full matrix to preserve cohesiveness, as the paper does)
with the partitioning-based methods (KM, SC-FL, SC-NYS, given the true
cluster count + 1 per the paper's protocol) and mean shift.

Expected shape (paper): partitioning methods collapse as noise grows —
they must place every noise item somewhere — while the affinity-based
methods hold their AVG-F.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines import KMeans, MeanShift, SpectralClustering
from repro.baselines.common import KernelParams
from repro.core.config import ALIDConfig
from repro.experiments.common import (
    ExperimentTable,
    affinity_method,
    evaluate_detection,
)

__all__ = ["run_noise_resistance", "NOISE_METHODS"]

NOISE_METHODS = ("AP", "IID", "SEA", "ALID", "KM", "SC-FL", "SC-NYS", "MS")


def run_noise_resistance(
    dataset_factory,
    noise_degrees: Sequence[float],
    *,
    methods: Sequence[str] = NOISE_METHODS,
    ms_bandwidth: float | None = None,
    delta: int = 400,
    density_threshold: float = 0.75,
    seed: int = 0,
    name: str = "Fig11 noise resistance",
) -> ExperimentTable:
    """Run the Fig. 11 sweep.

    Parameters
    ----------
    dataset_factory:
        Callable ``(noise_degree, seed) -> Dataset``.
    noise_degrees:
        The x-axis of Fig. 11 (paper: 0 to 6).
    ms_bandwidth:
        Mean-shift bandwidth; ``None`` auto-estimates per point (the
        paper tunes MS optimally, so callers may fix a tuned value).
    """
    table = ExperimentTable(
        name=name,
        notes=(
            "paper expectation: partitioning methods (KM/SC-*) collapse "
            "with noise; affinity methods (AP/IID/SEA/ALID) stay high"
        ),
    )
    for nd in noise_degrees:
        dataset = dataset_factory(float(nd), seed)
        k_true = dataset.n_true_clusters
        kernel = KernelParams(seed=seed)
        for method_name in methods:
            detector = _build(
                method_name,
                k_true,
                kernel,
                ms_bandwidth,
                delta,
                density_threshold,
                seed,
            )
            result = detector.fit(dataset.data)
            _, row = evaluate_detection(result, dataset)
            row.params = {"noise_degree": float(nd)}
            table.add(row)
    return table


def _build(
    method_name: str,
    k_true: int,
    kernel: KernelParams,
    ms_bandwidth: float | None,
    delta: int,
    density_threshold: float,
    seed: int,
):
    if method_name in ("AP", "IID", "SEA", "ALID"):
        # Full affinity matrix "to preserve the original cohesiveness"
        # (paper Appendix C protocol).  SEA runs on a high-recall LSH
        # graph instead — full-graph replicator peeling of the noise
        # items is O(n^3) in a pure-Python RD, and at 20x the
        # intra-cluster scale the graph keeps essentially every edge
        # that carries cohesiveness (documented in EXPERIMENTS.md).
        if method_name == "ALID":
            return affinity_method(
                "ALID",
                sparsify=False,
                kernel=kernel,
                alid_config=ALIDConfig(
                    delta=delta,
                    density_threshold=density_threshold,
                    seed=seed,
                ),
            )
        if method_name == "SEA":
            return affinity_method(
                "SEA",
                sparsify=True,
                kernel=KernelParams(seed=seed, lsh_r_scale=20.0),
                density_threshold=density_threshold,
            )
        return affinity_method(
            method_name,
            sparsify=False,
            kernel=kernel,
            density_threshold=density_threshold,
        )
    # Partitioning methods get the true count + 1 (noise as an extra
    # cluster), following Liu et al. as the paper does.
    if method_name == "KM":
        return KMeans(k_true + 1, seed=seed)
    if method_name == "SC-FL":
        return SpectralClustering(k_true + 1, mode="full", kernel=kernel, seed=seed)
    if method_name == "SC-NYS":
        return SpectralClustering(
            k_true + 1, mode="nystrom", kernel=kernel, seed=seed
        )
    if method_name == "MS":
        return MeanShift(bandwidth=ms_bandwidth, seed=seed)
    raise ValueError(f"unknown method {method_name!r}")
