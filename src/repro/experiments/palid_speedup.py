"""Table 2 — PALID parallel speedup on SIFT-like data (paper §5.3).

The paper processes 50M SIFT features with 1/2/4/8 Spark executors and
reports near-linear speedup (7.51x at 8).  This runner measures the same
executor sweep on the local multiprocessing MapReduce engine against a
SIFT-like workload of configurable size; the quality (AVG-F against the
generator's ground truth) is also recorded so the speedup is not bought
with accuracy.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import ALIDConfig
from repro.datasets.sift import make_sift
from repro.experiments.common import ExperimentTable, evaluate_detection
from repro.parallel.palid import PALID

__all__ = ["run_palid_speedup"]


def run_palid_speedup(
    n_items: int,
    executor_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    n_clusters: int = 50,
    delta: int = 400,
    seed: int = 0,
) -> ExperimentTable:
    """Measure PALID wall-clock speedup across executor counts.

    The single-executor run is the baseline; every row records its
    speedup ratio relative to it (paper Table 2's last column).
    """
    table = ExperimentTable(
        name=f"Table2 PALID speedup on SIFT-like (n={n_items})",
        notes=(
            "paper: 1.92x/2, 3.84x/4, 7.51x/8 executors at 50M scale; "
            "detect_speedup excludes the shared one-time index build "
            "(stored in MongoDB in the paper's architecture)"
        ),
    )
    dataset = make_sift(int(n_items), n_clusters=n_clusters, seed=seed)
    config = ALIDConfig(delta=delta, seed=seed)
    base_total: float | None = None
    base_detect: float | None = None
    for n_exec in executor_counts:
        detector = PALID(config, n_executors=int(n_exec))
        result = detector.fit(dataset.data)
        _, row = evaluate_detection(result, dataset)
        row.params = {"executors": int(n_exec)}
        detect_seconds = result.metadata["mapreduce_seconds"]
        if base_total is None:
            base_total = result.runtime_seconds
            base_detect = detect_seconds
        row.extras["speedup_total"] = (
            base_total / result.runtime_seconds
            if result.runtime_seconds > 0
            else float("nan")
        )
        row.extras["detect_seconds"] = detect_seconds
        row.extras["speedup"] = (
            base_detect / detect_seconds if detect_seconds > 0 else float("nan")
        )
        row.extras["n_seeds"] = result.metadata["n_seeds"]
        table.add(row)
    return table
