"""Fig. 9 — single-machine scalability on SIFT subsets (paper §5.3).

Uniformly sampled subsets of a SIFT-like corpus are fed to the
affinity-based methods; every method runs under a simulated-memory
budget standing in for the paper's 12 GB RAM cap.  Baselines that exceed
the budget stop — the paper's "all experiments are stopped when the
12GB RAM limit is reached" — while ALID keeps scaling (it processed
1.29M SIFTs where the baselines stalled at 0.04M).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.common import KernelParams
from repro.core.config import ALIDConfig
from repro.datasets.sift import make_sift
from repro.experiments.common import (
    ExperimentTable,
    Row,
    affinity_method,
    evaluate_detection,
    run_method_guarded,
)

__all__ = ["run_sift_scalability"]


def run_sift_scalability(
    sizes: Sequence[int],
    *,
    methods: Sequence[str] = ("AP", "IID", "SEA", "ALID"),
    budget_entries: int | None = 2_000_000,
    n_clusters: int = 50,
    delta: int = 800,
    seed: int = 0,
) -> ExperimentTable:
    """Run the Fig. 9 subset sweep.

    Parameters
    ----------
    sizes:
        Subset sizes (paper: up to 1.29M for ALID, 0.04M for baselines).
    budget_entries:
        Simulated-memory cap in affinity entries (the 12 GB stand-in);
        ``None`` disables the cap.
    """
    table = ExperimentTable(
        name="Fig9 SIFT subset scalability (memory-budgeted)",
        notes=(
            "baselines exceeding the budget are recorded as "
            "budget_exceeded=True, mirroring the paper's RAM-limit stops"
        ),
    )
    base = make_sift(int(max(sizes)), n_clusters=n_clusters, seed=seed)
    for n in sizes:
        dataset = base.subsample(int(n), seed=seed) if n < base.n else base
        kernel = KernelParams(seed=seed)
        for method_name in methods:
            if method_name == "ALID":
                detector = affinity_method(
                    "ALID",
                    sparsify=False,
                    kernel=kernel,
                    alid_config=ALIDConfig(delta=delta, seed=seed),
                )
            elif method_name == "SEA":
                # Same substitution as Fig. 7: high-recall LSH graph in
                # place of the infeasible full-graph replicator peeling.
                detector = affinity_method(
                    "SEA",
                    sparsify=True,
                    kernel=KernelParams(seed=seed, lsh_r_scale=20.0),
                )
            else:
                detector = affinity_method(
                    method_name, sparsify=False, kernel=kernel
                )
            result = run_method_guarded(
                detector, dataset.data, budget_entries=budget_entries
            )
            if result is None:
                table.add(
                    Row(
                        method=method_name,
                        params={"n": int(n)},
                        extras={"budget_exceeded": True},
                    )
                )
                continue
            _, row = evaluate_detection(result, dataset)
            row.params = {"n": int(n)}
            table.add(row)
    return table
