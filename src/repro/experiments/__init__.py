"""Experiment harness: one runner per table/figure of the paper's §5.

Every runner returns an :class:`~repro.experiments.common.ExperimentTable`
whose rows mirror the series the paper plots, so benchmarks can print the
same comparisons the paper reports (see DESIGN.md §4 for the index).
"""

from repro.experiments.common import ExperimentTable, Row
from repro.experiments.complexity_table import run_complexity_table
from repro.experiments.noise_resistance import run_noise_resistance
from repro.experiments.palid_speedup import run_palid_speedup
from repro.experiments.scalability import run_scalability
from repro.experiments.sift_quality import run_sift_quality
from repro.experiments.sift_scalability import run_sift_scalability
from repro.experiments.sparsity import run_sparsity_influence

__all__ = [
    "ExperimentTable",
    "Row",
    "run_complexity_table",
    "run_noise_resistance",
    "run_palid_speedup",
    "run_scalability",
    "run_sift_quality",
    "run_sift_scalability",
    "run_sparsity_influence",
]
