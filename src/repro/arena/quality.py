"""Ground-truth-free per-cluster quality metrics.

Four deterministic scores per detected cluster, computed without any
ground truth (the serving operator's view — truth is a luxury of
synthetic workloads):

* **silhouette** — mean silhouette coefficient of the cluster's members
  (Rousseeuw 1987): cohesion against the nearest other cluster, in
  ``[-1, 1]``.  A singleton cluster and a single-cluster detection both
  score 0 (the coefficient is undefined there; sklearn's convention).
* **conductance** — the cluster's cut weight over the smaller side's
  volume on the Laplacian-kernel affinity graph (paper Eq. 1 with
  ``a_ii = 0``), in ``[0, 1]``; low conductance = a well-separated
  dominant cluster, the §3 infectivity intuition made measurable.
* **coverage** — fraction of the corpus the cluster holds.  Dominant
  clusters cover only part of the data (the paper's reason for AVG-F
  over NMI), so coverage is reported per cluster, not assumed to sum
  to 1.
* **stability** — mean best-F1 of the cluster against seed-perturbed
  refits (the clubmark-style resampling check): a cluster that
  dissolves when only the seed schedule changes is an artifact, not a
  dominant cluster.

All scores are deterministic for a fixed dataset and seed — stability
derives its refit seeds arithmetically and every sampled quantity runs
through :mod:`repro.utils.rng`.  When ground truth *is* available the
arena additionally reports the paper's AVG-F via
:func:`repro.eval.metrics.average_f1`; that metric lives in
:mod:`repro.eval`, not here, because it is truth-bound.

Overlapping detections (methods whose shortlists share members) are
scored per cluster independently — each score only reads the cluster's
own member set against the rest, so overlap cannot double-count or
crash any metric.
"""

from __future__ import annotations

import numpy as np

from repro.affinity.kernel import (
    LaplacianKernel,
    pairwise_distances,
    suggest_scaling_factor,
)
from repro.eval.metrics import match_clusters
from repro.exceptions import ValidationError

__all__ = [
    "QUALITY_METRICS",
    "annotate_snapshot",
    "conductance_scores",
    "coverage_scores",
    "score_clusters",
    "silhouette_scores",
    "stability_scores",
]

#: Every metric :func:`score_clusters` can emit, in reporting order.
QUALITY_METRICS = ("silhouette", "conductance", "coverage", "stability")

#: Row-block size for the O(n^2) degree computation of
#: :func:`conductance_scores` (bounds transient memory, not work).
_DEGREE_BLOCK_ROWS = 1024


def _member_arrays(clusters) -> list[np.ndarray]:
    """Member index arrays of *clusters* (Cluster objects or arrays)."""
    return [
        np.asarray(getattr(c, "members", c)).ravel().astype(np.intp)
        for c in clusters
    ]


def _labels_of(clusters) -> list[int]:
    """Cluster labels (falling back to positions for plain arrays)."""
    return [
        int(getattr(c, "label", position))
        for position, c in enumerate(clusters)
    ]


def silhouette_scores(data: np.ndarray, clusters) -> dict[int, float]:
    """Mean silhouette coefficient per cluster, keyed by cluster label.

    For member ``i`` of cluster ``C``: ``a`` is the mean distance to the
    other members of ``C``, ``b`` the smallest mean distance to the
    members of any other cluster, and the coefficient is
    ``(b - a) / max(a, b)``.  Degenerate cases follow the usual
    convention and score 0: singleton clusters (``a`` undefined), a
    single-cluster detection (``b`` undefined), and coincident points
    (``a == b == 0``).  Overlap is handled exactly — a member shared
    with another cluster is excluded from that cluster's mean when it
    is scored against it.
    """
    data = np.asarray(data, dtype=np.float64)
    members = _member_arrays(clusters)
    labels = _labels_of(clusters)
    out: dict[int, float] = {}
    for ci, mine in enumerate(members):
        label = labels[ci]
        m = mine.size
        if m <= 1 or len(members) == 1:
            out[label] = 0.0
            continue
        own = pairwise_distances(data[mine])
        a = own.sum(axis=1) / (m - 1)
        b = np.full(m, np.inf)
        for cj, theirs in enumerate(members):
            if cj == ci or theirs.size == 0:
                continue
            block = pairwise_distances(data[mine], data[theirs])
            # A shared member's zero self-distance contributes nothing
            # to the row sum, so excluding it is a count correction.
            counts = theirs.size - np.isin(mine, theirs).astype(np.intp)
            valid = counts > 0
            means = np.full(m, np.inf)
            means[valid] = block.sum(axis=1)[valid] / counts[valid]
            b = np.minimum(b, means)
        coeff = np.zeros(m)
        finite = np.isfinite(b)
        denom = np.maximum(a, b, where=finite, out=np.ones(m))
        ok = finite & (denom > 0)
        coeff[ok] = (b[ok] - a[ok]) / denom[ok]
        out[label] = float(coeff.mean())
    return out


def conductance_scores(
    data: np.ndarray, clusters, kernel: LaplacianKernel
) -> dict[int, float]:
    """Affinity-graph conductance per cluster, keyed by cluster label.

    On the complete graph weighted by the paper's kernel (Eq. 1,
    ``a_ii = 0``): ``cut(S) / min(vol(S), vol(V \\ S))`` for each
    cluster's member set ``S``.  0 would be a perfectly separated
    cluster; a random subset sits near 1.  A zero-volume side (all
    affinities underflow) scores 0 by convention.  Degrees are computed
    in row blocks, so transient memory stays ``O(block * n)`` even
    though the work is the full ``O(n^2)`` — this is an offline
    annotation pass, not a serve-path operation.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    degrees = np.empty(n, dtype=np.float64)
    for lo in range(0, n, _DEGREE_BLOCK_ROWS):
        hi = min(lo + _DEGREE_BLOCK_ROWS, n)
        block = kernel.block(data[lo:hi], data)
        # Zero the a_ii entries of this block's rows (Eq. 1).
        block[np.arange(hi - lo), np.arange(lo, hi)] = 0.0
        degrees[lo:hi] = block.sum(axis=1)
    total_volume = float(degrees.sum())
    out: dict[int, float] = {}
    labels = _labels_of(clusters)
    for label, mine in zip(labels, _member_arrays(clusters)):
        volume = float(degrees[mine].sum())
        internal = float(
            kernel.block(data[mine], data[mine], zero_diagonal=True).sum()
        )
        cut = max(volume - internal, 0.0)
        denom = min(volume, total_volume - volume)
        out[label] = float(cut / denom) if denom > 0 else 0.0
    return out


def coverage_scores(clusters, n_items: int) -> dict[int, float]:
    """Fraction of the corpus each cluster holds, keyed by label."""
    if n_items <= 0:
        raise ValidationError(f"n_items must be >= 1, got {n_items}")
    return {
        label: float(mine.size) / float(n_items)
        for label, mine in zip(_labels_of(clusters), _member_arrays(clusters))
    }


def stability_scores(
    clusters, refit, *, seed: int = 0, n_refits: int = 3
) -> dict[int, float]:
    """Mean best-F1 of each cluster against seed-perturbed refits.

    ``refit(perturbed_seed)`` must return the member lists of a fresh
    detection run at that seed; the perturbed seeds are
    ``seed + 1 .. seed + n_refits``, so the score is deterministic for
    a fixed base seed.  Each original cluster's score is its best F1
    match (:func:`repro.eval.metrics.match_clusters`, the paper's §5
    protocol with the roles of truth and detection swapped) averaged
    over the refits; a refit that detects nothing contributes 0 —
    a method whose clusters vanish under reseeding *is* unstable.
    """
    if n_refits < 1:
        raise ValidationError(f"n_refits must be >= 1, got {n_refits}")
    members = _member_arrays(clusters)
    labels = _labels_of(clusters)
    if not members:
        return {}
    if any(mine.size == 0 for mine in members):
        raise ValidationError("cannot score an empty cluster for stability")
    totals = np.zeros(len(members))
    for round_index in range(n_refits):
        detected = list(refit(int(seed) + round_index + 1))
        if not detected:
            continue
        matches = match_clusters(detected, members)
        totals += np.asarray([f1 for _, f1 in matches])
    return {
        label: float(total / n_refits)
        for label, total in zip(labels, totals)
    }


def score_clusters(
    data: np.ndarray,
    clusters,
    *,
    kernel: LaplacianKernel | None = None,
    refit=None,
    seed: int = 0,
    n_refits: int = 3,
) -> dict[int, dict[str, float]]:
    """All quality metrics for every cluster: ``{label: {metric: score}}``.

    Parameters
    ----------
    data:
        The data matrix the clusters were detected over.
    clusters:
        :class:`~repro.core.results.Cluster` objects (or raw member
        index arrays, which are labeled by position).  Empty input
        (an all-noise detection) returns ``{}``.
    kernel:
        Laplacian kernel for the conductance graph; auto-selected via
        :func:`~repro.affinity.kernel.suggest_scaling_factor` at *seed*
        when omitted — the same deterministic default ALID and every
        affinity baseline share.
    refit:
        Optional ``refit(perturbed_seed) -> member lists`` callable;
        when given, a ``stability`` score is included (see
        :func:`stability_scores`), otherwise that metric is omitted.
    seed / n_refits:
        Determinism anchor for kernel auto-selection and the refit
        seeds, and the number of perturbed refits.
    """
    members = _member_arrays(clusters)
    if not members:
        return {}
    data = np.asarray(data, dtype=np.float64)
    if kernel is None:
        kernel = LaplacianKernel(
            k=suggest_scaling_factor(data, seed=seed)
        )
    silhouette = silhouette_scores(data, clusters)
    conductance = conductance_scores(data, clusters, kernel)
    coverage = coverage_scores(clusters, data.shape[0])
    stability = (
        stability_scores(clusters, refit, seed=seed, n_refits=n_refits)
        if refit is not None
        else None
    )
    out: dict[int, dict[str, float]] = {}
    for label in _labels_of(clusters):
        scores = {
            "silhouette": silhouette[label],
            "conductance": conductance[label],
            "coverage": coverage[label],
        }
        if stability is not None:
            scores["stability"] = stability[label]
        out[label] = scores
    return out


def annotate_snapshot(snapshot, *, seed: int = 0, stability_refits: int = 0):
    """Fill a snapshot's ``quality`` block in place and return it.

    Scores every persisted cluster of a
    :class:`~repro.serve.snapshot.DetectionSnapshot` with the
    snapshot's own calibrated kernel (so conductance reads the exact
    affinity graph the detection ran on).  With ``stability_refits >
    0``, the snapshot's :class:`~repro.core.config.ALIDConfig` is refit
    on the snapshot data at perturbed seeds — an offline pass whose
    cost is ``stability_refits`` full fits.

    Annotation never changes assignments: the quality block is inert
    manifest metadata, and the serving assigner does not read it.  Note
    that re-``save``-ing an annotated snapshot rewrites its manifest,
    so its ``manifest_sha256`` changes — any
    :class:`~repro.serve.snapshot.SnapshotDelta` chain anchored to the
    unannotated manifest must be re-published against the new one.
    """
    refit = None
    if stability_refits > 0:
        import dataclasses

        from repro.core.alid import ALID

        base_config = snapshot.config
        fit_data = np.asarray(snapshot.data)

        def refit(perturbed_seed: int):
            config = dataclasses.replace(
                base_config, seed=int(perturbed_seed)
            )
            return ALID(config).fit(fit_data).member_lists()

    snapshot.quality = score_clusters(
        np.asarray(snapshot.data),
        snapshot.clusters,
        kernel=snapshot.kernel,
        refit=refit,
        seed=seed,
        n_refits=max(stability_refits, 1),
    )
    return snapshot
