"""The arena's detector and dataset registries.

One :class:`DetectorSpec` per runnable method configuration — ALID per
``lid_kernel`` backend plus every :mod:`repro.baselines` entry — each a
deterministic factory ``build(seed, n_clusters_hint)`` returning an
object satisfying the :class:`repro.baselines.common.Detector`
protocol.  Factories mirror the CLI's ``repro detect`` construction
exactly, so an arena cell and a hand-run ``repro detect`` at the same
seed produce the same fit.

Datasets enter the arena as :class:`ArenaDataset` wrappers: the data
matrix, optional ground-truth member lists (empty means "no truth" —
truth-bound metrics are simply omitted for that dataset, clubmark
style), and a cluster-count hint for the k-taking baselines
(k-means, spectral), defaulting to the paper's §5 protocol of
``n_true_clusters + 1`` when truth is available.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    SEA,
    AffinityPropagation,
    DominantSets,
    GraphShift,
    IIDDetector,
    KMeans,
    MeanShift,
    SpectralClustering,
)
from repro.baselines.common import Detector, KernelParams
from repro.core.alid import ALID
from repro.core.config import ALIDConfig
from repro.datasets import Dataset, make_synthetic_mixture
from repro.exceptions import ValidationError

__all__ = [
    "DEFAULT_DETECTORS",
    "ArenaDataset",
    "DetectorSpec",
    "default_registry",
    "resolve_detectors",
    "tiny_datasets",
]


@dataclass(frozen=True, eq=False)
class ArenaDataset:
    """A dataset as the arena consumes it.

    Attributes
    ----------
    name:
        Leaderboard row key; must be unique within one run.
    data:
        Data matrix of shape ``(n, d)``.
    truth:
        Ground-truth member index arrays — empty tuple when no truth is
        available, in which case truth-bound metrics (AVG-F) are
        omitted for this dataset rather than faked.
    n_clusters_hint:
        ``k`` handed to the baselines that require one (k-means,
        spectral clustering).
    """

    name: str
    data: np.ndarray
    truth: tuple = ()
    n_clusters_hint: int = 8

    @classmethod
    def from_dataset(cls, dataset: Dataset, name: str | None = None) -> "ArenaDataset":
        """Wrap a labelled :class:`~repro.datasets.Dataset`.

        The hint follows the paper's §5 protocol for the k-taking
        baselines: one more cluster than the ground truth holds, so the
        noise has somewhere to go.
        """
        return cls(
            name=name if name is not None else dataset.name,
            data=np.asarray(dataset.data, dtype=np.float64),
            truth=tuple(dataset.truth_clusters()),
            n_clusters_hint=dataset.n_true_clusters + 1,
        )


@dataclass(frozen=True)
class DetectorSpec:
    """A registered, seed-parameterised detector configuration.

    Attributes
    ----------
    name:
        Registry key and leaderboard column (e.g. ``"alid-fused"``).
    family:
        ``"alid"`` for the paper's method (any backend), ``"baseline"``
        for everything it is compared against.
    build:
        Deterministic factory ``build(seed, n_clusters_hint)``
        returning a fresh :class:`~repro.baselines.common.Detector`.
    """

    name: str
    family: str
    build: Callable[[int, int], Detector] = field(repr=False)


def _alid_spec(name: str, backend: str, delta: int, density_threshold: float) -> DetectorSpec:
    """ALID spec for one ``lid_kernel`` backend."""

    def build(seed: int, n_clusters_hint: int) -> Detector:
        return ALID(
            ALIDConfig(
                delta=delta,
                density_threshold=density_threshold,
                seed=seed,
                lid_kernel=backend,
            )
        )

    return DetectorSpec(name=name, family="alid", build=build)


def default_registry(
    delta: int = 400, density_threshold: float = 0.75
) -> dict[str, DetectorSpec]:
    """Every detector the arena knows, keyed by registry name.

    ALID appears once per deterministic ``lid_kernel`` backend
    (``reference`` and ``fused``; the optional ``numba`` backend is
    excluded because it silently falls back to ``fused`` when numba is
    absent, which would duplicate a row under a misleading name).  All
    baselines route their randomness through the seed handed to
    ``build``, so every cell is bit-reproducible.
    """
    specs = [
        _alid_spec("alid-reference", "reference", delta, density_threshold),
        _alid_spec("alid-fused", "fused", delta, density_threshold),
        DetectorSpec(
            "iid",
            "baseline",
            lambda seed, hint: IIDDetector(
                kernel=KernelParams(seed=seed),
                density_threshold=density_threshold,
            ),
        ),
        DetectorSpec(
            "ds",
            "baseline",
            lambda seed, hint: DominantSets(
                kernel=KernelParams(seed=seed),
                density_threshold=density_threshold,
            ),
        ),
        DetectorSpec(
            "gs",
            "baseline",
            lambda seed, hint: GraphShift(
                kernel=KernelParams(seed=seed),
                density_threshold=density_threshold,
            ),
        ),
        DetectorSpec(
            "sea",
            "baseline",
            lambda seed, hint: SEA(
                kernel=KernelParams(seed=seed, lsh_r_scale=20.0),
                density_threshold=density_threshold,
            ),
        ),
        DetectorSpec(
            "ap",
            "baseline",
            lambda seed, hint: AffinityPropagation(
                kernel=KernelParams(seed=seed)
            ),
        ),
        DetectorSpec(
            "km",
            "baseline",
            lambda seed, hint: KMeans(hint, seed=seed),
        ),
        DetectorSpec(
            "sc-fl",
            "baseline",
            lambda seed, hint: SpectralClustering(
                hint, mode="full", kernel=KernelParams(seed=seed), seed=seed
            ),
        ),
        DetectorSpec(
            "sc-nys",
            "baseline",
            lambda seed, hint: SpectralClustering(
                hint, mode="nystrom", kernel=KernelParams(seed=seed), seed=seed
            ),
        ),
        DetectorSpec(
            "ms",
            "baseline",
            lambda seed, hint: MeanShift(seed=seed),
        ),
    ]
    return {spec.name: spec for spec in specs}


#: The default arena matrix: ALID's fast deterministic backend against
#: four baselines spanning the paper's comparison families (replicator
#: dynamics, graph mode seeking, partitioning, density mode seeking).
DEFAULT_DETECTORS = ("alid-fused", "iid", "ds", "km", "ms")


def resolve_detectors(
    registry: dict[str, DetectorSpec], names
) -> list[DetectorSpec]:
    """Registry lookups for *names*, rejecting unknown detectors."""
    unknown = sorted(set(names) - set(registry))
    if unknown:
        raise ValidationError(
            f"unknown detector(s) {unknown}; "
            f"registered: {sorted(registry)}"
        )
    return [registry[name] for name in names]


def tiny_datasets(seed: int = 0) -> list[ArenaDataset]:
    """The two small synthetic datasets of the ``arena_tiny`` matrix.

    Sized so the full default matrix finishes in seconds per cell —
    the CI lane and the quickstart both run on exactly these.
    """
    out = []
    for index, n in enumerate((240, 320)):
        dataset = make_synthetic_mixture(
            n,
            regime="bounded",
            n_clusters=3,
            dim=8,
            bound=n // 4,
            seed=seed + index,
        )
        out.append(
            ArenaDataset.from_dataset(dataset, name=f"tiny-{index}")
        )
    return out
