"""Quality arena: many detectors, many datasets, one set of rules.

A clubmark-style evaluation subsystem for dominant-cluster detection:
the :mod:`~repro.arena.registry` enumerates ALID (per ``lid_kernel``
backend) and every baseline behind one ``Detector`` protocol, the
:mod:`~repro.arena.runner` executes each (detector × dataset × seed)
cell in a resource-limited subprocess, and :mod:`~repro.arena.quality`
scores every detected cluster without ground truth — silhouette,
conductance, coverage, and seed-perturbation stability — feeding both
the arena leaderboard and the serving tier's per-cluster quality
gauges (see :func:`~repro.arena.quality.annotate_snapshot`).

See ``docs/arena.md`` for the harness design and metric definitions.
"""

from repro.arena.quality import (
    QUALITY_METRICS,
    annotate_snapshot,
    conductance_scores,
    coverage_scores,
    score_clusters,
    silhouette_scores,
    stability_scores,
)
from repro.arena.registry import (
    DEFAULT_DETECTORS,
    ArenaDataset,
    DetectorSpec,
    default_registry,
    resolve_detectors,
    tiny_datasets,
)
from repro.arena.runner import (
    CELL_STATUSES,
    ArenaReport,
    ArenaRunner,
    CellLimits,
    CellResult,
)

__all__ = [
    "CELL_STATUSES",
    "DEFAULT_DETECTORS",
    "QUALITY_METRICS",
    "ArenaDataset",
    "ArenaReport",
    "ArenaRunner",
    "CellLimits",
    "CellResult",
    "DetectorSpec",
    "annotate_snapshot",
    "conductance_scores",
    "coverage_scores",
    "default_registry",
    "resolve_detectors",
    "score_clusters",
    "silhouette_scores",
    "stability_scores",
    "tiny_datasets",
]
