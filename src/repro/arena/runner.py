"""The arena harness: sandboxed (detector × dataset × seed) cells.

Clubmark's discipline applied to this repo: every registered method
runs on every dataset under the *same* wall-clock and address-space
limits, each cell in its own forked subprocess so a hung or
memory-hungry baseline can neither stall the sweep nor distort another
cell's peak-RSS reading.  Results come back over the
:mod:`repro.serve.ipc` pipe framing; a cell that exceeds its limits
becomes a ``TIMEOUT``/``OOM`` row instead of a crash, and the sweep
always completes.

Each cell records wall time, peak RSS (``getrusage``), the affinity
oracle's ``entries_computed``, the ground-truth-free quality metrics of
:mod:`repro.arena.quality`, and — when the dataset carries truth — the
paper's AVG-F.  Inside the cell the ``seed_round`` phase entries of the
:class:`~repro.obs.phases.PhaseProfiler` are checked against the
oracle's final ``entries_computed``; a mismatch marks the cell
``ACCOUNTING_MISMATCH`` rather than reporting silently bad work
numbers (the same invariant ``repro detect --profile`` relies on).

The :class:`ArenaReport` artifact is deterministic: re-running the same
matrix at the same seeds yields cells with identical fingerprints
(timings excluded — those are environment noise, and the CI lane gates
on the fingerprint, not the clock).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import resource
import time
from dataclasses import dataclass, field

import numpy as np

from repro.arena.quality import QUALITY_METRICS, score_clusters
from repro.arena.registry import (
    DEFAULT_DETECTORS,
    ArenaDataset,
    DetectorSpec,
    default_registry,
    resolve_detectors,
)
from repro.eval.metrics import average_f1
from repro.exceptions import ValidationError
from repro.obs.phases import PhaseProfiler
from repro.serve.ipc import recv_message, send_message
from repro.serve.sharded import _mp_context
from repro.viz.ascii import render_leaderboard

__all__ = [
    "CELL_STATUSES",
    "ArenaReport",
    "ArenaRunner",
    "CellLimits",
    "CellResult",
]

#: Every terminal state an arena cell can reach.
CELL_STATUSES = ("OK", "TIMEOUT", "OOM", "ERROR", "ACCOUNTING_MISMATCH")

REPORT_FORMAT = "repro-arena-report"
REPORT_SCHEMA_VERSION = 1

_MB = 2**20


@dataclass(frozen=True)
class CellLimits:
    """Uniform per-cell resource limits.

    Attributes
    ----------
    wall_seconds:
        Wall-clock budget; an overrunning cell is killed and reported
        as ``TIMEOUT``.
    rss_mb:
        Optional address-space budget **beyond the interpreter's
        baseline at cell start** (headroom semantics): the child reads
        its current VmSize and sets ``RLIMIT_AS`` to ``current +
        rss_mb``, so the number bounds what the *fit* may allocate, not
        the absolute process size.  ``None`` leaves memory unlimited.
    """

    wall_seconds: float = 120.0
    rss_mb: float | None = None

    def __post_init__(self) -> None:
        """Validate the budgets."""
        if self.wall_seconds <= 0:
            raise ValidationError(
                f"wall_seconds must be > 0, got {self.wall_seconds}"
            )
        if self.rss_mb is not None and self.rss_mb <= 0:
            raise ValidationError(
                f"rss_mb must be > 0 when set, got {self.rss_mb}"
            )


@dataclass
class CellResult:
    """Outcome of one (detector × dataset × seed) cell."""

    detector: str
    dataset: str
    seed: int
    status: str
    wall_seconds: float = 0.0
    peak_rss_mb: float = 0.0
    entries_computed: int | None = None
    n_clusters: int = 0
    coverage: float = 0.0
    avg_f1: float | None = None
    quality: dict[str, float] | None = None
    error: str | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "detector": self.detector,
            "dataset": self.dataset,
            "seed": self.seed,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "peak_rss_mb": self.peak_rss_mb,
            "entries_computed": self.entries_computed,
            "n_clusters": self.n_clusters,
            "coverage": self.coverage,
            "avg_f1": self.avg_f1,
            "quality": self.quality,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CellResult":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


def _limit_address_space(rss_mb: float) -> None:
    """Cap this process's address space at current VmSize + *rss_mb*.

    ``RLIMIT_AS`` is the only memory rlimit Linux enforces reliably
    (``RLIMIT_RSS`` is a no-op), so the budget is expressed as address
    space.  Anchoring it to the current VmSize makes the number mean
    "what the fit may allocate" independent of interpreter baseline.
    """
    page_size = resource.getpagesize()
    statm = pathlib.Path("/proc/self/statm").read_text().split()
    current = int(statm[0]) * page_size
    limit = current + int(rss_mb * _MB)
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))


def _cell_main(
    conn,
    spec: DetectorSpec,
    dataset: ArenaDataset,
    seed: int,
    rss_mb: float | None,
    with_quality: bool,
) -> None:
    """Child-process body: fit, measure, score, send one payload."""
    payload: dict = {"status": "ERROR", "error": "cell produced no result"}
    try:
        if rss_mb is not None:
            _limit_address_space(rss_mb)
        detector = spec.build(int(seed), int(dataset.n_clusters_hint))
        profiler = PhaseProfiler()
        start = time.perf_counter()
        with profiler:
            result = detector.fit(np.asarray(dataset.data))
        wall = time.perf_counter() - start
        payload = {
            "status": "OK",
            "wall_seconds": wall,
            "entries_computed": (
                None
                if result.counters is None
                else int(result.counters.entries_computed)
            ),
            "n_clusters": int(result.n_clusters),
            "coverage": float(result.coverage()),
            "avg_f1": None,
            "quality": None,
            "error": None,
        }
        seed_round = profiler.summary().get("seed_round")
        if seed_round is not None and result.counters is not None:
            recorded = int(seed_round.get("entries", 0))
            actual = int(result.counters.entries_computed)
            if recorded != actual:
                payload["status"] = "ACCOUNTING_MISMATCH"
                payload["error"] = (
                    f"seed_round phase entries ({recorded}) != "
                    f"oracle entries_computed ({actual})"
                )
        if dataset.truth:
            payload["avg_f1"] = (
                average_f1(result.member_lists(), list(dataset.truth))
                if result.clusters
                else 0.0
            )
        if with_quality and result.clusters:
            scores = score_clusters(
                dataset.data, result.clusters, seed=int(seed)
            )
            payload["quality"] = {
                metric: float(
                    np.mean([s[metric] for s in scores.values()])
                )
                for metric in QUALITY_METRICS
                if all(metric in s for s in scores.values())
            }
    except MemoryError:
        payload = {
            "status": "OOM",
            "error": f"fit exceeded the {rss_mb} MB address-space budget",
        }
    except Exception as exc:  # noqa: BLE001 - cell isolation boundary
        payload = {
            "status": "ERROR",
            "error": f"{type(exc).__name__}: {exc}",
        }
    try:
        payload["peak_rss_mb"] = (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        )
        send_message(conn, payload)
    except Exception:  # pragma: no cover - pipe gone or send OOMs
        pass
    finally:
        conn.close()


def _run_cell(
    spec: DetectorSpec,
    dataset: ArenaDataset,
    seed: int,
    limits: CellLimits,
    with_quality: bool,
) -> CellResult:
    """Run one cell in a subprocess and classify the outcome."""
    ctx = _mp_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_cell_main,
        args=(
            child_conn,
            spec,
            dataset,
            seed,
            limits.rss_mb,
            with_quality,
        ),
        daemon=True,
    )
    start = time.perf_counter()
    process.start()
    child_conn.close()
    payload = None
    try:
        if parent_conn.poll(limits.wall_seconds):
            payload = recv_message(parent_conn)
    except (EOFError, OSError):
        payload = None
    wall = time.perf_counter() - start
    if payload is None and process.is_alive():
        process.terminate()
        process.join(5.0)
        if process.is_alive():  # pragma: no cover - terminate refused
            process.kill()
            process.join(5.0)
        return CellResult(
            detector=spec.name,
            dataset=dataset.name,
            seed=seed,
            status="TIMEOUT",
            wall_seconds=wall,
            error=f"cell exceeded the {limits.wall_seconds}s wall budget",
        )
    process.join(5.0)
    parent_conn.close()
    if payload is None:
        # The child died without reporting: under an address-space
        # limit the allocator can abort before Python raises
        # MemoryError, so attribute the death to the limit.
        status = "OOM" if limits.rss_mb is not None else "ERROR"
        return CellResult(
            detector=spec.name,
            dataset=dataset.name,
            seed=seed,
            status=status,
            wall_seconds=wall,
            error=(
                "worker died under the address-space limit"
                if limits.rss_mb is not None
                else f"worker died (exitcode {process.exitcode})"
            ),
        )
    return CellResult(
        detector=spec.name,
        dataset=dataset.name,
        seed=seed,
        status=payload["status"],
        wall_seconds=float(payload.get("wall_seconds", wall)),
        peak_rss_mb=float(payload.get("peak_rss_mb", 0.0)),
        entries_computed=payload.get("entries_computed"),
        n_clusters=int(payload.get("n_clusters", 0)),
        coverage=float(payload.get("coverage", 0.0)),
        avg_f1=payload.get("avg_f1"),
        quality=payload.get("quality"),
        error=payload.get("error"),
    )


@dataclass
class ArenaReport:
    """A completed sweep: cells plus the matrix that produced them."""

    cells: list[CellResult]
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form (format-tagged, schema-versioned)."""
        return {
            "format": REPORT_FORMAT,
            "schema_version": REPORT_SCHEMA_VERSION,
            "meta": self.meta,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def save(self, path) -> None:
        """Write the report as deterministic JSON."""
        path = pathlib.Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path) -> "ArenaReport":
        """Read a report written by :meth:`save`."""
        payload = json.loads(pathlib.Path(path).read_text())
        if payload.get("format") != REPORT_FORMAT:
            raise ValidationError(
                f"{path} is not an arena report "
                f"(format={payload.get('format')!r})"
            )
        if payload.get("schema_version", 0) > REPORT_SCHEMA_VERSION:
            raise ValidationError(
                f"{path} has schema_version "
                f"{payload['schema_version']}, newer than this build "
                f"({REPORT_SCHEMA_VERSION})"
            )
        return cls(
            cells=[CellResult.from_dict(c) for c in payload["cells"]],
            meta=payload.get("meta", {}),
        )

    # ------------------------------------------------------------------
    # determinism
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """SHA-256 over every timing-independent cell field.

        Two runs of the same matrix at the same seeds must produce the
        same fingerprint; wall time, peak RSS, and error text (which
        may embed timings) are excluded as environment noise.
        """
        projection = [
            {
                "detector": cell.detector,
                "dataset": cell.dataset,
                "seed": cell.seed,
                "status": cell.status,
                "entries_computed": cell.entries_computed,
                "n_clusters": cell.n_clusters,
                "coverage": round(cell.coverage, 9),
                "avg_f1": (
                    None if cell.avg_f1 is None else round(cell.avg_f1, 9)
                ),
                "quality": (
                    None
                    if cell.quality is None
                    else {
                        metric: round(value, 9)
                        for metric, value in sorted(cell.quality.items())
                    }
                ),
            }
            for cell in self.cells
        ]
        blob = json.dumps(projection, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def leaderboard_rows(self) -> tuple[list[str], list[list[str]]]:
        """Aggregate OK cells per detector into (headers, rows).

        Rows are sorted by mean AVG-F descending (detectors without
        truth-bearing cells sink below scored ones, ties broken by
        name); quality columns (prefixed ``q_``) are means over the OK
        cells that carry the metric, and metrics no cell carries are
        omitted entirely (e.g. ``stability``, an annotation-time
        metric the cells skip).
        """
        by_detector: dict[str, list[CellResult]] = {}
        for cell in self.cells:
            by_detector.setdefault(cell.detector, []).append(cell)

        def _mean(values: list[float]) -> float | None:
            return float(np.mean(values)) if values else None

        def _cell_text(value: float | None) -> str:
            return "-" if value is None else f"{value:.3f}"

        aggregated = []
        for detector, cells in by_detector.items():
            ok = [c for c in cells if c.status == "OK"]
            avg_f1 = _mean([c.avg_f1 for c in ok if c.avg_f1 is not None])
            entries = sum(
                c.entries_computed
                for c in ok
                if c.entries_computed is not None
            )
            quality = {
                metric: _mean(
                    [
                        c.quality[metric]
                        for c in ok
                        if c.quality is not None and metric in c.quality
                    ]
                )
                for metric in QUALITY_METRICS
            }
            aggregated.append(
                {
                    "detector": detector,
                    "ok": len(ok),
                    "total": len(cells),
                    "avg_f1": avg_f1,
                    "coverage": _mean([c.coverage for c in ok]),
                    "quality": quality,
                    "entries": entries,
                    "wall": _mean([c.wall_seconds for c in ok]),
                }
            )
        aggregated.sort(
            key=lambda row: (
                -(row["avg_f1"] if row["avg_f1"] is not None else -1.0),
                row["detector"],
            )
        )
        carried = [
            metric
            for metric in QUALITY_METRICS
            if any(row["quality"][metric] is not None for row in aggregated)
        ]
        headers = (
            ["detector", "cells", "avg_f1", "coverage"]
            + [f"q_{metric}" for metric in carried]
            + ["entries", "wall_s"]
        )
        rows = [
            [
                row["detector"],
                f"{row['ok']}/{row['total']}",
                _cell_text(row["avg_f1"]),
                _cell_text(row["coverage"]),
                *(_cell_text(row["quality"][m]) for m in carried),
                str(row["entries"]),
                "-" if row["wall"] is None else f"{row['wall']:.2f}",
            ]
            for row in aggregated
        ]
        return headers, rows

    def leaderboard(self, *, title: str = "arena leaderboard") -> str:
        """The ASCII leaderboard (``viz.ascii.render_leaderboard``)."""
        headers, rows = self.leaderboard_rows()
        return render_leaderboard(headers, rows, title=title)


class ArenaRunner:
    """Execute a detector × dataset × seed matrix under uniform limits.

    Parameters
    ----------
    registry:
        Detector registry (:func:`~repro.arena.registry.default_registry`
        when omitted).
    limits:
        Per-cell :class:`CellLimits` (defaults apply when omitted).
    with_quality:
        Compute the per-cluster quality metrics inside each cell
        (adds an O(n²) scoring pass per cell; disable for pure
        wall/work sweeps).
    """

    def __init__(
        self,
        registry: dict[str, DetectorSpec] | None = None,
        *,
        limits: CellLimits | None = None,
        with_quality: bool = True,
    ):
        """Bind the registry and limits."""
        self.registry = (
            default_registry() if registry is None else dict(registry)
        )
        self.limits = CellLimits() if limits is None else limits
        self.with_quality = bool(with_quality)

    def run(
        self,
        datasets: list[ArenaDataset],
        detectors=None,
        seeds=(0,),
        *,
        progress=None,
    ) -> ArenaReport:
        """Run every cell of the matrix, in deterministic order.

        Parameters
        ----------
        datasets:
            The datasets to sweep (at least one).
        detectors:
            Registry names to run
            (:data:`~repro.arena.registry.DEFAULT_DETECTORS` when
            omitted); unknown names raise
            :class:`~repro.exceptions.ValidationError` before any cell
            starts.
        seeds:
            Seeds per (detector, dataset) pair.
        progress:
            Optional callable invoked with each finished
            :class:`CellResult` (the CLI's live ticker).
        """
        if not datasets:
            raise ValidationError("arena needs at least one dataset")
        if not seeds:
            raise ValidationError("arena needs at least one seed")
        names = sorted(set(d.name for d in datasets))
        if len(names) != len(datasets):
            raise ValidationError(
                "dataset names must be unique within one arena run"
            )
        specs = resolve_detectors(
            self.registry,
            list(detectors) if detectors is not None else DEFAULT_DETECTORS,
        )
        cells = []
        for spec in specs:
            for dataset in datasets:
                for seed in seeds:
                    cell = _run_cell(
                        spec,
                        dataset,
                        int(seed),
                        self.limits,
                        self.with_quality,
                    )
                    cells.append(cell)
                    if progress is not None:
                        progress(cell)
        meta = {
            "detectors": [spec.name for spec in specs],
            "datasets": names,
            "seeds": [int(seed) for seed in seeds],
            "limits": {
                "wall_seconds": self.limits.wall_seconds,
                "rss_mb": self.limits.rss_mb,
            },
            "with_quality": self.with_quality,
        }
        return ArenaReport(cells=cells, meta=meta)
