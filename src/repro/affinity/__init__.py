"""Affinity substrate: Laplacian kernel, instrumented oracle, sparsifiers.

The paper's Eq. 1 defines the affinity between data items ``v_i`` and
``v_j`` as ``exp(-k * ||v_i - v_j||_p)`` with a zero diagonal.  Everything
in this package routes kernel evaluations through
:class:`~repro.affinity.oracle.AffinityOracle`, whose counters provide the
work ("entries computed") and space ("peak entries stored") measurements
used throughout the paper's evaluation (Figs. 6, 7, 9).
"""

from repro.affinity.kernel import LaplacianKernel, suggest_scaling_factor
from repro.affinity.oracle import AffinityCounters, AffinityOracle
from repro.affinity.sparse import SparseAffinityBuilder, sparse_degree

__all__ = [
    "LaplacianKernel",
    "suggest_scaling_factor",
    "AffinityCounters",
    "AffinityOracle",
    "SparseAffinityBuilder",
    "sparse_degree",
]
