"""Matrix-backed LRU cache of affinity columns for the LID hot path.

The LID dynamics repeatedly need affinity columns ``A[beta, j]`` (paper
Fig. 3's green columns).  The original implementation kept them in a
``dict[int, ndarray]``, which costs one oracle round-trip per column and
one Python-level concatenate per local-range change.  This cache keeps
every cached column as one row of a single 2-D buffer, so

* a batch of missing columns is fetched with **one** BLAS-backed block
  evaluation (:meth:`~repro.affinity.oracle.AffinityOracle.columns`),
* a local-range restriction is **one** fancy-index over the buffer, and
* a local-range extension fetches the new rows of *every* cached column
  with one block call instead of one oracle call per column.

Storage is charged to the owning oracle's simulated-memory accounting
exactly as before.  When the oracle has a ``budget_entries`` cap, the
cache **evicts least-recently-used columns** instead of dying: columns
are dropped (and their storage released) until the new charge fits.
Only when nothing evictable remains does the oracle's
:class:`~repro.exceptions.BudgetExceededError` surface — the same
bounded-memory contract as the paper's §4.5 release discipline, but
enforced continuously rather than only at cluster peeling.

Row extension is *fused*: :meth:`ColumnBlockCache.extend_rows` can
evaluate caller-requested columns (the Eq. 17 payoff block over the new
rows) inside the same oracle block call that extends the cached
columns, so overlapping entries are charged exactly once.  This is the
cache's accounting-neutral prefetch policy: only entries with a proven
immediate use are ever computed.
"""

from __future__ import annotations

import numpy as np

from repro.affinity.oracle import AffinityOracle

__all__ = ["ColumnBlockCache"]


class ColumnBlockCache:
    """LRU cache of affinity columns ``A[rows, j]`` over a row set.

    Parameters
    ----------
    oracle:
        The instrumented affinity oracle; all kernel work and storage
        accounting flows through it.
    rows:
        Global indices of the current row set (the LID local range
        ``beta``).  Must already be validated by the caller; the cache
        trusts it on every fetch (hot path).
    max_columns:
        Optional hard cap on simultaneously cached columns, independent
        of the oracle budget.  ``None`` means only the oracle budget
        limits the cache.
    """

    def __init__(
        self,
        oracle: AffinityOracle,
        rows: np.ndarray,
        *,
        max_columns: int | None = None,
    ):
        self.oracle = oracle
        self.rows = np.asarray(rows, dtype=np.intp)
        if max_columns is not None and max_columns < 1:
            raise ValueError(
                f"max_columns must be >= 1 or None, got {max_columns}"
            )
        self.max_columns = max_columns
        # Telemetry tallies (plain ints — zero overhead when nobody
        # reads them).  The fit-phase profiler drains them per cluster
        # at :meth:`~repro.dynamics.lid.LIDState.release` time.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Buffer rows are cache slots; _buf[slot] is column j over `rows`.
        self._buf = np.empty((0, self.rows.size), dtype=np.float64)
        self._slot_of: dict[int, int] = {}
        self._free: list[int] = []
        # Insertion order tracks recency: first key = least recently used.
        self._use: dict[int, None] = {}

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Length of every cached column (the local-range size)."""
        return int(self.rows.size)

    @property
    def n_columns(self) -> int:
        """Number of columns currently cached."""
        return len(self._slot_of)

    def cached_entries(self) -> int:
        """Affinity entries currently held (rows x columns)."""
        return self.n_rows * self.n_columns

    def column_ids(self) -> np.ndarray:
        """Cached global column indices, least recently used first."""
        return np.fromiter(self._use, dtype=np.intp, count=len(self._use))

    def __contains__(self, j: int) -> bool:
        return int(j) in self._slot_of

    def slot_index(self, j: int) -> int:
        """Buffer slot of cached column *j* (KeyError when not resident)."""
        return self._slot_of[int(j)]

    def resident_view(self) -> tuple[np.ndarray, np.ndarray]:
        """The backing matrix plus a row-position → slot map.

        The contract behind the run-until-miss LID kernels
        (:mod:`repro.dynamics.lid_kernel`): returns ``(buf, slots)``
        where ``buf[slots[p]]`` is the cached column ``A[rows,
        rows[p]]`` and ``slots[p] < 0`` marks a non-resident column.
        Cached columns whose id is not a member of ``rows`` (possible
        for generic callers) simply do not appear in the map.

        The view is **invalidated by any cache mutation**: an admit may
        grow (reallocate) the buffer, an eviction frees a slot for
        reuse, and row-set changes reshape everything.  Callers must
        re-request the view afterwards; as a fast path, an admit that
        neither evicted nor reallocated (buffer identity unchanged and
        ``n_columns`` grew by exactly one) only adds the new column's
        ``slot_index`` entry.
        """
        m = self.n_rows
        buf = self._buf if self._buf.shape[1] == m else self._buf[:, :m]
        slots = np.full(m, -1, dtype=np.int64)
        if self._slot_of:
            count = len(self._slot_of)
            js = np.fromiter(self._slot_of.keys(), np.intp, count)
            taken = np.fromiter(self._slot_of.values(), np.intp, count)
            sorter = np.argsort(self.rows, kind="stable")
            idx = np.searchsorted(self.rows, js, sorter=sorter)
            idx[idx >= m] = 0
            positions = sorter[idx]
            member = self.rows[positions] == js
            slots[positions[member]] = taken[member]
        return buf, slots

    def touch_sequence(self, js) -> None:
        """Replay accesses: mark each column in *js* most recently used.

        The batched form of the per-:meth:`get` recency update, used by
        the run-until-miss LID kernels to restore the exact LRU order
        the reference loop would have produced before anything (an
        eviction decision, a later run) reads it.  Non-resident ids are
        ignored — a recorded hit can refer to a column that a later
        miss already evicted, and touching it must not resurrect a
        phantom entry.
        """
        use = self._use
        slot_of = self._slot_of
        hits = 0
        for j in js:
            j = int(j)
            if j in slot_of:
                hits += 1
                use.pop(j, None)
                use[j] = None
        self.hits += hits

    # ------------------------------------------------------------------
    # lookup / fetch
    # ------------------------------------------------------------------
    def peek(self, j: int) -> np.ndarray | None:
        """Cached column *j* without fetching or touching recency.

        Returns an owned copy (safe to hold); inspection is off the hot
        path, so the allocation is irrelevant.
        """
        slot = self._slot_of.get(int(j))
        if slot is None:
            return None
        return self._buf[slot, : self.n_rows].copy()

    def get(self, j: int) -> np.ndarray:
        """Column ``A[rows, j]``, fetching through the oracle on a miss.

        Returns a **view into the slot buffer** — valid only until the
        next cache operation (a later fetch may evict this column and
        reuse its slot, silently rewriting the view's contents).  The
        hot path consumes the column immediately, which is why this is
        allocation-free; callers holding a column across cache activity
        must copy it.
        """
        j = int(j)
        slot = self._slot_of.get(j)
        if slot is None:
            self.ensure(np.asarray([j], dtype=np.intp))
            slot = self._slot_of[j]
        else:
            self.hits += 1
            self._touch(j)
        return self._buf[slot, : self.n_rows]

    def ensure(self, js: np.ndarray) -> None:
        """Make every column in *js* resident, batching the misses.

        All missing columns are computed with a single oracle block
        call, charged to storage in one transaction (after any LRU
        eviction needed to make room).  With a ``max_columns`` cap, a
        miss batch larger than the cap only admits its trailing
        ``max_columns`` columns (a prefetch hint cannot overrun the
        cap); single-column fetches are always resident afterwards.
        """
        js = np.asarray(js, dtype=np.intp)
        missing = [int(j) for j in js if int(j) not in self._slot_of]
        self.misses += len(missing)
        self.hits += int(js.size) - len(missing)
        if missing:
            # dict.fromkeys: dedup while preserving order.
            missing = list(dict.fromkeys(missing))
            if self.max_columns is not None and len(missing) > self.max_columns:
                # A miss batch larger than the cap can never be fully
                # resident: keep only the trailing max_columns (most
                # recently requested) and never compute the rest — the
                # cap bounds work-per-batch as well as storage.
                missing = missing[-self.max_columns :]
            block = self.oracle.columns(
                np.asarray(missing, dtype=np.intp),
                self.rows,
                assume_valid=True,
            )
            self._admit(missing, block.T)
        for j in js:
            # Only resident columns enter the recency order (a capped
            # admit may have dropped part of an oversized batch).
            if int(j) in self._slot_of:
                self._touch(int(j))

    # ------------------------------------------------------------------
    # row-set maintenance (the beta <- alpha / beta <- alpha U psi steps)
    # ------------------------------------------------------------------
    def restrict_rows(self, positions: np.ndarray) -> None:
        """Shrink the row set to ``rows[positions]`` (one fancy-index).

        Cached columns survive with their surviving rows; the freed
        entries are released from the storage accounting.
        """
        positions = np.asarray(positions, dtype=np.intp)
        old_rows = self.n_rows
        freed = (old_rows - positions.size) * self.n_columns
        if self.n_columns:
            # Compact used slots while slicing, so the buffer does not
            # drag free slots along.
            js = list(self._slot_of)
            slots = np.asarray([self._slot_of[j] for j in js], dtype=np.intp)
            self._buf = self._buf[slots][:, positions]
            self._slot_of = {j: pos for pos, j in enumerate(js)}
            self._free = []
        else:
            # Keep the slot capacity: stale slot indices in _free must
            # stay addressable or the next admit writes out of bounds.
            self._buf = np.empty(
                (self._buf.shape[0], positions.size), dtype=np.float64
            )
            self._free = list(range(self._buf.shape[0]))
        self.rows = self.rows[positions]
        if freed:
            self.oracle.release_stored(freed)

    def extend_rows(
        self,
        new_rows: np.ndarray,
        fetch_cols: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Append *new_rows* to the row set, extending cached columns.

        The new entries of every cached column come from one oracle
        block call.  Under a storage budget, least-recently-used columns
        are evicted outright (cheaper than extending them) until the
        extension fits.

        Parameters
        ----------
        new_rows:
            Global indices joining the row set (the CIVS psi set).
        fetch_cols:
            Optional global column indices the caller needs evaluated
            over *new_rows* — for the LID extend step (paper Eq. 17)
            these are the support columns ``alpha`` whose block
            ``A[new_rows, alpha]`` yields the new payoff entries
            ``g_psi``.  They are fused into the **same** oracle block
            call that extends the cached columns, so entries of columns
            that are both cached and requested are computed (and
            charged) exactly once instead of twice.  This is the
            accounting-neutral prefetch policy: no speculative entry is
            ever computed — the fused fetch covers only entries with a
            proven immediate use — and ``entries_computed`` can only
            shrink relative to issuing the two fetches separately.

        Returns
        -------
        numpy.ndarray or None
            ``A[new_rows, fetch_cols]`` (an owned array) when
            *fetch_cols* is given, else None.  Requested columns are
            *not* admitted to the cache; only their *new_rows* entries
            are evaluated, as transient work.
        """
        new_rows = np.asarray(new_rows, dtype=np.intp)
        if fetch_cols is not None:
            fetch_cols = np.asarray(fetch_cols, dtype=np.intp)
        if new_rows.size == 0:
            if fetch_cols is not None:
                return np.empty((0, fetch_cols.size), dtype=np.float64)
            return None
        budget = self.oracle.headroom()
        if budget is not None:
            # Evict whole LRU columns until the per-column extension fits.
            while self.n_columns and (
                self.n_columns * new_rows.size > self.oracle.headroom()
            ):
                self.evict(next(iter(self._use)))
        cached_js = list(self._slot_of)
        all_js = np.asarray(cached_js, dtype=np.intp)
        if fetch_cols is not None and fetch_cols.size:
            extra = (
                fetch_cols[np.isin(fetch_cols, all_js, invert=True)]
                if all_js.size
                else fetch_cols
            )
            all_js = np.concatenate([all_js, extra])
        fetched: np.ndarray | None = None
        if all_js.size:
            block = self.oracle.columns(all_js, new_rows, assume_valid=True)
            if cached_js:
                extension = block[:, : len(cached_js)]
                self.oracle.charge_stored(extension.size)
                old_n = self.n_rows
                slots = np.asarray(
                    [self._slot_of[j] for j in cached_js], dtype=np.intp
                )
                new_buf = np.empty(
                    (self._buf.shape[0], old_n + new_rows.size),
                    dtype=np.float64,
                )
                new_buf[:, :old_n] = self._buf
                new_buf[slots, old_n:] = extension.T
                self._buf = new_buf
            else:
                self._buf = np.empty(
                    (self._buf.shape[0], self.n_rows + new_rows.size),
                    dtype=np.float64,
                )
            if fetch_cols is not None:
                position = {int(j): p for p, j in enumerate(all_js)}
                fetched = block[
                    :, [position[int(j)] for j in fetch_cols]
                ].copy()
        else:
            self._buf = np.empty(
                (self._buf.shape[0], self.n_rows + new_rows.size),
                dtype=np.float64,
            )
            if fetch_cols is not None:
                fetched = np.empty(
                    (new_rows.size, 0), dtype=np.float64
                )
        self.rows = np.concatenate([self.rows, new_rows])
        return fetched

    # ------------------------------------------------------------------
    # eviction / release
    # ------------------------------------------------------------------
    def evict(self, j: int) -> None:
        """Drop one cached column and release its storage."""
        j = int(j)
        slot = self._slot_of.pop(j)
        self._use.pop(j, None)
        self._free.append(slot)
        self.evictions += 1
        self.oracle.release_stored(self.n_rows)

    def release_all(self) -> None:
        """Drop every cached column (cluster peeled, paper §4.5)."""
        entries = self.cached_entries()
        self._slot_of.clear()
        self._use.clear()
        self._free = list(range(self._buf.shape[0]))
        if entries:
            self.oracle.release_stored(entries)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _touch(self, j: int) -> None:
        self._use.pop(j, None)
        self._use[j] = None

    def _admit(self, js: list[int], columns: np.ndarray) -> None:
        """Insert freshly computed columns (rows of *columns*) as a batch."""
        needed = len(js) * self.n_rows
        protected = set(js)
        self._make_room(needed, protected)
        self.oracle.charge_stored(needed)
        for j, column in zip(js, columns):
            slot = self._take_slot()
            self._buf[slot, : self.n_rows] = column
            self._slot_of[j] = slot
            self._touch(j)

    def _make_room(self, needed: int, protected: set[int]) -> None:
        """Evict LRU columns until *needed* new entries fit the limits."""
        headroom = self.oracle.headroom()
        if headroom is not None:
            while needed > self.oracle.headroom() and self.n_columns:
                victim = next(
                    (j for j in self._use if j not in protected), None
                )
                if victim is None:
                    break
                self.evict(victim)
        if self.max_columns is not None:
            while (
                self.n_columns + len(protected) > self.max_columns
                and self.n_columns
            ):
                victim = next(
                    (j for j in self._use if j not in protected), None
                )
                if victim is None:
                    break
                self.evict(victim)

    def _take_slot(self) -> int:
        if self._free:
            return self._free.pop()
        # Grow the slot buffer geometrically.
        old_capacity = self._buf.shape[0]
        new_capacity = max(4, 2 * old_capacity)
        grown = np.empty((new_capacity, self._buf.shape[1]), dtype=np.float64)
        grown[:old_capacity] = self._buf
        self._buf = grown
        self._free.extend(range(old_capacity + 1, new_capacity))
        return old_capacity
