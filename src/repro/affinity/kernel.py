"""Laplacian kernel affinity (paper Eq. 1) and scaling-factor selection.

The affinity between two items is ``a_ij = exp(-k * ||v_i - v_j||_p)`` for
``i != j`` and ``a_ii = 0``.  The positive scaling factor ``k`` controls
how fast affinity decays with distance; the paper never states the value
it used, so :func:`suggest_scaling_factor` provides a deterministic
data-driven default (see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_data_matrix, check_positive

__all__ = ["LaplacianKernel", "pairwise_distances", "suggest_scaling_factor"]


def pairwise_distances(
    x: np.ndarray, y: np.ndarray | None = None, *, p: float = 2.0
) -> np.ndarray:
    """Pairwise Lp distances between rows of *x* and rows of *y*.

    Parameters
    ----------
    x:
        Array of shape ``(m, d)``.
    y:
        Array of shape ``(r, d)``; defaults to *x*.
    p:
        Order of the norm, ``p >= 1``.  ``p=2`` (the paper's choice) uses a
        vectorised squared-expansion path; other orders fall back to a
        broadcasting implementation.

    Returns
    -------
    numpy.ndarray
        Distance matrix of shape ``(m, r)``.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = x if y is None else np.atleast_2d(np.asarray(y, dtype=np.float64))
    if x.shape[1] != y.shape[1]:
        raise ValidationError(
            f"dimension mismatch: x has d={x.shape[1]}, y has d={y.shape[1]}"
        )
    if p < 1:
        raise ValidationError(f"p must be >= 1, got {p}")
    if p == 2.0:
        # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b, clipped for roundoff.
        xx = np.einsum("ij,ij->i", x, x)[:, None]
        yy = np.einsum("ij,ij->i", y, y)[None, :]
        sq = xx + yy - 2.0 * (x @ y.T)
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)
    if p == 1.0:
        return np.abs(x[:, None, :] - y[None, :, :]).sum(axis=2)
    diff = np.abs(x[:, None, :] - y[None, :, :])
    return np.power(np.power(diff, p).sum(axis=2), 1.0 / p)


@dataclass(frozen=True)
class LaplacianKernel:
    """The paper's affinity kernel ``a(u, v) = exp(-k * ||u - v||_p)``.

    Attributes
    ----------
    k:
        Positive scaling factor of the Laplacian kernel.
    p:
        Norm order used for the distance (paper experiments use ``p=2``).
    """

    k: float
    p: float = 2.0

    def __post_init__(self) -> None:
        check_positive(self.k, name="k")
        if self.p < 1:
            raise ValidationError(f"p must be >= 1, got {self.p}")

    def affinity_from_distance(
        self, dist: np.ndarray, *, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Map distances to affinities: ``exp(-k * dist)``.

        Pass ``out`` (usually the distance array itself, when it is
        transient) to evaluate in place — the oracle's block path does
        this to avoid one full-block allocation per kernel evaluation.
        """
        dist = np.asarray(dist, dtype=np.float64)
        if out is None:
            return np.exp(-self.k * dist)
        np.multiply(dist, -self.k, out=out)
        return np.exp(out, out=out)

    def distance_from_affinity(self, affinity: float) -> float:
        """Invert the kernel: the distance whose affinity equals *affinity*."""
        a = float(affinity)
        if not 0.0 < a <= 1.0:
            raise ValidationError(f"affinity must be in (0, 1], got {a}")
        return -float(np.log(a)) / self.k

    def block(
        self, x: np.ndarray, y: np.ndarray | None = None, *, zero_diagonal: bool = False
    ) -> np.ndarray:
        """Affinity block between rows of *x* and rows of *y*.

        ``zero_diagonal=True`` zeroes the main diagonal, which is only
        meaningful when *x* and *y* enumerate the same items in the same
        order (paper Eq. 1 sets ``a_ii = 0``).
        """
        out = self.affinity_from_distance(pairwise_distances(x, y, p=self.p))
        if zero_diagonal:
            m = min(out.shape)
            out[np.arange(m), np.arange(m)] = 0.0
        return out


def intra_cluster_scale(
    nn_distances: np.ndarray,
    *,
    min_log_separation: float = 1.0,
    min_mode_fraction: float = 0.005,
) -> float:
    """Estimate the intra-cluster distance scale from NN distances.

    Nearest-neighbour distances of a clustered-plus-noise dataset are
    bimodal: a tight mode from cluster members sitting next to close
    siblings, and a broad mode from scattered noise.  A fixed low
    quantile fails once clusters are a small minority (e.g. 6% ground
    truth at n=16k in the bounded regime), and a largest-gap rule fails
    when stray intermediate distances bridge the two modes (NART-like
    topic vectors do this).  The split is therefore chosen by Otsu's
    criterion on the *log distances* — the threshold maximising the
    between-class variance ``w0 * w1 * (mu1 - mu0)^2`` — which tolerates
    bridged modes.  The split only counts as a real mode boundary when

    * the class means are at least ``min_log_separation`` apart in log
      space (a genuine multiplicative scale difference, >= e ~ 2.7x),
      and
    * at least ``min_mode_fraction`` of the points (and >= 2) sit below.

    The scale is then the lower mode's median; otherwise the
    distribution is treated as unimodal and the overall median is used.
    """
    nn = np.sort(np.asarray(nn_distances, dtype=np.float64))
    nn = nn[nn > 0]
    if nn.size == 0:
        raise ValidationError("need at least one positive distance")
    if nn.size == 1:
        return float(nn[0])
    log_nn = np.log(nn)
    n = log_nn.size
    prefix = np.cumsum(log_nn)
    total = prefix[-1]
    counts = np.arange(1, n, dtype=np.float64)  # lower-class sizes 1..n-1
    mu_lower = prefix[:-1] / counts
    mu_upper = (total - prefix[:-1]) / (n - counts)
    between_var = counts * (n - counts) * (mu_upper - mu_lower) ** 2
    split = int(np.argmax(between_var))
    lower_count = split + 1
    separation = float(mu_upper[split] - mu_lower[split])
    is_bimodal = (
        separation >= min_log_separation
        and lower_count >= max(2, int(min_mode_fraction * n))
        and lower_count < n
    )
    if is_bimodal:
        return float(np.median(nn[:lower_count]))
    return float(np.median(nn))


def suggest_scaling_factor(
    data: np.ndarray,
    *,
    p: float = 2.0,
    target_affinity: float = 0.9,
    sample_size: int = 1024,
    seed=0,
) -> float:
    """Pick a scaling factor ``k`` so intra-cluster pairs get high affinity.

    The paper leaves ``k`` unspecified.  We estimate the *intra-cluster
    distance scale* ``q`` from the sample's nearest-neighbour distances
    (via :func:`intra_cluster_scale`, which is robust to clusters being
    a small minority of the data) and solve
    ``exp(-k * q) = target_affinity`` for ``k``.

    With the defaults, typical intra-cluster affinities land around 0.9,
    so even small dominant clusters (whose zero diagonal drags density
    down by a factor (m-1)/m) clear the paper's density threshold of
    0.75, while background-noise pairs (distances many multiples of
    ``q``) receive near-zero affinity.

    Returns
    -------
    float
        A strictly positive scaling factor.
    """
    data = check_data_matrix(data)
    check_positive(target_affinity, name="target_affinity")
    if not 0.0 < target_affinity < 1.0:
        raise ValidationError(
            f"target_affinity must be in (0, 1), got {target_affinity}"
        )
    rng = as_generator(seed)
    n = data.shape[0]
    if n > sample_size:
        idx = rng.choice(n, size=sample_size, replace=False)
        sample = data[idx]
    else:
        sample = data
    if sample.shape[0] < 2:
        return 1.0
    dists = pairwise_distances(sample, p=p)
    np.fill_diagonal(dists, np.inf)
    nn = dists.min(axis=1)
    nn = nn[np.isfinite(nn) & (nn > 0)]
    if nn.size == 0:
        # All points identical: any k works; 1.0 is a harmless default.
        return 1.0
    q = intra_cluster_scale(nn)
    return -float(np.log(target_affinity)) / q
