"""Instrumented affinity oracle.

Every clustering method in this repository — ALID and all baselines —
obtains affinity (and distance) values exclusively through an
:class:`AffinityOracle`.  The oracle counts

* ``entries_computed`` — total kernel evaluations performed ("work", the
  paper's runtime driver), and
* ``entries_stored_peak`` — the largest number of matrix entries held
  simultaneously ("space", the paper's memory driver),

which lets the benchmark harness reproduce the runtime/memory curves of
Figs. 6, 7 and 9 deterministically (see DESIGN.md §2, accounting row).

An optional storage *budget* emulates the paper's 12 GB RAM cap: methods
that try to hold too many entries at once raise
:class:`~repro.exceptions.BudgetExceededError`, mirroring the paper's
"experiments are stopped when the 12GB RAM limit is reached".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.affinity.kernel import LaplacianKernel, pairwise_distances
from repro.exceptions import (
    AccountingError,
    BudgetExceededError,
    ValidationError,
)
from repro.utils.validation import check_data_matrix, check_index_array

__all__ = ["AffinityCounters", "AffinityOracle"]

_BYTES_PER_ENTRY = 8  # float64


@dataclass
class AffinityCounters:
    """Mutable counters shared by everything touching one oracle."""

    entries_computed: int = 0
    entries_stored_current: int = 0
    entries_stored_peak: int = 0
    column_requests: int = 0
    block_requests: int = 0

    def charge(self, computed: int, stored_delta: int = 0) -> None:
        """Record *computed* kernel evaluations and a storage change."""
        self.entries_computed += int(computed)
        self.entries_stored_current += int(stored_delta)
        if self.entries_stored_current > self.entries_stored_peak:
            self.entries_stored_peak = self.entries_stored_current

    def release(self, n_entries: int) -> None:
        """Record that *n_entries* stored entries were freed.

        Raises
        ------
        AccountingError
            If the release would drive the stored count negative — more
            entries released than were ever charged, which means a
            double-release or cache-eviction bug somewhere upstream.
        """
        n_entries = int(n_entries)
        if n_entries > self.entries_stored_current:
            raise AccountingError(
                f"release({n_entries}) underflows the storage accounting: "
                f"only {self.entries_stored_current} entries are held"
            )
        self.entries_stored_current -= n_entries

    @property
    def peak_memory_bytes(self) -> int:
        """Peak simulated memory of stored affinity entries."""
        return self.entries_stored_peak * _BYTES_PER_ENTRY

    @property
    def peak_memory_mb(self) -> float:
        """Peak simulated memory in megabytes."""
        return self.peak_memory_bytes / 1e6

    def snapshot(self) -> "AffinityCounters":
        """Return an immutable-by-convention copy of the current counts."""
        return AffinityCounters(
            entries_computed=self.entries_computed,
            entries_stored_current=self.entries_stored_current,
            entries_stored_peak=self.entries_stored_peak,
            column_requests=self.column_requests,
            block_requests=self.block_requests,
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.entries_computed = 0
        self.entries_stored_current = 0
        self.entries_stored_peak = 0
        self.column_requests = 0
        self.block_requests = 0


@dataclass
class AffinityOracle:
    """Instrumented access to the (never fully materialised) affinity matrix.

    Parameters
    ----------
    data:
        Data matrix of shape ``(n, d)``; rows are items (paper's ``V``).
    kernel:
        The Laplacian kernel of Eq. 1.
    budget_entries:
        Optional cap on simultaneously stored entries.  Exceeding it raises
        :class:`BudgetExceededError` (used by the Fig. 9 experiment).

    Notes
    -----
    The oracle itself stores nothing except the raw data; *callers* own the
    arrays it returns and must declare long-lived storage with
    :meth:`charge_stored` / :meth:`release_stored`.  Transient reads (a
    column consumed and discarded inside one iteration) only count as work.
    """

    data: np.ndarray
    kernel: LaplacianKernel
    budget_entries: int | None = None
    counters: AffinityCounters = field(default_factory=AffinityCounters)

    def __post_init__(self) -> None:
        self.data = check_data_matrix(self.data)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of data items."""
        return self.data.shape[0]

    @property
    def dim(self) -> int:
        """Feature dimensionality."""
        return self.data.shape[1]

    # ------------------------------------------------------------------
    # affinity access (each call charges `entries_computed`)
    # ------------------------------------------------------------------
    def column(self, j: int, rows: np.ndarray | None = None) -> np.ndarray:
        """Affinity column ``A[rows, j]`` (paper Fig. 3's green column).

        ``rows`` defaults to all items.  The diagonal convention
        ``a_jj = 0`` is honoured whenever ``j`` appears in *rows*.
        """
        if not 0 <= j < self.n:
            raise IndexError(f"column index {j} out of range [0, {self.n})")
        if rows is None:
            rows = np.arange(self.n, dtype=np.intp)
        else:
            rows = check_index_array(rows, self.n, name="rows")
        dists = pairwise_distances(
            self.data[rows], self.data[j][None, :], p=self.kernel.p
        )[:, 0]
        col = self.kernel.affinity_from_distance(dists, out=dists)
        col[rows == j] = 0.0
        self.counters.column_requests += 1
        self.counters.charge(computed=len(rows))
        return col

    def block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Affinity block ``A[rows, cols]`` with the zero-diagonal rule."""
        rows = check_index_array(rows, self.n, name="rows")
        cols = check_index_array(cols, self.n, name="cols")
        dists = pairwise_distances(self.data[rows], self.data[cols], p=self.kernel.p)
        out = self.kernel.affinity_from_distance(dists, out=dists)
        same = rows[:, None] == cols[None, :]
        out[same] = 0.0
        self.counters.block_requests += 1
        self.counters.charge(computed=out.size)
        return out

    def columns(
        self,
        js: np.ndarray,
        rows: np.ndarray,
        *,
        assume_valid: bool = False,
    ) -> np.ndarray:
        """Batched affinity columns ``A[rows, js]`` in one kernel block.

        The BLAS-backed batch form of :meth:`column`: one
        ``(len(rows), len(js))`` evaluation replaces ``len(js)``
        separate column calls, with identical work accounting (each
        entry is charged exactly once, and every requested column still
        counts as a column request).

        ``assume_valid=True`` skips index validation for trusted callers
        on the hot path (the LID column cache validates its row set once
        at construction).
        """
        if not assume_valid:
            js = check_index_array(js, self.n, name="js")
            rows = check_index_array(rows, self.n, name="rows")
        dists = pairwise_distances(self.data[rows], self.data[js], p=self.kernel.p)
        out = self.kernel.affinity_from_distance(dists, out=dists)
        same = rows[:, None] == js[None, :]
        out[same] = 0.0
        self.counters.column_requests += len(js)
        self.counters.charge(computed=out.size)
        return out

    def point_block(
        self, points: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Affinity block between foreign *points* and indexed items *cols*.

        The serve-time counterpart of :meth:`block`: rows are arbitrary
        query points (not rows of the data matrix), so no zero-diagonal
        rule applies and every entry is a plain kernel evaluation.  Work
        is charged exactly like :meth:`block` — ``len(points) *
        len(cols)`` entries and one block request — so serving queries
        are accounted the same way fit-time detection is.
        """
        cols = check_index_array(cols, self.n, name="cols")
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dim:
            raise ValidationError(
                f"points have dim {points.shape[1]}, oracle expects {self.dim}"
            )
        dists = pairwise_distances(points, self.data[cols], p=self.kernel.p)
        out = self.kernel.affinity_from_distance(dists, out=dists)
        self.counters.block_requests += 1
        self.counters.charge(computed=out.size)
        return out

    def pairwise(self, indices: np.ndarray | None = None) -> np.ndarray:
        """Full affinity submatrix over *indices* (defaults to everything).

        This is the expensive O(m^2) materialisation the baselines need;
        callers keeping the result must also call :meth:`charge_stored`.
        """
        if indices is None:
            indices = np.arange(self.n, dtype=np.intp)
        return self.block(indices, indices)

    def distances_to_point(
        self, point: np.ndarray, rows: np.ndarray | None = None
    ) -> np.ndarray:
        """Lp distances from every item in *rows* to an arbitrary *point*.

        Used by the ROI / CIVS machinery (distances to the hyperball centre
        ``D``, which is generally not a data item).  Counts as work.
        """
        if rows is None:
            rows = np.arange(self.n, dtype=np.intp)
        else:
            rows = check_index_array(rows, self.n, name="rows")
        point = np.asarray(point, dtype=np.float64)
        dists = pairwise_distances(self.data[rows], point[None, :], p=self.kernel.p)
        self.counters.charge(computed=len(rows))
        return dists[:, 0]

    # ------------------------------------------------------------------
    # storage accounting
    # ------------------------------------------------------------------
    def headroom(self) -> int | None:
        """Remaining storage budget in entries (None when unbudgeted).

        Can be negative when the budget is already exceeded (a caller
        charged past the cap and survived the error).
        """
        if self.budget_entries is None:
            return None
        return self.budget_entries - self.counters.entries_stored_current

    def charge_stored(self, n_entries: int) -> None:
        """Declare that the caller now holds *n_entries* matrix entries.

        Raises
        ------
        BudgetExceededError
            If the storage budget would be exceeded; the charge is applied
            first so the peak reflects the attempted allocation.
        """
        self.counters.charge(computed=0, stored_delta=n_entries)
        if (
            self.budget_entries is not None
            and self.counters.entries_stored_current > self.budget_entries
        ):
            raise BudgetExceededError(
                f"affinity storage budget exceeded: "
                f"{self.counters.entries_stored_current} entries held, "
                f"budget is {self.budget_entries}"
            )

    def release_stored(self, n_entries: int) -> None:
        """Declare that *n_entries* previously-charged entries were freed."""
        self.counters.release(n_entries)
