"""Sparsified affinity matrices for the baseline methods (paper §5.1).

The paper follows Chen et al.'s sparsifiers: only the affinities between
neighbouring pairs are computed and stored, everything else is forced to
zero.  Chen et al. offer two neighbour definitions — approximate (ANN,
via LSH or Spill-Tree) and exact (ENN, "expensive on large data sets") —
and the paper picks the LSH ANN "due to its efficiency".  Both are
implemented here: :class:`SparseAffinityBuilder` is the LSH path that
every Fig. 6 experiment uses (ALID shares the same LSH module via CIVS,
so sparsity comparisons are apples-to-apples); :class:`ENNAffinityBuilder`
is the exact k-NN path over :class:`~repro.ann.kdtree.KDTree` for the
ENN-vs-ANN ablation.

The *sparse degree* — the fraction of zero entries in the sparsified
matrix — is the x-companion axis of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp

from repro.affinity.oracle import AffinityOracle
from repro.ann.kdtree import KDTree
from repro.exceptions import ValidationError
from repro.lsh.index import LSHIndex

__all__ = ["ENNAffinityBuilder", "SparseAffinityBuilder", "sparse_degree"]


def sparse_degree(matrix: sp.spmatrix | np.ndarray) -> float:
    """Fraction of zero entries over all n^2 entries (paper §5.1)."""
    if sp.issparse(matrix):
        n_rows, n_cols = matrix.shape
        total = n_rows * n_cols
        nnz = matrix.nnz
    else:
        arr = np.asarray(matrix)
        total = arr.size
        nnz = int(np.count_nonzero(arr))
    if total == 0:
        raise ValidationError("matrix must be non-empty")
    return 1.0 - nnz / total


@dataclass
class SparseAffinityBuilder:
    """Build an LSH-sparsified symmetric affinity matrix.

    Parameters
    ----------
    oracle:
        The instrumented affinity oracle; every computed entry is charged.
    index:
        An LSH index over the same data (same ``r`` for every method in a
        Fig. 6 run, "to remove possible uncertainties caused by the LSH
        approximation").
    max_neighbors:
        Optional cap on neighbours kept per item (nearest by affinity);
        ``None`` keeps every collision, exactly as enforced sparsity does.
    """

    oracle: AffinityOracle
    index: LSHIndex
    max_neighbors: int | None = None

    def build(self, charge_storage: bool = True) -> sp.csr_matrix:
        """Materialise the sparsified affinity matrix as CSR.

        Affinities are computed once per unordered colliding pair and
        mirrored, so the result is exactly symmetric with a zero diagonal.
        """
        n = self.oracle.n
        if self.index.n != n:
            raise ValidationError(
                f"index covers {self.index.n} items, oracle covers {n}"
            )
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        for i in range(n):
            neighbors = self.index.query_item(i)
            # Each unordered pair computed once: keep j > i and mirror.
            neighbors = neighbors[neighbors > i]
            if neighbors.size == 0:
                continue
            affinities = self.oracle.column(i, rows=neighbors)
            if (
                self.max_neighbors is not None
                and neighbors.size > self.max_neighbors
            ):
                keep = np.argsort(affinities)[::-1][: self.max_neighbors]
                neighbors = neighbors[keep]
                affinities = affinities[keep]
            rows.append(np.full(neighbors.size, i, dtype=np.intp))
            cols.append(neighbors)
            vals.append(affinities)
        if rows:
            r = np.concatenate(rows)
            c = np.concatenate(cols)
            v = np.concatenate(vals)
            upper = sp.coo_matrix((v, (r, c)), shape=(n, n))
            matrix = (upper + upper.T).tocsr()
        else:
            matrix = sp.csr_matrix((n, n))
        if charge_storage:
            self.oracle.charge_stored(matrix.nnz)
        return matrix


@dataclass
class ENNAffinityBuilder:
    """Build an exact-k-NN sparsified affinity matrix (Chen et al.'s ENN).

    Every item keeps its *k* exact nearest neighbours (found with the
    k-d tree, not sampled), the union is symmetrised, and only those
    affinities are computed — the sparsifier the paper rejected as "too
    expensive on large data sets" but whose quality ceiling the ablation
    benches compare the LSH path against.

    Parameters
    ----------
    oracle:
        The instrumented affinity oracle; every computed entry is
        charged.  (Tree-construction distance computations are *not*
        affinity entries and are not charged — the paper accounts the
        ENN cost as search-structure overhead, separate from the
        matrix.)
    k:
        Exact neighbours kept per item.
    leaf_size:
        Forwarded to :class:`~repro.ann.kdtree.KDTree`.
    """

    oracle: AffinityOracle
    k: int = 10
    leaf_size: int = 16

    def build(self, charge_storage: bool = True) -> sp.csr_matrix:
        """Materialise the ENN-sparsified affinity matrix as CSR.

        The result is exactly symmetric (union symmetrisation: a pair is
        kept when either endpoint lists the other) with a zero diagonal.
        """
        if self.k < 1:
            raise ValidationError(f"k must be >= 1, got {self.k}")
        n = self.oracle.n
        if n < 2:
            raise ValidationError("ENN sparsifier needs at least 2 items")
        tree = KDTree(self.oracle.data, leaf_size=self.leaf_size)
        neighbors, _ = tree.knn_graph(min(self.k, n - 1))
        # Deduplicate unordered pairs before touching the oracle, so
        # every affinity is computed exactly once.
        sources = np.repeat(np.arange(n, dtype=np.intp), neighbors.shape[1])
        targets = neighbors.ravel()
        low = np.minimum(sources, targets)
        high = np.maximum(sources, targets)
        pairs = np.unique(low * n + high)
        low, high = pairs // n, pairs % n
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        for i in np.unique(low):
            partners = high[low == i].astype(np.intp)
            affinities = self.oracle.column(int(i), rows=partners)
            rows.append(np.full(partners.size, i, dtype=np.intp))
            cols.append(partners)
            vals.append(affinities)
        if rows:
            upper = sp.coo_matrix(
                (
                    np.concatenate(vals),
                    (np.concatenate(rows), np.concatenate(cols)),
                ),
                shape=(n, n),
            )
            matrix = (upper + upper.T).tocsr()
        else:
            matrix = sp.csr_matrix((n, n))
        if charge_storage:
            self.oracle.charge_stored(matrix.nnz)
        return matrix
