"""Replicator dynamics (RD) — the solver behind Dominant Sets.

Discrete-time replicator dynamics on a non-negative symmetric payoff
matrix ``A``::

    x_i  <-  x_i * (A x)_i / (x' A x)

Pavan & Pelillo's Dominant Set method extracts one dense subgraph per RD
run; the paper uses RD both as DS's engine and, restricted to a subgraph,
inside the SEA baseline.  Each iteration costs a full matrix-vector
product, which is why the paper calls RD "time consuming" (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp

from repro.dynamics.simplex import renormalize, simplex_support
from repro.exceptions import ConvergenceError, ValidationError
from repro.utils.validation import check_probability_vector

__all__ = ["ReplicatorResult", "replicator_dynamics"]


@dataclass
class ReplicatorResult:
    """Outcome of a replicator-dynamics run.

    Attributes
    ----------
    x:
        Final mixed strategy (simplex point).
    density:
        Final graph density ``pi(x) = x' A x``.
    iterations:
        Number of iterations performed.
    converged:
        Whether the stopping criterion was met before the iteration cap.
    """

    x: np.ndarray
    density: float
    iterations: int
    converged: bool

    def support(self, tol: float = 1e-6) -> np.ndarray:
        """Vertices with weight above *tol* — the extracted dense subgraph."""
        return simplex_support(self.x, tol)


def replicator_dynamics(
    a_matrix,
    x0: np.ndarray,
    *,
    max_iter: int = 2000,
    tol: float = 1e-7,
    strict: bool = False,
) -> ReplicatorResult:
    """Run discrete replicator dynamics from *x0*.

    Parameters
    ----------
    a_matrix:
        Symmetric non-negative payoff matrix, dense ``(n, n)`` array or
        scipy sparse matrix.  The diagonal should be zero (paper Eq. 1).
    x0:
        Starting simplex point.
    max_iter:
        Iteration cap.
    tol:
        Stop when the L1 change of *x* falls below *tol*.
    strict:
        If True, raise :class:`ConvergenceError` instead of returning the
        best iterate when *max_iter* is exhausted.

    Returns
    -------
    ReplicatorResult
    """
    dense = not sp.issparse(a_matrix)
    if dense:
        a_matrix = np.asarray(a_matrix, dtype=np.float64)
        if a_matrix.ndim != 2 or a_matrix.shape[0] != a_matrix.shape[1]:
            raise ValidationError(
                f"a_matrix must be square, got shape {a_matrix.shape}"
            )
        n = a_matrix.shape[0]
    else:
        n = a_matrix.shape[0]
        if a_matrix.shape[0] != a_matrix.shape[1]:
            raise ValidationError(
                f"a_matrix must be square, got shape {a_matrix.shape}"
            )
    x = check_probability_vector(x0, name="x0").copy()
    if x.size != n:
        raise ValidationError(f"x0 has size {x.size}, matrix is {n}x{n}")

    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        ax = a_matrix @ x
        ax = np.asarray(ax).ravel()
        density = float(x @ ax)
        if density <= 0.0:
            # x sits on isolated vertices; it is already a fixed point.
            converged = True
            break
        new_x = x * ax / density
        renormalize(new_x)
        delta = float(np.abs(new_x - x).sum())
        x = new_x
        if delta < tol:
            converged = True
            break
    if not converged and strict:
        raise ConvergenceError(
            f"replicator dynamics did not converge in {max_iter} iterations"
        )
    ax = np.asarray(a_matrix @ x).ravel()
    density = float(x @ ax)
    return ReplicatorResult(
        x=x, density=density, iterations=iterations, converged=converged
    )
