"""Full-matrix Infection Immunization Dynamics (Rota Bulò et al.).

Solves the StQP of paper Eq. 3 by the infection/immunization scheme of
§3: per iteration, pick the vertex maximising ``|pi(s_i - x, x)|`` over
the infective set C1 and the weak-in-support set C2 (Eq. 6), invade with
either the vertex itself (infection) or its co-vertex (immunization,
Eq. 7) using the optimal share of Eq. 9.  Each iteration needs one column
of the payoff matrix and is O(n) given the matrix — but materialising the
matrix costs O(n^2), which is exactly the bottleneck ALID removes.

The implementation supports an *active mask* so the peeling driver can
restrict the dynamics to unpeeled vertices without copying submatrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp

from repro.dynamics.simplex import renormalize, simplex_support
from repro.exceptions import ConvergenceError, ValidationError
from repro.utils.validation import check_probability_vector

__all__ = ["IIDResult", "iid_dynamics", "infectivity", "invasion_share"]


@dataclass
class IIDResult:
    """Outcome of an IID run.

    Attributes
    ----------
    x:
        Final simplex point (zeros outside the active mask).
    density:
        Final graph density ``pi(x)``.
    iterations:
        Iterations performed.
    converged:
        True when no vertex in C1 ∪ C2 exceeded the tolerance, i.e. the
        point is immune against every vertex (Theorem 1) up to *tol*.
    """

    x: np.ndarray
    density: float
    iterations: int
    converged: bool

    def support(self, tol: float = 0.0) -> np.ndarray:
        """Vertices with strictly positive weight — the dense subgraph."""
        return simplex_support(self.x, tol)


def infectivity(ax: np.ndarray, density: float) -> np.ndarray:
    """Per-vertex payoff margin ``pi(s_i - x, x) = (Ax)_i - pi(x)``.

    Positive entries are infective vertices, negative entries in the
    support are weak vertices (paper Fig. 1).
    """
    return np.asarray(ax, dtype=np.float64) - float(density)


def invasion_share(pay_diff: float, pay_quad: float) -> float:
    """Optimal invasion share ``eps_y(x)`` of paper Eq. 9.

    Parameters
    ----------
    pay_diff:
        ``pi(y - x, x)`` — must be positive for an infective *y*.
    pay_quad:
        ``pi(y - x) = (y - x)' A (y - x)``.

    Returns
    -------
    float
        ``min(-pay_diff / pay_quad, 1)`` when ``pay_quad < 0``, else 1.
    """
    if pay_quad < 0.0:
        return min(-pay_diff / pay_quad, 1.0)
    return 1.0


def _column(a_matrix, i: int) -> np.ndarray:
    if sp.issparse(a_matrix):
        # Affinity matrices are symmetric, so column i equals row i —
        # and CSR row extraction is far cheaper than column slicing.
        return a_matrix.getrow(i).toarray().ravel()
    return np.asarray(a_matrix[:, i], dtype=np.float64)


def iid_dynamics(
    a_matrix,
    x0: np.ndarray,
    *,
    max_iter: int = 5000,
    tol: float = 1e-7,
    active: np.ndarray | None = None,
    strict: bool = False,
) -> IIDResult:
    """Run Infection Immunization Dynamics from *x0*.

    Parameters
    ----------
    a_matrix:
        Symmetric non-negative payoff matrix with zero diagonal,
        dense array or scipy sparse.
    x0:
        Starting simplex point; its support must lie inside *active*.
    max_iter:
        Iteration cap (the paper notes IID converges quickly).
    tol:
        Immunity tolerance: stop when ``max |pi(s_i - x, x)|`` over
        C1 ∪ C2 is at most *tol*.
    active:
        Optional boolean mask restricting the dynamics to a vertex subset
        (used by the peeling driver).  Inactive vertices can never be
        selected for infection.
    strict:
        Raise :class:`ConvergenceError` on non-convergence instead of
        returning the last iterate.

    Returns
    -------
    IIDResult
    """
    n = a_matrix.shape[0]
    if a_matrix.shape[0] != a_matrix.shape[1]:
        raise ValidationError(f"a_matrix must be square, got {a_matrix.shape}")
    x = check_probability_vector(x0, name="x0").copy()
    if x.size != n:
        raise ValidationError(f"x0 has size {x.size}, matrix is {n}x{n}")
    if active is None:
        active = np.ones(n, dtype=bool)
    else:
        active = np.asarray(active, dtype=bool)
        if active.shape != (n,):
            raise ValidationError(
                f"active mask must have shape ({n},), got {active.shape}"
            )
        if np.any(x[~active] > 0):
            raise ValidationError("x0 has weight on inactive vertices")

    ax = np.asarray(a_matrix @ x).ravel().astype(np.float64)
    density = float(x @ ax)

    converged = False
    iterations = 0
    inactive = ~active
    for iterations in range(1, max_iter + 1):
        pay = ax - density
        # C1: infective vertices (among active); C2: weak support vertices.
        pay_masked = pay.copy()
        pay_masked[inactive] = 0.0
        c1_scores = np.where(pay_masked > tol, pay_masked, 0.0)
        c2_scores = np.where((pay_masked < -tol) & (x > 0.0), -pay_masked, 0.0)
        scores = np.maximum(c1_scores, c2_scores)
        i = int(np.argmax(scores))
        if scores[i] <= tol:
            converged = True
            break
        col = _column(a_matrix, i)
        pay_i = float(pay[i])
        # pi(s_i - x) = a_ii - 2 (Ax)_i + pi(x); a_ii = 0 by Eq. 1.
        quad_i = -2.0 * float(ax[i]) + density
        if pay_i > 0.0:
            # Infection with y = s_i (paper Eq. 5 with y the pure vertex).
            eps = invasion_share(pay_i, quad_i)
            x *= 1.0 - eps
            x[i] += eps
            ax = (1.0 - eps) * ax + eps * col
        else:
            # Immunization with the co-vertex y = s_i(x) (paper Eq. 7);
            # mu = x_i / (x_i - 1) < 0 rescales the pure-vertex payoffs
            # (paper Eq. 12).
            xi = float(x[i])
            mu = xi / (xi - 1.0)
            pay_diff = mu * pay_i
            pay_quad = mu * mu * quad_i
            eps = invasion_share(pay_diff, pay_quad)
            # z = x + eps * mu * (s_i - x): off-support entries scale by
            # (1 - eps*mu) and entry i collapses to exactly (1 - eps) * x_i.
            x *= 1.0 - eps * mu
            x[i] = (1.0 - eps) * xi
            ax = ax + eps * mu * (col - ax)
        np.maximum(x, 0.0, out=x)
        total = float(x.sum())
        if abs(total - 1.0) > 1e-9:
            renormalize(x)
            ax = np.asarray(a_matrix @ x).ravel().astype(np.float64)
        density = float(x @ ax)
    if not converged and strict:
        raise ConvergenceError(f"IID did not converge in {max_iter} iterations")
    return IIDResult(x=x, density=density, iterations=iterations, converged=converged)
