"""Standard-simplex utilities shared by all game-dynamics solvers.

A subgraph is represented as a point ``x`` of the standard simplex
(paper §3): ``x_i`` is the probabilistic membership of vertex ``i``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator

__all__ = [
    "vertex",
    "barycenter",
    "random_simplex_point",
    "simplex_support",
    "is_simplex_point",
    "renormalize",
]


def vertex(i: int, n: int) -> np.ndarray:
    """The i-th simplex vertex ``s_i`` (paper's index vector)."""
    if not 0 <= i < n:
        raise ValidationError(f"vertex index {i} out of range [0, {n})")
    x = np.zeros(n, dtype=np.float64)
    x[i] = 1.0
    return x


def barycenter(n: int, support: np.ndarray | None = None) -> np.ndarray:
    """Uniform point over *support* (default: all n vertices).

    The standard initialisation of replicator-style dynamics: every vertex
    of the (sub)graph gets equal weight.
    """
    if n <= 0:
        raise ValidationError(f"n must be positive, got {n}")
    x = np.zeros(n, dtype=np.float64)
    if support is None:
        x[:] = 1.0 / n
    else:
        support = np.asarray(support, dtype=np.intp)
        if support.size == 0:
            raise ValidationError("support must be non-empty")
        x[support] = 1.0 / support.size
    return x


def random_simplex_point(n: int, seed=None) -> np.ndarray:
    """Uniform (Dirichlet(1)) random point on the n-simplex."""
    if n <= 0:
        raise ValidationError(f"n must be positive, got {n}")
    rng = as_generator(seed)
    x = rng.dirichlet(np.ones(n))
    return np.asarray(x, dtype=np.float64)


def simplex_support(x: np.ndarray, tol: float = 0.0) -> np.ndarray:
    """Indices with weight strictly above *tol* (paper's alpha set)."""
    x = np.asarray(x, dtype=np.float64)
    return np.flatnonzero(x > tol).astype(np.intp)


def is_simplex_point(x: np.ndarray, atol: float = 1e-8) -> bool:
    """True if *x* is non-negative and sums to 1 within *atol*."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        return False
    if not np.all(np.isfinite(x)):
        return False
    if np.any(x < -atol):
        return False
    return abs(float(x.sum()) - 1.0) <= max(atol, 1e-12 * x.size)


def renormalize(x: np.ndarray) -> np.ndarray:
    """Clip tiny negative roundoff to zero and rescale to sum one, in place."""
    np.maximum(x, 0.0, out=x)
    total = x.sum()
    if total <= 0.0:
        raise ValidationError("cannot renormalize the zero vector")
    x /= total
    return x
