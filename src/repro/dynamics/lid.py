"""Localized Infection Immunization Dynamics — LID (paper Alg. 1, §4.1).

LID runs the infection/immunization scheme *inside a local range* ``beta``
(an index set of graph vertices) and never touches the full affinity
matrix: it maintains

* ``x``      — the local mixed strategy, aligned with ``beta``;
* ``g``      — the payoff vector ``(A x)_beta = A[beta, alpha] @ x_alpha``
  (the paper's ``A_beta_alpha x_alpha``); and
* a cache of affinity columns ``A[beta, j]`` (paper Fig. 3's green
  columns), fetched on demand through the instrumented oracle and charged
  to the simulated-memory accounting.  The cache is the matrix-backed LRU
  :class:`~repro.affinity.cache.ColumnBlockCache`: misses are fetched as
  one BLAS block, local-range changes are single fancy-index operations,
  and under a storage budget the least-recently-used columns are evicted
  instead of aborting the run.

Per iteration: O(|beta|) arithmetic plus at most one new column of kernel
evaluations — exactly the paper's claimed cost.  The iteration loop
itself runs on one of the interchangeable backends of
:mod:`repro.dynamics.lid_kernel` (reference / fused run-until-miss /
optional numba), all bit-identical.
"""

from __future__ import annotations

import time

import numpy as np

from repro.affinity.cache import ColumnBlockCache
from repro.affinity.oracle import AffinityOracle
from repro.dynamics.lid_kernel import resolve_lid_kernel
from repro.exceptions import ValidationError
from repro.obs import phases
from repro.utils.validation import check_index_array

__all__ = ["LIDState", "lid_dynamics"]


class LIDState:
    """Mutable state of a localized infection-immunization run.

    The state owns the column cache and its storage accounting; call
    :meth:`release` when a cluster is peeled so the simulated memory is
    freed (paper §4.5: "all submatrices are released when the i-th
    cluster is peeled off").
    """

    def __init__(
        self,
        oracle: AffinityOracle,
        beta: np.ndarray,
        x: np.ndarray,
        g: np.ndarray,
        *,
        max_cached_columns: int | None = None,
    ):
        self.oracle = oracle
        self.beta = check_index_array(beta, oracle.n, name="beta", allow_empty=False)
        if len(np.unique(self.beta)) != len(self.beta):
            raise ValidationError("beta contains duplicate indices")
        self.x = np.asarray(x, dtype=np.float64).copy()
        self.g = np.asarray(g, dtype=np.float64).copy()
        if self.x.shape != self.beta.shape or self.g.shape != self.beta.shape:
            raise ValidationError(
                f"x/g must align with beta: beta={self.beta.shape}, "
                f"x={self.x.shape}, g={self.g.shape}"
            )
        self._cache = ColumnBlockCache(
            oracle, self.beta, max_columns=max_cached_columns
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_seed(cls, oracle: AffinityOracle, seed_index: int) -> "LIDState":
        """Paper Alg. 2 line 1: beta = {i}, x = s_i, A_beta_alpha x = a_ii = 0."""
        beta = np.asarray([seed_index], dtype=np.intp)
        return cls(oracle, beta, np.asarray([1.0]), np.asarray([0.0]))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current size of the local range |beta|."""
        return int(self.beta.size)

    def density(self) -> float:
        """Graph density pi(x) = x' A x = sum_i x_i * g_i (local)."""
        return float(self.x @ self.g)

    def payoffs(self) -> np.ndarray:
        """pi(s_i - x, x) for every i in beta (paper Eq. 10)."""
        return self.g - self.density()

    def support_positions(self, tol: float = 0.0) -> np.ndarray:
        """Positions (into beta) of vertices with weight > tol."""
        return np.flatnonzero(self.x > tol).astype(np.intp)

    def support_global(self, tol: float = 0.0) -> np.ndarray:
        """Global indices of the support (the paper's alpha set)."""
        return self.beta[self.support_positions(tol)]

    def cached_entries(self) -> int:
        """Number of affinity entries currently held by the column cache."""
        return self._cache.cached_entries()

    def has_cached(self, j_global: int) -> bool:
        """True when column *j_global* is resident in the cache."""
        return int(j_global) in self._cache

    def cached_column(self, j_global: int) -> np.ndarray | None:
        """An owned copy of the cached column, or None (never fetches)."""
        return self._cache.peek(int(j_global))

    # ------------------------------------------------------------------
    # column cache (A[beta, j], paper Fig. 3)
    # ------------------------------------------------------------------
    def column(self, j_global: int) -> np.ndarray:
        """Affinity column ``A[beta, j]`` aligned with beta, cached.

        Returns a view valid only until the next cache operation (see
        :meth:`ColumnBlockCache.get`); copy it if held across fetches.
        """
        return self._cache.get(int(j_global))

    def prefetch_columns(self, js_global: np.ndarray) -> None:
        """Batch-fetch several columns with one oracle block call."""
        self._cache.ensure(np.asarray(js_global, dtype=np.intp))

    def release(self) -> None:
        """Free all cached columns (cluster peeled).

        When a :class:`~repro.obs.phases.PhaseProfiler` is active, the
        cache's lifetime hit/miss/eviction tallies are drained into the
        ``cache`` phase (paper §4.5's release discipline is the natural
        flush point — the cache dies with the peeled cluster).
        """
        prof = phases.active()
        if prof is not None:
            cache = self._cache
            prof.record(
                "cache",
                entries=cache.cached_entries(),
                hits=cache.hits,
                misses=cache.misses,
                evictions=cache.evictions,
            )
            cache.hits = cache.misses = cache.evictions = 0
        self._cache.release_all()

    # ------------------------------------------------------------------
    # local-range updates (paper Eq. 17 and the beta = alpha ∪ psi step)
    # ------------------------------------------------------------------
    def restrict_to_support(self) -> None:
        """Shrink the local range to the support: beta <- alpha.

        Keeps ``g`` consistent because ``x`` has no weight outside alpha:
        ``g_alpha = A[alpha, alpha] @ x_alpha`` (paper Eq. 17, top block).
        Cached columns for vertices remaining in beta are row-subset with
        one fancy-index; all others are released.
        """
        pos = self.support_positions()
        if pos.size == self.beta.size:
            return
        new_beta = self.beta[pos]
        keep = np.isin(self._cache.column_ids(), new_beta)
        for j in self._cache.column_ids()[~keep]:
            self._cache.evict(int(j))
        self._cache.restrict_rows(pos)
        self.beta = new_beta
        self.x = self.x[pos].copy()
        self.g = self.g[pos].copy()

    def extend(self, psi: np.ndarray) -> None:
        """Grow the local range with new vertices psi (CIVS output).

        Implements paper Eq. 17: the new vertices join with zero weight
        and their payoff entries ``g_psi = A[psi, alpha] @ x_alpha`` are
        computed through the oracle.  The payoff block ``A[psi, alpha]``
        and the psi-row extension of every cached column come from
        **one** fused block fetch
        (:meth:`~repro.affinity.cache.ColumnBlockCache.extend_rows`
        with ``fetch_cols=alpha``): support columns that are already
        cached — the common case after a converged LID period — are
        charged once instead of twice, and nothing speculative is ever
        computed.
        """
        psi = check_index_array(psi, self.oracle.n, name="psi")
        if psi.size == 0:
            return
        psi = psi[np.isin(psi, self.beta, invert=True)]
        if psi.size == 0:
            return
        prof = phases.active()
        t0 = time.perf_counter() if prof is not None else 0.0
        before = self.oracle.counters.entries_computed
        alpha_pos = self.support_positions()
        alpha = self.beta[alpha_pos]
        if alpha.size > 0:
            block = self._cache.extend_rows(psi, fetch_cols=alpha)
            g_psi = block @ self.x[alpha_pos]
        else:
            self._cache.extend_rows(psi)
            g_psi = np.zeros(psi.size, dtype=np.float64)
        self.beta = np.concatenate([self.beta, psi])
        self.x = np.concatenate([self.x, np.zeros(psi.size)])
        self.g = np.concatenate([self.g, g_psi])
        if prof is not None:
            prof.record(
                "extend",
                wall=time.perf_counter() - t0,
                entries=self.oracle.counters.entries_computed - before,
                vertices=int(psi.size),
            )

    # ------------------------------------------------------------------
    # consistency check (used by tests)
    # ------------------------------------------------------------------
    def recompute_g(self) -> np.ndarray:
        """Recompute ``(A x)_beta`` from scratch (testing/verification)."""
        alpha_pos = self.support_positions()
        if alpha_pos.size == 0:
            return np.zeros(self.beta.size)
        block = self.oracle.block(self.beta, self.beta[alpha_pos])
        return block @ self.x[alpha_pos]


def lid_dynamics(
    state: LIDState,
    *,
    max_iter: int = 1000,
    tol: float = 1e-7,
    kernel: str = "fused",
) -> tuple[int, bool]:
    """Run LID iterations (paper Alg. 1) on *state* in place.

    Repeats single LID periods until the local point is immune against
    every vertex of the local range (``gamma_beta(x) = empty``, Theorem 1)
    up to *tol*, or until *max_iter* — the paper's constant ``T``.

    The inner loop runs on one of the interchangeable backends of
    :mod:`repro.dynamics.lid_kernel` — ``"reference"`` (the historical
    per-period loop), ``"fused"`` (run-until-miss single-pass NumPy over
    the cache's resident block, the default) or ``"numba"`` (optional
    compiled step, falling back to ``"fused"`` when unavailable).  All
    backends produce bit-identical iterates, iteration counts, work
    accounting, and cache recency order; per period the only kernel work
    is (at most) one column fetch through the LRU cache.

    Returns
    -------
    (iterations, converged)
    """
    runner, _ = resolve_lid_kernel(kernel)
    prof = phases.active()
    if prof is None:
        return runner(state, max_iter, tol)
    t0 = time.perf_counter()
    before = state.oracle.counters.entries_computed
    iterations, converged = runner(state, max_iter, tol)
    prof.record(
        "lid",
        wall=time.perf_counter() - t0,
        entries=state.oracle.counters.entries_computed - before,
        iterations=int(iterations),
    )
    return iterations, converged
