"""Evolutionary-game dynamics substrate.

Dense-subgraph seeking is a standard quadratic optimisation problem (StQP)
over the simplex (paper Eq. 3).  This package provides three solvers:

* :mod:`~repro.dynamics.replicator` — replicator dynamics (RD), the solver
  behind the Dominant Sets baseline (Pavan & Pelillo);
* :mod:`~repro.dynamics.iid` — full-matrix Infection Immunization Dynamics
  (Rota Bulò et al.), linear time/space per iteration given the matrix;
* :mod:`~repro.dynamics.lid` — Localized IID (paper Alg. 1), which only
  touches the column block ``A[beta, alpha]`` through the affinity oracle.
"""

from repro.dynamics.iid import IIDResult, iid_dynamics, infectivity
from repro.dynamics.lid import LIDState, lid_dynamics
from repro.dynamics.lid_kernel import (
    LID_KERNELS,
    available_lid_kernels,
    kernel_info,
    resolve_lid_kernel,
)
from repro.dynamics.replicator import ReplicatorResult, replicator_dynamics
from repro.dynamics.simplex import (
    barycenter,
    is_simplex_point,
    random_simplex_point,
    simplex_support,
    vertex,
)

__all__ = [
    "IIDResult",
    "iid_dynamics",
    "infectivity",
    "LIDState",
    "lid_dynamics",
    "LID_KERNELS",
    "available_lid_kernels",
    "kernel_info",
    "resolve_lid_kernel",
    "ReplicatorResult",
    "replicator_dynamics",
    "barycenter",
    "is_simplex_point",
    "random_simplex_point",
    "simplex_support",
    "vertex",
]
