"""Interchangeable inner-loop kernels for the LID dynamics (paper Alg. 1).

PR 1 made the per-iteration arithmetic O(|beta|), matching the paper's
claimed cost — but each of the ~40k single-period iterations of a full
detection still paid ~12 NumPy dispatches plus a Python-level LRU
lookup, even though the selected column is almost always already
resident in the :class:`~repro.affinity.cache.ColumnBlockCache`.  This
module collapses that constant factor with a **run-until-miss** loop:
consecutive LID periods execute against one
:meth:`~repro.affinity.cache.ColumnBlockCache.resident_view` of the
cache's backing matrix, and the kernel only returns to the generic
cache machinery when the selected vertex's column is a miss (one oracle
fetch, then re-enter).

Three backends are exposed through
:class:`~repro.core.config.ALIDConfig.lid_kernel` and
:func:`repro.dynamics.lid.lid_dynamics`:

``"reference"``
    The historical loop, kept verbatim as the equivalence oracle.
``"fused"``
    Single-pass NumPy over the resident block (the default): bound-
    method reductions, an incrementally maintained support-penalty
    array instead of a per-iteration mask rebuild, stacked ``x``/``g``
    updates for shared scale factors, and LRU recency replayed in
    batches at run boundaries.
``"numba"``
    Optional ``@njit`` compilation of the per-period selection + update
    step (install the ``fast`` extra).  Falls back to ``"fused"`` when
    numba is not importable, fails to compile, or fails the start-up
    **bit-equivalence self-check** against the fused backend — the
    backends' contract is *identical iterates*, so a platform whose
    compiled reductions round differently must not silently engage.

All backends produce bit-identical ``x`` and ``g`` trajectories,
identical iteration counts, identical ``entries_computed``, and
identical LRU recency order (pinned by
``tests/test_dynamics_lid_kernel.py``), so detections and the Fig. 9
eviction behaviour are backend-independent.  The fused and numba
backends require a clean starting point (finite ``g``, non-negative
``x`` without negative zeros — everything the ALID driver produces);
anything else delegates to the reference loop, whose semantics on
degenerate input are the contract.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.dynamics.iid import invasion_share
from repro.exceptions import ValidationError

__all__ = [
    "LID_KERNELS",
    "available_lid_kernels",
    "kernel_info",
    "resolve_lid_kernel",
    "run_fused",
    "run_numba",
    "run_reference",
]

#: The recognised backend names, in documentation order.
LID_KERNELS = ("reference", "fused", "numba")

_INF = np.inf

# Flush the recency-replay buffer after this many recorded hits so the
# bookkeeping stays O(1) amortised even for very long runs (tests shrink
# it to exercise the flush path).
_REPLAY_FLUSH = 4096


def available_lid_kernels() -> tuple[str, ...]:
    """Return the recognised LID kernel backend names."""
    return LID_KERNELS


def kernel_info(name: str) -> dict:
    """Describe how backend *name* resolves on this machine.

    Returns a dict with ``requested`` (the name passed in), ``resolved``
    (the backend that actually runs) and ``reason`` (why a fallback was
    taken, or None).  ``"numba"`` resolves to ``"fused"`` when numba is
    missing, will not compile, or fails the bit-equivalence self-check.
    """
    if name not in LID_KERNELS:
        raise ValidationError(
            f"lid_kernel must be one of {LID_KERNELS}, got {name!r}"
        )
    if name != "numba":
        return {"requested": name, "resolved": name, "reason": None}
    step = _numba_step()
    if step is None:
        return {
            "requested": "numba",
            "resolved": "fused",
            "reason": _NUMBA_STATE["reason"],
        }
    return {"requested": "numba", "resolved": "numba", "reason": None}


def resolve_lid_kernel(name: str):
    """Map a backend name to its runner, applying the numba fallback.

    Returns ``(runner, resolved_name)`` where *runner* has the signature
    ``runner(state, max_iter, tol) -> (iterations, converged)``.
    """
    info = kernel_info(name)
    resolved = info["resolved"]
    return _RUNNERS[resolved], resolved


# ----------------------------------------------------------------------
# reference backend (the historical loop, equivalence oracle)
# ----------------------------------------------------------------------
def run_reference(state, max_iter: int, tol: float) -> tuple[int, bool]:
    """Run LID periods with the original per-iteration loop.

    One cache lookup (:meth:`LIDState.column`) and ~12 small NumPy ops
    per period.  Kept verbatim as the oracle the fused/compiled
    backends are pinned against.
    """
    x = state.x
    g = state.g
    converged = False
    iterations = 0
    scores = np.empty_like(g)
    neg = np.empty_like(g)
    for iterations in range(1, max_iter + 1):
        density = float(x @ g)
        # Select by Eq. 6/8: strongest infective vertex or weakest support
        # vertex, whichever has the larger |pi(s_i - x, x)|; the payoff
        # margin is pay_i = g_i - density.
        np.subtract(g, density, out=scores)
        np.negative(scores, out=neg)
        neg[x <= 0.0] = 0.0
        np.maximum(scores, neg, out=scores)
        pos = int(np.argmax(scores))
        if scores[pos] <= tol:
            converged = True
            iterations -= 1
            break
        col = state.column(int(state.beta[pos]))
        pay_i = float(g[pos]) - density
        quad_i = -2.0 * float(g[pos]) + density  # pi(s_i - x), Eq. 11
        if pay_i > 0.0:
            # Infection with the pure vertex (Eq. 13/14 first case).
            eps = invasion_share(pay_i, quad_i)
            x *= 1.0 - eps
            x[pos] += eps
            g *= 1.0 - eps
            g += eps * col
        else:
            # Immunization with the co-vertex (Eq. 12, Eq. 13/14 second
            # case); mu = x_i / (x_i - 1) < 0.
            xi = float(x[pos])
            mu = xi / (xi - 1.0)
            eps = invasion_share(mu * pay_i, mu * mu * quad_i)
            x *= 1.0 - eps * mu
            x[pos] = (1.0 - eps) * xi
            g += eps * mu * (col - g)
        # Roundoff hygiene: x and g are linear in the same scale factor.
        np.maximum(x, 0.0, out=x)
        total = float(x.sum())
        if abs(total - 1.0) > 1e-9 and total > 0.0:
            x /= total
            g /= total
    state.x = x
    state.g = g
    return iterations, converged


# ----------------------------------------------------------------------
# shared run-until-miss machinery
# ----------------------------------------------------------------------
def _clean_start(x: np.ndarray, g: np.ndarray) -> bool:
    """True when the fast backends' preconditions hold.

    The fused loop skips the reference's per-iteration clamp
    (``maximum(x, 0)``) because the updates provably cannot produce a
    negative weight from a non-negative one; that proof needs ``x``
    free of negatives, negative zeros and NaNs, and ``g`` finite (so
    the selection scan never meets a NaN).  Anything else is degenerate
    input whose behaviour the reference loop defines.
    """
    if x.size == 0:
        return True
    return (
        bool(np.all(x >= 0.0))
        and not bool(np.signbit(x).any())
        and bool(np.all(np.isfinite(g)))
    )


class _RecencyReplay:
    """Batched LRU-touch replay for the run-until-miss backends.

    The reference loop touches the selected column on every period; the
    fused loop must leave the cache's recency order in the identical
    state (evictions under a storage budget follow it), but paying a
    dict update per period is the overhead being removed.  Instead the
    per-period selections are recorded and replayed — deduplicated to
    the last access of each column, in chronological order — right
    before any operation that can read the recency order (a miss fetch,
    or run exit).
    """

    __slots__ = ("beta", "cache", "hits")

    def __init__(self, cache, beta: np.ndarray):
        self.cache = cache
        self.beta = beta
        self.hits: list[int] = []

    def flush(self) -> None:
        """Replay the recorded touches into the cache's LRU order."""
        hits = self.hits
        if not hits:
            return
        if len(hits) <= 16:
            # Short segment (typical between misses): pure-Python
            # last-occurrence dedupe beats ufunc dispatch.
            ordered: list[int] = []
            seen: set[int] = set()
            for pos in reversed(hits):
                if pos not in seen:
                    seen.add(pos)
                    ordered.append(pos)
            ordered.reverse()
            touched = [int(self.beta[pos]) for pos in ordered]
        else:
            seq = self.beta[np.asarray(hits, dtype=np.intp)]
            rev = seq[::-1]
            _, first = np.unique(rev, return_index=True)
            touched = [int(j) for j in rev[np.sort(first)][::-1]]
        self.cache.touch_sequence(touched)
        hits.clear()


def _writeback(state, x: np.ndarray, g: np.ndarray, replay) -> None:
    """Publish kernel-local buffers back onto the state."""
    replay.flush()
    state.x = x.copy()
    state.g = g.copy()


# ----------------------------------------------------------------------
# fused backend (single-pass NumPy on the resident block)
# ----------------------------------------------------------------------
def run_fused(state, max_iter: int, tol: float) -> tuple[int, bool]:
    """Run LID periods as a run-until-miss loop over the resident block.

    Per period (cache-hit path): one BLAS dot, four array passes for
    the Eq. 6/8 selection (subtract / argmax / penalty-add / argmin),
    the Eq. 13/14 update on a stacked ``(2, m)`` view of ``x`` and
    ``g``, and one sum for the roundoff hygiene — no cache lookup, no
    Python-level dict traffic, no allocations.  The support set is
    tracked as a ``0/+inf`` penalty array updated incrementally (the
    support changes by at most the selected vertex per period); the
    rare underflow-to-zero of a third vertex is detected at selection
    time and triggers a rebuild, so the trajectory stays bit-identical
    to the reference loop.
    """
    if not _clean_start(state.x, state.g):
        return run_reference(state, max_iter, tol)
    cache = state._cache
    beta = state.beta
    m = int(beta.size)
    stacked = np.empty((2, m))
    stacked[0] = state.x
    stacked[1] = state.g
    x = stacked[0]
    g = stacked[1]
    s = np.empty(m)
    tmp = np.empty(m)
    pen = np.where(x > 0.0, 0.0, _INF)
    replay = _RecencyReplay(cache, beta)
    hits_append = replay.hits.append
    subtract = np.subtract
    add = np.add
    multiply = np.multiply
    divide = np.divide
    x_dot = x.dot
    s_argmax = s.argmax
    tmp_argmin = tmp.argmin
    x_sum = x.sum
    buf, slots = cache.resident_view()
    it = 0
    converged = False
    try:
        while it < max_iter:
            it += 1
            while True:
                # --- selection (Eq. 6/8) --------------------------------
                d = float(x_dot(g))
                subtract(g, d, out=s)
                i1 = s_argmax()
                add(s, pen, out=tmp)
                i2 = tmp_argmin()
                s_inf = float(s[i1])
                s_sup = -float(tmp[i2])
                if s_inf >= s_sup:
                    best = s_inf
                    pos = int(i1) if s_inf > s_sup else min(int(i1), int(i2))
                else:
                    best = s_sup
                    pos = int(i2)
                if best <= tol:
                    converged = True
                    break
                if pos != i1 and float(x[pos]) == 0.0:
                    # The penalty array went stale (a weight underflowed
                    # to zero outside the selected position): rebuild it
                    # and redo the selection over the true support.
                    np.copyto(pen, 0.0)
                    pen[np.equal(x, 0.0)] = _INF
                    continue
                break
            if converged:
                it -= 1
                break
            slot = int(slots[pos])
            if slot < 0:
                # --- cache miss: one oracle fetch, then re-enter --------
                replay.flush()
                prev_cols = cache.n_columns
                j = int(beta[pos])
                cache.get(j)
                if cache._buf is buf and cache.n_columns == prev_cols + 1:
                    slot = cache.slot_index(j)
                    slots[pos] = slot
                else:
                    # Eviction or buffer growth: remap the whole view.
                    buf, slots = cache.resident_view()
                    slot = int(slots[pos])
            else:
                if len(replay.hits) >= _REPLAY_FLUSH:
                    replay.flush()
                hits_append(pos)
            col = buf[slot]
            # --- update (Eq. 13/14) -------------------------------------
            g_pos = float(g[pos])
            pay_i = g_pos - d
            quad_i = -2.0 * g_pos + d
            if pay_i > 0.0:
                if quad_i < 0.0:
                    eps = -pay_i / quad_i
                    if eps > 1.0:
                        eps = 1.0
                else:
                    eps = 1.0
                ce = 1.0 - eps
                multiply(stacked, ce, out=stacked)
                x[pos] += eps
                multiply(col, eps, out=tmp)
                add(g, tmp, out=g)
                if ce == 0.0:
                    pen.fill(_INF)
                pen[pos] = 0.0
            else:
                xi = float(x[pos])
                mu = xi / (xi - 1.0)
                pay_diff = mu * pay_i
                pay_quad = mu * mu * quad_i
                if pay_quad < 0.0:
                    eps = -pay_diff / pay_quad
                    if eps > 1.0:
                        eps = 1.0
                else:
                    eps = 1.0
                multiply(x, 1.0 - eps * mu, out=x)
                xnew = (1.0 - eps) * xi
                x[pos] = xnew
                subtract(col, g, out=tmp)
                multiply(tmp, eps * mu, out=tmp)
                add(g, tmp, out=g)
                if xnew == 0.0:
                    pen[pos] = _INF
            total = float(x_sum())
            if abs(total - 1.0) > 1e-9 and total > 0.0:
                divide(stacked, total, out=stacked)
    finally:
        # Publish progress even when the miss fetch raises (budget
        # exhaustion): the reference loop mutates in place, so partial
        # trajectories must survive the exception identically.
        _writeback(state, x, g, replay)
    return it, converged


# ----------------------------------------------------------------------
# numba backend (optional compiled selection + update step)
# ----------------------------------------------------------------------
def _lid_step(buf, slots, x, g, d, tol):  # pragma: no cover - njit source
    """One LID period over the resident block (numba-compiled source).

    Selection and update only — the two reductions whose bit patterns
    depend on the summation algorithm (the ``x . g`` density and the
    hygiene sum) stay outside, computed by NumPy between steps, so every
    arithmetic op here is an elementwise IEEE op or a comparison and the
    compiled trajectory matches the NumPy backends bit for bit.

    Returns ``(code, pos)`` with code 0 = converged, 1 = cache miss at
    ``pos`` (no update applied), 2 = updated with column ``slots[pos]``.
    """
    m = x.shape[0]
    i1 = 0
    smax = g[0] - d
    i2 = -1
    smin = np.inf
    for i in range(m):
        si = g[i] - d
        if si > smax:
            smax = si
            i1 = i
        if x[i] > 0.0 and si < smin:
            smin = si
            i2 = i
    s_inf = smax
    s_sup = -smin if i2 >= 0 else -np.inf
    if s_inf >= s_sup:
        best = s_inf
        if s_inf > s_sup or i1 < i2:
            pos = i1
        else:
            pos = i2
    else:
        best = s_sup
        pos = i2
    if best <= tol:
        return 0, pos
    slot = slots[pos]
    if slot < 0:
        return 1, pos
    col = buf[slot]
    g_pos = g[pos]
    pay_i = g_pos - d
    quad_i = -2.0 * g_pos + d
    if pay_i > 0.0:
        if quad_i < 0.0:
            eps = -pay_i / quad_i
            if eps > 1.0:
                eps = 1.0
        else:
            eps = 1.0
        ce = 1.0 - eps
        for i in range(m):
            x[i] = x[i] * ce
            t1 = g[i] * ce
            t2 = eps * col[i]
            g[i] = t1 + t2
        x[pos] = x[pos] + eps
    else:
        xi = x[pos]
        mu = xi / (xi - 1.0)
        pay_diff = mu * pay_i
        pay_quad = mu * mu * quad_i
        if pay_quad < 0.0:
            eps = -pay_diff / pay_quad
            if eps > 1.0:
                eps = 1.0
        else:
            eps = 1.0
        emu = eps * mu
        cx = 1.0 - emu
        for i in range(m):
            x[i] = x[i] * cx
            t1 = col[i] - g[i]
            t2 = emu * t1
            g[i] = g[i] + t2
        x[pos] = (1.0 - eps) * xi
    return 2, pos


_NUMBA_STATE: dict = {"checked": False, "step": None, "reason": None}


def _numba_step():
    """Compile (once) and self-check the njit step, or record why not."""
    if _NUMBA_STATE["checked"]:
        return _NUMBA_STATE["step"]
    _NUMBA_STATE["checked"] = True
    try:
        import numba
    except ImportError:
        _NUMBA_STATE["reason"] = "numba is not installed"
        return None
    try:
        step = numba.njit(cache=False, fastmath=False)(_lid_step)
        if not _self_check(step):
            _NUMBA_STATE["reason"] = (
                "compiled step failed the bit-equivalence self-check "
                "against the fused backend on this platform"
            )
            warnings.warn(
                "repro.dynamics.lid_kernel: " + _NUMBA_STATE["reason"]
                + "; lid_kernel='numba' falls back to 'fused'",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
    except Exception as exc:  # pragma: no cover - depends on numba build
        _NUMBA_STATE["reason"] = f"numba compilation failed: {exc}"
        warnings.warn(
            "repro.dynamics.lid_kernel: " + _NUMBA_STATE["reason"]
            + "; lid_kernel='numba' falls back to 'fused'",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    _NUMBA_STATE["step"] = step
    return step


def _self_check(step) -> bool:
    """Compare the compiled step against the fused backend, bit for bit."""
    from repro.affinity.kernel import LaplacianKernel
    from repro.affinity.oracle import AffinityOracle
    from repro.dynamics.lid import LIDState

    for seed, n, beta_n in ((0, 40, 24), (1, 60, 60), (2, 50, 7)):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 6))
        beta = np.sort(rng.choice(n, size=beta_n, replace=False)).astype(np.intp)
        results = []
        for runner in (run_fused, lambda st, mi, t: _run_stepped(st, mi, t, step)):
            oracle = AffinityOracle(data, LaplacianKernel(k=1.0, p=2.0))
            x = np.full(beta_n, 1.0 / beta_n)
            st = LIDState(oracle, beta, x, np.zeros(beta_n))
            st.g = st.recompute_g()
            out = runner(st, 200, 1e-7)
            results.append(
                (out, st.x.copy(), st.g.copy(),
                 oracle.counters.entries_computed)
            )
            st.release()
        (o1, x1, g1, e1), (o2, x2, g2, e2) = results
        if not (
            o1 == o2
            and e1 == e2
            and np.array_equal(x1, x2)
            and np.array_equal(g1, g2)
        ):
            return False
    return True


def _run_stepped(state, max_iter: int, tol: float, step) -> tuple[int, bool]:
    """Run-until-miss loop driving the compiled per-period *step*."""
    if not _clean_start(state.x, state.g):
        return run_reference(state, max_iter, tol)
    cache = state._cache
    beta = state.beta
    x = state.x.copy()
    g = state.g.copy()
    replay = _RecencyReplay(cache, beta)
    hits_append = replay.hits.append
    x_dot = x.dot
    x_sum = x.sum
    buf, slots = cache.resident_view()
    it = 0
    converged = False
    try:
        while it < max_iter:
            it += 1
            d = float(x_dot(g))
            code, pos = step(buf, slots, x, g, d, tol)
            while code == 1:
                replay.flush()
                prev_cols = cache.n_columns
                j = int(beta[pos])
                cache.get(j)
                if cache._buf is buf and cache.n_columns == prev_cols + 1:
                    slots[pos] = cache.slot_index(j)
                else:
                    buf, slots = cache.resident_view()
                code, pos = step(buf, slots, x, g, d, tol)
            if code == 0:
                converged = True
                it -= 1
                break
            if len(replay.hits) >= _REPLAY_FLUSH:
                replay.flush()
            hits_append(int(pos))
            total = float(x_sum())
            if abs(total - 1.0) > 1e-9 and total > 0.0:
                x /= total
                g /= total
    finally:
        _writeback(state, x, g, replay)
    return it, converged


def run_numba(state, max_iter: int, tol: float) -> tuple[int, bool]:
    """Run LID periods through the compiled step, or the fused fallback."""
    step = _numba_step()
    if step is None:
        return run_fused(state, max_iter, tol)
    return _run_stepped(state, max_iter, tol, step)


_RUNNERS = {
    "reference": run_reference,
    "fused": run_fused,
    "numba": run_numba,
}
