"""A small local MapReduce engine (Dean & Ghemawat's model, paper §4.6).

Jobs implement :class:`MapReduceJob`; :func:`run_mapreduce` executes the
map phase serially or on a ``multiprocessing`` fork pool, shuffles by
key, and reduces serially (reducers are cheap for PALID's workload).

Determinism: the shuffle groups values in mapper-emission order and the
reduce phase visits keys in sorted order, so serial and parallel runs of
a deterministic job produce identical output lists.

Fault tolerance follows the original MapReduce design: a map task that
fails on a worker is *re-executed* by the master (here: the driver
process) rather than failing the job — "the master simply re-executes
the work".  A task that still fails in the driver raises its original
error; pass a ``stats`` dict to observe how many chunks were retried.
"""

from __future__ import annotations

import multiprocessing
from collections import defaultdict
from collections.abc import Iterable

from repro.exceptions import ValidationError

__all__ = ["MapReduceJob", "chunk_evenly", "run_mapreduce"]


class MapReduceJob:
    """Base class for MapReduce jobs.

    Subclasses override :meth:`map` and :meth:`reduce`.  The job object is
    shared with forked workers copy-on-write, so it may hold large
    read-only state (data matrices, indexes) without per-task pickling.
    """

    def map(self, key, value) -> Iterable[tuple]:
        """Produce intermediate ``(key, value)`` pairs for one input."""
        raise NotImplementedError

    def reduce(self, key, values: list) -> Iterable[tuple]:
        """Combine all intermediate values of one key into output pairs."""
        raise NotImplementedError


# Module-level slot: set before the fork so workers inherit the job via
# copy-on-write instead of pickling it per task.
_ACTIVE_JOB: MapReduceJob | None = None


def _map_chunk(chunk: list[tuple]) -> list[tuple]:
    out: list[tuple] = []
    for key, value in chunk:
        out.extend(_ACTIVE_JOB.map(key, value))
    return out


def _map_chunk_safe(indexed_chunk: tuple) -> tuple:
    """Worker wrapper: never raises; reports failures to the driver.

    Returns ``(chunk_index, pairs, None)`` on success and
    ``(chunk_index, None, message)`` on failure, so one crashed task
    does not abort the pool and the driver can re-execute it.
    """
    index, chunk = indexed_chunk
    try:
        return index, _map_chunk(chunk), None
    except Exception as exc:  # noqa: BLE001 — reported, then re-raised in driver
        return index, None, f"{type(exc).__name__}: {exc}"


def chunk_evenly(items: list, n_chunks: int) -> list[list]:
    """Split *items* into at most *n_chunks* contiguous, near-equal runs.

    The partitioning rule shared by the MapReduce engine (map-task
    chunking) and the shard planner's contiguous strategy
    (:mod:`repro.serve.plan`): sizes differ by at most one, order is
    preserved, and fewer chunks are returned when there are fewer items
    than requested chunks (never an empty chunk).
    """
    n_chunks = max(1, min(n_chunks, len(items)))
    size, remainder = divmod(len(items), n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        end = start + size + (1 if i < remainder else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def run_mapreduce(
    job: MapReduceJob,
    inputs: Iterable[tuple],
    *,
    n_workers: int = 1,
    chunks_per_worker: int = 4,
    stats: dict | None = None,
) -> list[tuple]:
    """Execute *job* over *inputs* and return the reduced output pairs.

    Parameters
    ----------
    job:
        The MapReduce job.
    inputs:
        Iterable of ``(key, value)`` input pairs for the map phase.
    n_workers:
        1 runs everything in-process; >1 uses a fork-based worker pool
        (falls back to serial execution on platforms without ``fork``).
    chunks_per_worker:
        Input-splitting granularity; more chunks improve load balance for
        skewed map costs (PALID's per-seed cost varies with cluster size).
    stats:
        Optional dict; receives ``retried_chunks`` (map tasks that
        failed on a worker and were re-executed by the driver) and
        ``worker_errors`` (their error messages).
    """
    global _ACTIVE_JOB
    if n_workers < 1:
        raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
    input_list = list(inputs)
    if stats is not None:
        stats.setdefault("retried_chunks", 0)
        stats.setdefault("worker_errors", [])
    if n_workers == 1 or len(input_list) <= 1:
        mapped: list[tuple] = []
        for key, value in input_list:
            mapped.extend(job.map(key, value))
    else:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = None
        if ctx is None:
            return run_mapreduce(
                job, input_list, n_workers=1, stats=stats
            )
        chunks = chunk_evenly(input_list, n_workers * chunks_per_worker)
        _ACTIVE_JOB = job
        try:
            with ctx.Pool(processes=n_workers) as pool:
                results = pool.map(
                    _map_chunk_safe, list(enumerate(chunks))
                )
        finally:
            _ACTIVE_JOB = None
        # Re-execute failed map tasks in the driver (the MapReduce
        # master's recovery move); a failure here raises the original
        # error with full traceback.
        by_index: dict[int, list[tuple]] = {}
        for index, pairs, error in results:
            if error is None:
                by_index[index] = pairs
            else:
                if stats is not None:
                    stats["retried_chunks"] += 1
                    stats["worker_errors"].append(error)
                retried: list[tuple] = []
                for key, value in chunks[index]:
                    retried.extend(job.map(key, value))
                by_index[index] = retried
        mapped = [
            pair
            for index in sorted(by_index)
            for pair in by_index[index]
        ]

    groups: dict = defaultdict(list)
    for key, value in mapped:
        groups[key].append(value)
    try:
        ordered_keys = sorted(groups)
    except TypeError:
        ordered_keys = list(groups)
    output: list[tuple] = []
    for key in ordered_keys:
        output.extend(job.reduce(key, groups[key]))
    return output
