"""Parallel substrate: local MapReduce engine and PALID (paper §4.6).

The paper runs PALID on Apache Spark with data and hash tables in a
MongoDB server.  Here the same map/reduce structure (paper Alg. 3) runs
on an in-process MapReduce engine with a ``multiprocessing`` executor
pool; the shared read-only store is the parent process' memory, which
forked workers see copy-on-write — the same "mappers read a few items
from a shared store" access pattern, without the network (DESIGN.md §2).
"""

from repro.parallel.mapreduce import MapReduceJob, chunk_evenly, run_mapreduce
from repro.parallel.palid import PALID
from repro.parallel.storage import SharedDataStore

__all__ = [
    "MapReduceJob",
    "chunk_evenly",
    "run_mapreduce",
    "PALID",
    "SharedDataStore",
]
