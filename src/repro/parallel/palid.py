"""PALID — parallel ALID on MapReduce (paper Alg. 3, Fig. 5, §4.6).

Each mapper runs the full ALID iteration (Alg. 2) from one initial
vertex, independently of the others, over the *whole* (unpeeled) data
set, and emits ``(item_index, (cluster_label, density))`` for every item
of the detected cluster.  The reducer assigns every item to the densest
cluster claiming it — the paper's overlap resolution (Fig. 5's v4
example).

Initial vertices are "uniformly sample[d] from every LSH hash bucket
that contains more than 5 data items", at a 20% sample rate (§4.6):
large buckets are where dominant-cluster members concentrate.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.alid import ALIDEngine
from repro.core.config import ALIDConfig
from repro.core.results import Cluster, DetectionResult
from repro.exceptions import ValidationError
from repro.lsh.index import LSHIndex
from repro.parallel.mapreduce import MapReduceJob, run_mapreduce
from repro.utils.rng import as_generator
from repro.utils.timing import timed
from repro.utils.validation import check_data_matrix

__all__ = ["PALID", "sample_seeds"]


def sample_seeds(
    index: LSHIndex,
    *,
    sample_rate: float = 0.2,
    bucket_min_size: int = 6,
    table: int | None = None,
    seed=0,
) -> np.ndarray:
    """Sample initial vertices from large LSH buckets (paper §4.6).

    Items living in buckets of at least *bucket_min_size* active members
    are the likely dominant-cluster members; a uniform *sample_rate*
    fraction of them (at least one per contributing bucket's worth)
    becomes the PALID task list.  ``table=None`` (default) scans every
    hash table — sampling per-bucket per-table would oversample items
    that appear in many tables' large buckets, so eligibility is pooled
    across tables first and the rate is applied once.
    """
    if not 0.0 < sample_rate <= 1.0:
        raise ValidationError(f"sample_rate must be in (0, 1], got {sample_rate}")
    rng = as_generator(seed)
    buckets = index.large_buckets(min_size=bucket_min_size, table=table)
    if not buckets:
        # Degenerate fallback: no bucket is large enough (tiny data or
        # very fine hashes) — seed from every active item instead.
        return np.flatnonzero(index.active_mask).astype(np.intp)
    # One dedup pass over the concatenated buckets (sorted by np.unique),
    # instead of a Python set over every member of every bucket.
    pool = np.unique(np.concatenate(buckets)).astype(np.intp)
    count = max(1, int(np.ceil(sample_rate * pool.size)))
    picks = rng.choice(pool, size=count, replace=False)
    picks.sort()
    return picks


class _PALIDJob(MapReduceJob):
    """The MapReduce job of paper Alg. 3, batched per map task.

    One map input is a *block* of ``(seed, label)`` tasks rather than a
    single seed: the mapper drives the whole block through
    :meth:`~repro.core.alid.ALIDEngine.detect_cohort`, so the cohort's
    CIVS retrievals share one grouped LSH gather per outer iteration.
    PALID never peels between seeds (overlaps are resolved by the
    reducer), so arbitrary seed blocks are safe — every detection is
    identical to a standalone ``detect_from_seed`` call.
    """

    def __init__(self, engine: ALIDEngine):
        self.engine = engine

    def map(self, key: int, value: list[tuple[int, int]]) -> Iterable[tuple]:
        """Run Alg. 2 for a block of ``(seed, label)`` tasks (*value*)."""
        seeds = [int(seed) for seed, _ in value]
        detections = self.engine.detect_cohort(seeds)
        out: list[tuple] = []
        for (_, label), detection in zip(value, detections):
            density = float(detection.density)
            out.extend(
                (int(item), (int(label), density))
                for item in detection.members
            )
        return out

    def reduce(self, key: int, values: list) -> Iterable[tuple]:
        """Assign item *key* to the densest cluster claiming it."""
        best_label, best_density = max(values, key=lambda lv: lv[1])
        return [(int(key), (best_label, best_density))]


class PALID:
    """Parallel ALID detector.

    Parameters
    ----------
    config:
        ALID configuration (shared by every mapper).
    n_executors:
        Worker processes for the map phase (paper Table 2 sweeps 1-8).
    sample_rate / bucket_min_size:
        Seed-sampling parameters (paper: 20% from buckets of > 5 items).
    map_block_size:
        Seeds per map task: each mapper runs a block of seeds as one
        detection cohort (grouped LSH retrievals; see
        :meth:`~repro.core.alid.ALIDEngine.detect_cohort`).  Larger
        blocks amortise more per-seed overhead but hold one column
        cache per in-flight seed; 16 keeps the cohort's simulated
        memory close to the sequential mapper's.

    Notes
    -----
    With ``n_executors > 1`` the affinity-oracle counters of forked
    workers stay in the workers, so ``DetectionResult.counters`` reflects
    only parent-side work; use ``n_executors=1`` when accounting matters
    (the speedup experiment only needs wall-clock time).
    """

    #: Registry name (arena `Detector` protocol).
    name = "PALID"
    def __init__(
        self,
        config: ALIDConfig | None = None,
        *,
        n_executors: int = 1,
        sample_rate: float = 0.2,
        bucket_min_size: int = 6,
        map_block_size: int = 16,
    ):
        if n_executors < 1:
            raise ValidationError(
                f"n_executors must be >= 1, got {n_executors}"
            )
        if map_block_size < 1:
            raise ValidationError(
                f"map_block_size must be >= 1, got {map_block_size}"
            )
        self.config = config or ALIDConfig()
        self.n_executors = int(n_executors)
        self.sample_rate = float(sample_rate)
        self.bucket_min_size = int(bucket_min_size)
        self.map_block_size = int(map_block_size)
        self.engine_: ALIDEngine | None = None

    def fit(self, data: np.ndarray) -> DetectionResult:
        """Detect dominant clusters with parallel seed exploration."""
        data = check_data_matrix(data)
        with timed() as clock:
            with timed() as build_clock:
                # In the paper's architecture this phase — hashing the
                # corpus and storing the tables in MongoDB — happens once
                # and is shared by every executor configuration.
                engine = ALIDEngine(data, self.config)
                self.engine_ = engine
                seeds = sample_seeds(
                    engine.index,
                    sample_rate=self.sample_rate,
                    bucket_min_size=self.bucket_min_size,
                    seed=self.config.seed,
                )
            tasks = [(int(s), label) for label, s in enumerate(seeds)]
            tasklist = self._blocked_tasklist(tasks)
            job = _PALIDJob(engine)
            with timed() as map_clock:
                assignments = run_mapreduce(
                    job, tasklist, n_workers=self.n_executors
                )
            clusters = self._assemble(assignments)
        dominant = [
            c
            for c in clusters
            if c.density >= self.config.density_threshold
            and c.size >= self.config.min_cluster_size
        ]
        return DetectionResult(
            clusters=dominant,
            all_clusters=clusters,
            n_items=data.shape[0],
            runtime_seconds=clock[0],
            counters=engine.oracle.counters.snapshot(),
            method="PALID",
            metadata={
                "n_executors": self.n_executors,
                "n_seeds": len(seeds),
                "kernel_k": engine.kernel.k,
                "lsh_r": engine.lsh_r,
                "build_seconds": build_clock[0],
                "mapreduce_seconds": map_clock[0],
            },
        )

    def _blocked_tasklist(
        self, tasks: list[tuple[int, int]]
    ) -> list[tuple[int, list[tuple[int, int]]]]:
        """Partition ``(seed, label)`` tasks into cohort map blocks.

        One map input per seed *block* (Alg. 3 batched): the block index
        is the map key, its (seed, label) list the value.  Two
        load-balancing rules keep the parallel speedup of Table 2:

        * there are always at least ``4 * n_executors`` blocks (matching
          the MapReduce engine's chunking granularity), shrinking blocks
          below ``map_block_size`` when seeds are scarce;
        * seeds are dealt round-robin across blocks rather than cut into
          consecutive runs — sampled seeds come out sorted, so
          consecutive seeds tend to belong to the *same* (equally
          expensive) cluster and a consecutive split would stack the
          heavy ones into one block.
        """
        if not tasks:
            return []
        n_blocks = max(
            -(-len(tasks) // self.map_block_size),  # ceil division
            min(len(tasks), 4 * self.n_executors),
        )
        blocks = [tasks[offset::n_blocks] for offset in range(n_blocks)]
        return [(key, block) for key, block in enumerate(blocks) if block]

    @staticmethod
    def _assemble(assignments: list[tuple]) -> list[Cluster]:
        """Group reducer output into clusters (one per surviving label)."""
        members_by_label: dict[int, list[int]] = {}
        density_by_label: dict[int, float] = {}
        for item, (label, density) in assignments:
            members_by_label.setdefault(label, []).append(item)
            density_by_label[label] = density
        clusters: list[Cluster] = []
        for label in sorted(members_by_label):
            members = np.asarray(sorted(members_by_label[label]), dtype=np.intp)
            clusters.append(
                Cluster(
                    members=members,
                    weights=np.full(members.size, 1.0 / members.size),
                    density=density_by_label[label],
                    label=label,
                )
            )
        return clusters
