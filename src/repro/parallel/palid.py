"""PALID — parallel ALID on MapReduce (paper Alg. 3, Fig. 5, §4.6).

Each mapper runs the full ALID iteration (Alg. 2) from one initial
vertex, independently of the others, over the *whole* (unpeeled) data
set, and emits ``(item_index, (cluster_label, density))`` for every item
of the detected cluster.  The reducer assigns every item to the densest
cluster claiming it — the paper's overlap resolution (Fig. 5's v4
example).

Initial vertices are "uniformly sample[d] from every LSH hash bucket
that contains more than 5 data items", at a 20% sample rate (§4.6):
large buckets are where dominant-cluster members concentrate.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.alid import ALIDEngine
from repro.core.config import ALIDConfig
from repro.core.results import Cluster, DetectionResult
from repro.exceptions import ValidationError
from repro.lsh.index import LSHIndex
from repro.parallel.mapreduce import MapReduceJob, run_mapreduce
from repro.utils.rng import as_generator
from repro.utils.timing import timed
from repro.utils.validation import check_data_matrix

__all__ = ["PALID", "sample_seeds"]


def sample_seeds(
    index: LSHIndex,
    *,
    sample_rate: float = 0.2,
    bucket_min_size: int = 6,
    table: int | None = None,
    seed=0,
) -> np.ndarray:
    """Sample initial vertices from large LSH buckets (paper §4.6).

    Items living in buckets of at least *bucket_min_size* active members
    are the likely dominant-cluster members; a uniform *sample_rate*
    fraction of them (at least one per contributing bucket's worth)
    becomes the PALID task list.  ``table=None`` (default) scans every
    hash table — sampling per-bucket per-table would oversample items
    that appear in many tables' large buckets, so eligibility is pooled
    across tables first and the rate is applied once.
    """
    if not 0.0 < sample_rate <= 1.0:
        raise ValidationError(f"sample_rate must be in (0, 1], got {sample_rate}")
    rng = as_generator(seed)
    buckets = index.large_buckets(min_size=bucket_min_size, table=table)
    if not buckets:
        # Degenerate fallback: no bucket is large enough (tiny data or
        # very fine hashes) — seed from every active item instead.
        return np.flatnonzero(index.active_mask).astype(np.intp)
    # One dedup pass over the concatenated buckets (sorted by np.unique),
    # instead of a Python set over every member of every bucket.
    pool = np.unique(np.concatenate(buckets)).astype(np.intp)
    count = max(1, int(np.ceil(sample_rate * pool.size)))
    picks = rng.choice(pool, size=count, replace=False)
    picks.sort()
    return picks


class _PALIDJob(MapReduceJob):
    """The MapReduce job of paper Alg. 3."""

    def __init__(self, engine: ALIDEngine):
        self.engine = engine

    def map(self, key: int, value: int) -> Iterable[tuple]:
        """Run Alg. 2 from seed *key*; *value* is the unique cluster label."""
        detection = self.engine.detect_from_seed(int(key))
        label = int(value)
        density = float(detection.density)
        return [
            (int(item), (label, density)) for item in detection.members
        ]

    def reduce(self, key: int, values: list) -> Iterable[tuple]:
        """Assign item *key* to the densest cluster claiming it."""
        best_label, best_density = max(values, key=lambda lv: lv[1])
        return [(int(key), (best_label, best_density))]


class PALID:
    """Parallel ALID detector.

    Parameters
    ----------
    config:
        ALID configuration (shared by every mapper).
    n_executors:
        Worker processes for the map phase (paper Table 2 sweeps 1-8).
    sample_rate / bucket_min_size:
        Seed-sampling parameters (paper: 20% from buckets of > 5 items).

    Notes
    -----
    With ``n_executors > 1`` the affinity-oracle counters of forked
    workers stay in the workers, so ``DetectionResult.counters`` reflects
    only parent-side work; use ``n_executors=1`` when accounting matters
    (the speedup experiment only needs wall-clock time).
    """

    def __init__(
        self,
        config: ALIDConfig | None = None,
        *,
        n_executors: int = 1,
        sample_rate: float = 0.2,
        bucket_min_size: int = 6,
    ):
        if n_executors < 1:
            raise ValidationError(
                f"n_executors must be >= 1, got {n_executors}"
            )
        self.config = config or ALIDConfig()
        self.n_executors = int(n_executors)
        self.sample_rate = float(sample_rate)
        self.bucket_min_size = int(bucket_min_size)
        self.engine_: ALIDEngine | None = None

    def fit(self, data: np.ndarray) -> DetectionResult:
        """Detect dominant clusters with parallel seed exploration."""
        data = check_data_matrix(data)
        with timed() as clock:
            with timed() as build_clock:
                # In the paper's architecture this phase — hashing the
                # corpus and storing the tables in MongoDB — happens once
                # and is shared by every executor configuration.
                engine = ALIDEngine(data, self.config)
                self.engine_ = engine
                seeds = sample_seeds(
                    engine.index,
                    sample_rate=self.sample_rate,
                    bucket_min_size=self.bucket_min_size,
                    seed=self.config.seed,
                )
            tasklist = [(int(s), label) for label, s in enumerate(seeds)]
            job = _PALIDJob(engine)
            with timed() as map_clock:
                assignments = run_mapreduce(
                    job, tasklist, n_workers=self.n_executors
                )
            clusters = self._assemble(assignments)
        dominant = [
            c
            for c in clusters
            if c.density >= self.config.density_threshold
            and c.size >= self.config.min_cluster_size
        ]
        return DetectionResult(
            clusters=dominant,
            all_clusters=clusters,
            n_items=data.shape[0],
            runtime_seconds=clock[0],
            counters=engine.oracle.counters.snapshot(),
            method="PALID",
            metadata={
                "n_executors": self.n_executors,
                "n_seeds": len(seeds),
                "kernel_k": engine.kernel.k,
                "lsh_r": engine.lsh_r,
                "build_seconds": build_clock[0],
                "mapreduce_seconds": map_clock[0],
            },
        )

    @staticmethod
    def _assemble(assignments: list[tuple]) -> list[Cluster]:
        """Group reducer output into clusters (one per surviving label)."""
        members_by_label: dict[int, list[int]] = {}
        density_by_label: dict[int, float] = {}
        for item, (label, density) in assignments:
            members_by_label.setdefault(label, []).append(item)
            density_by_label[label] = density
        clusters: list[Cluster] = []
        for label in sorted(members_by_label):
            members = np.asarray(sorted(members_by_label[label]), dtype=np.intp)
            clusters.append(
                Cluster(
                    members=members,
                    weights=np.full(members.size, 1.0 / members.size),
                    density=density_by_label[label],
                    label=label,
                )
            )
        return clusters
