"""Shared read-only store — the MongoDB stand-in (paper §4.6).

The paper keeps "the hash tables and data items [...] in a server
database and accessed via the network", observing that communication is
cheap because each mapper touches only a few items.  Locally, the same
sharing is achieved by building the store in the parent process before
the worker pool forks: the data matrix and LSH index are inherited
copy-on-write, and :meth:`SharedDataStore.fetch` counts item accesses so
the "mappers only read a few items" claim is measurable.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_data_matrix, check_index_array

__all__ = ["SharedDataStore"]


class SharedDataStore:
    """Read-only data store with access accounting.

    Parameters
    ----------
    data:
        The data matrix ``(n, d)`` all mappers share.
    """

    def __init__(self, data: np.ndarray):
        self._data = check_data_matrix(data)
        self._data.setflags(write=False)
        self.fetch_calls = 0
        self.items_fetched = 0

    @property
    def n(self) -> int:
        """Number of stored items."""
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        """Item dimensionality."""
        return self._data.shape[1]

    @property
    def data(self) -> np.ndarray:
        """The full read-only matrix (for engine construction)."""
        return self._data

    def fetch(self, indices: np.ndarray) -> np.ndarray:
        """Fetch items by index, counting the access (network model)."""
        indices = check_index_array(indices, self.n, name="indices")
        self.fetch_calls += 1
        self.items_fetched += int(indices.size)
        return self._data[indices]
