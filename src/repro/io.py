"""Persistence: save/load datasets and detection results.

Datasets round-trip through ``.npz`` (data + labels + metadata);
detection results through ``.npz`` as well (cluster members, weights,
densities, counters), so experiment outputs can be archived and
re-evaluated without re-running detection.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.affinity.oracle import AffinityCounters
from repro.core.results import Cluster, DetectionResult
from repro.datasets.base import Dataset
from repro.exceptions import ValidationError

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_detection",
    "load_detection",
]


def _as_path(path) -> pathlib.Path:
    out = pathlib.Path(path)
    if out.suffix != ".npz":
        out = out.with_suffix(".npz")
    return out


def save_dataset(dataset: Dataset, path) -> pathlib.Path:
    """Write a dataset to ``<path>.npz`` and return the resolved path."""
    path = _as_path(path)
    np.savez_compressed(
        path,
        data=dataset.data,
        labels=dataset.labels,
        name=np.asarray(dataset.name),
        metadata=np.asarray(json.dumps(dataset.metadata, default=str)),
    )
    return path


def load_dataset(path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = _as_path(path)
    with np.load(path, allow_pickle=False) as archive:
        return Dataset(
            data=archive["data"],
            labels=archive["labels"],
            name=str(archive["name"]),
            metadata=json.loads(str(archive["metadata"])),
        )


def save_detection(result: DetectionResult, path) -> pathlib.Path:
    """Write a detection result to ``<path>.npz``.

    Clusters are stored as flattened member/weight arrays with offsets;
    the dominant subset is stored as indices into ``all_clusters``.
    """
    path = _as_path(path)
    all_clusters = result.all_clusters
    members = (
        np.concatenate([c.members for c in all_clusters])
        if all_clusters
        else np.empty(0, dtype=np.intp)
    )
    weights = (
        np.concatenate([c.weights for c in all_clusters])
        if all_clusters
        else np.empty(0)
    )
    offsets = np.cumsum([0] + [c.size for c in all_clusters])
    densities = np.asarray([c.density for c in all_clusters])
    labels = np.asarray([c.label for c in all_clusters], dtype=np.int64)
    seeds = np.asarray([c.seed for c in all_clusters], dtype=np.int64)
    dominant_ids = {id(c) for c in result.clusters}
    dominant_mask = np.asarray(
        [id(c) in dominant_ids for c in all_clusters], dtype=bool
    )
    counters = result.counters or AffinityCounters()
    np.savez_compressed(
        path,
        members=members,
        weights=weights,
        offsets=offsets,
        densities=densities,
        labels=labels,
        seeds=seeds,
        dominant_mask=dominant_mask,
        n_items=np.asarray(result.n_items),
        runtime_seconds=np.asarray(result.runtime_seconds),
        method=np.asarray(result.method),
        metadata=np.asarray(json.dumps(result.metadata, default=str)),
        counters=np.asarray(
            [
                counters.entries_computed,
                counters.entries_stored_current,
                counters.entries_stored_peak,
                counters.column_requests,
                counters.block_requests,
            ],
            dtype=np.int64,
        ),
        has_counters=np.asarray(result.counters is not None),
    )
    return path


def load_detection(path) -> DetectionResult:
    """Load a detection result written by :func:`save_detection`."""
    path = _as_path(path)
    with np.load(path, allow_pickle=False) as archive:
        offsets = archive["offsets"]
        members = archive["members"]
        weights = archive["weights"]
        densities = archive["densities"]
        labels = archive["labels"]
        seeds = archive["seeds"]
        dominant_mask = archive["dominant_mask"]
        if offsets.size < 1:
            raise ValidationError(f"{path} is not a detection archive")
        all_clusters = []
        for i in range(offsets.size - 1):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            all_clusters.append(
                Cluster(
                    members=members[lo:hi],
                    weights=weights[lo:hi],
                    density=float(densities[i]),
                    label=int(labels[i]),
                    seed=int(seeds[i]),
                )
            )
        dominant = [
            c for c, keep in zip(all_clusters, dominant_mask) if keep
        ]
        counters = None
        if bool(archive["has_counters"]):
            raw = archive["counters"]
            counters = AffinityCounters(
                entries_computed=int(raw[0]),
                entries_stored_current=int(raw[1]),
                entries_stored_peak=int(raw[2]),
                column_requests=int(raw[3]),
                block_requests=int(raw[4]),
            )
        return DetectionResult(
            clusters=dominant,
            all_clusters=all_clusters,
            n_items=int(archive["n_items"]),
            runtime_seconds=float(archive["runtime_seconds"]),
            counters=counters,
            method=str(archive["method"]),
            metadata=json.loads(str(archive["metadata"])),
        )
