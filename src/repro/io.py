"""Persistence: save/load datasets and detection results.

Datasets round-trip through ``.npz`` (data + labels + metadata);
detection results through ``.npz`` as well (cluster members, weights,
densities, counters), so experiment outputs can be archived and
re-evaluated without re-running detection.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.affinity.oracle import AffinityCounters
from repro.core.results import DetectionResult, pack_clusters, unpack_clusters
from repro.datasets.base import Dataset
from repro.exceptions import ValidationError

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_detection",
    "load_detection",
]


def _as_path(path) -> pathlib.Path:
    out = pathlib.Path(path)
    if out.suffix != ".npz":
        out = out.with_suffix(".npz")
    return out


def save_dataset(dataset: Dataset, path) -> pathlib.Path:
    """Write a dataset to ``<path>.npz`` and return the resolved path."""
    path = _as_path(path)
    np.savez_compressed(
        path,
        data=dataset.data,
        labels=dataset.labels,
        name=np.asarray(dataset.name),
        metadata=np.asarray(json.dumps(dataset.metadata, default=str)),
    )
    return path


def load_dataset(path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = _as_path(path)
    with np.load(path, allow_pickle=False) as archive:
        return Dataset(
            data=archive["data"],
            labels=archive["labels"],
            name=str(archive["name"]),
            metadata=json.loads(str(archive["metadata"])),
        )


def save_detection(result: DetectionResult, path) -> pathlib.Path:
    """Write a detection result to ``<path>.npz``.

    Clusters are stored as flattened member/weight arrays with offsets;
    the dominant subset is stored as indices into ``all_clusters``.
    """
    path = _as_path(path)
    all_clusters = result.all_clusters
    dominant_mask = np.zeros(len(all_clusters), dtype=bool)
    dominant_mask[result.dominant_rows()] = True
    counters = result.counters or AffinityCounters()
    np.savez_compressed(
        path,
        **pack_clusters(all_clusters),
        dominant_mask=dominant_mask,
        n_items=np.asarray(result.n_items),
        runtime_seconds=np.asarray(result.runtime_seconds),
        method=np.asarray(result.method),
        metadata=np.asarray(json.dumps(result.metadata, default=str)),
        counters=np.asarray(
            [
                counters.entries_computed,
                counters.entries_stored_current,
                counters.entries_stored_peak,
                counters.column_requests,
                counters.block_requests,
            ],
            dtype=np.int64,
        ),
        has_counters=np.asarray(result.counters is not None),
    )
    return path


def load_detection(path) -> DetectionResult:
    """Load a detection result written by :func:`save_detection`."""
    path = _as_path(path)
    with np.load(path, allow_pickle=False) as archive:
        try:
            all_clusters = unpack_clusters(
                archive, n_items=int(archive["n_items"])
            )
        except (KeyError, ValidationError) as exc:
            raise ValidationError(
                f"{path} is not a detection archive: {exc}"
            ) from exc
        dominant_mask = archive["dominant_mask"]
        dominant = [
            c for c, keep in zip(all_clusters, dominant_mask) if keep
        ]
        counters = None
        if bool(archive["has_counters"]):
            raw = archive["counters"]
            counters = AffinityCounters(
                entries_computed=int(raw[0]),
                entries_stored_current=int(raw[1]),
                entries_stored_peak=int(raw[2]),
                column_requests=int(raw[3]),
                block_requests=int(raw[4]),
            )
        return DetectionResult(
            clusters=dominant,
            all_clusters=all_clusters,
            n_items=int(archive["n_items"]),
            runtime_seconds=float(archive["runtime_seconds"]),
            counters=counters,
            method=str(archive["method"]),
            metadata=json.loads(str(archive["metadata"])),
        )
