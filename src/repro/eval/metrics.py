"""Detection-quality metrics: the paper's Average F1 score (AVG-F).

"AVG-F is obtained by averaging the F1 scores on all the true dominant
clusters" (§5, following Chen & Saad): for each ground-truth cluster, the
best F1 over all detected clusters is taken, then averaged over
ground-truth clusters.  Items are partially clustered, so entropy/NMI are
not appropriate (paper's remark) — only cluster-to-cluster overlap
matters.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["f1_score", "average_f1", "match_clusters", "precision_recall"]

IndexSets = Sequence[np.ndarray]


def _as_set(indices) -> set[int]:
    return set(int(i) for i in np.asarray(indices).ravel())


def precision_recall(detected, truth) -> tuple[float, float]:
    """Precision and recall of one detected cluster against one true one."""
    det = _as_set(detected)
    tru = _as_set(truth)
    if not tru:
        raise ValidationError("truth cluster must be non-empty")
    if not det:
        return 0.0, 0.0
    overlap = len(det & tru)
    return overlap / len(det), overlap / len(tru)


def f1_score(detected, truth) -> float:
    """F1 between a detected and a true cluster (sets of item indices)."""
    precision, recall = precision_recall(detected, truth)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def match_clusters(
    detected: IndexSets, truth: IndexSets
) -> list[tuple[int | None, float]]:
    """Best detected match for every truth cluster.

    Returns one ``(detected_index or None, f1)`` pair per truth cluster;
    ``None`` with f1=0 when nothing was detected.  Matching allows a
    detected cluster to serve several truth clusters (max-F1 matching, as
    in Chen & Saad's protocol).
    """
    truth_sets = [_as_set(t) for t in truth]
    if any(not t for t in truth_sets):
        raise ValidationError("truth clusters must be non-empty")
    detected_sets = [_as_set(d) for d in detected]
    out: list[tuple[int | None, float]] = []
    for tru in truth_sets:
        best_idx: int | None = None
        best_f1 = 0.0
        for idx, det in enumerate(detected_sets):
            if not det:
                continue
            overlap = len(det & tru)
            if overlap == 0:
                continue
            precision = overlap / len(det)
            recall = overlap / len(tru)
            f1 = 2.0 * precision * recall / (precision + recall)
            if f1 > best_f1:
                best_f1 = f1
                best_idx = idx
        out.append((best_idx, best_f1))
    return out


def average_f1(detected: IndexSets, truth: IndexSets) -> float:
    """The paper's AVG-F: mean best-F1 over all true dominant clusters."""
    if len(truth) == 0:
        raise ValidationError("need at least one truth cluster")
    matches = match_clusters(detected, truth)
    return float(np.mean([f1 for _, f1 in matches]))
