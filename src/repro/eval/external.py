"""External clustering indices: purity, NMI, B-cubed, pairwise F.

The paper evaluates with AVG-F only, remarking (after Chen & Saad) that
"since the data items are partially clustered in this task, traditional
evaluation criteria, such as entropy and normalized mutual information,
are not appropriate".  This module implements those traditional indices
anyway — so the remark can be *demonstrated* rather than taken on faith
(see ``tests/test_eval_external.py``: a detector that dumps all noise
into one giant cluster scores high NMI but low AVG-F).

Conventions match the rest of :mod:`repro.eval`: detections are index
arrays; ground truth is either index arrays or a label vector with
``-1`` marking unclustered noise.  Items absent from every detected
cluster form an implicit "unclustered" group where an index needs a
partition (NMI, purity).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "bcubed_fscore",
    "contingency_table",
    "labels_from_clusters",
    "normalized_mutual_information",
    "pairwise_fscore",
    "purity",
]

NOISE_LABEL = -1

IndexSets = Sequence[np.ndarray]


def labels_from_clusters(clusters: IndexSets, n_items: int) -> np.ndarray:
    """Flatten disjoint index sets into a label vector.

    Items in no cluster get ``-1``.  Overlapping memberships are
    rejected — the sequential peeling protocol produces disjoint
    clusters, and the label-vector representation cannot express
    overlap.
    """
    if n_items < 0:
        raise ValidationError(f"n_items must be >= 0, got {n_items}")
    labels = np.full(n_items, NOISE_LABEL, dtype=np.int64)
    for label, members in enumerate(clusters):
        members = np.asarray(members, dtype=np.intp)
        if members.size == 0:
            continue
        if members.min() < 0 or members.max() >= n_items:
            raise ValidationError(
                f"cluster {label} has members outside [0, {n_items})"
            )
        if np.any(labels[members] != NOISE_LABEL):
            raise ValidationError(
                f"cluster {label} overlaps an earlier cluster; label "
                "vectors cannot express overlapping clusters"
            )
        labels[members] = label
    return labels


def contingency_table(
    predicted: np.ndarray, truth: np.ndarray
) -> np.ndarray:
    """Joint count matrix of two label vectors (noise = one extra row/col).

    Rows follow the distinct predicted labels, columns the distinct
    truth labels, each in sorted order with ``-1`` (noise) first when
    present.
    """
    predicted = np.asarray(predicted, dtype=np.int64)
    truth = np.asarray(truth, dtype=np.int64)
    if predicted.shape != truth.shape or predicted.ndim != 1:
        raise ValidationError(
            "predicted and truth must be 1-D label vectors of equal "
            f"length, got {predicted.shape} and {truth.shape}"
        )
    if predicted.size == 0:
        raise ValidationError("label vectors must be non-empty")
    p_values, p_codes = np.unique(predicted, return_inverse=True)
    t_values, t_codes = np.unique(truth, return_inverse=True)
    table = np.zeros((p_values.size, t_values.size), dtype=np.int64)
    np.add.at(table, (p_codes, t_codes), 1)
    return table


def purity(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of items whose cluster's majority truth label they share.

    Computed over the full partition (noise is a class like any other),
    which is precisely why it misleads under partial clustering: one
    huge noise cluster is "pure" as long as noise is the majority.
    """
    table = contingency_table(predicted, truth)
    return float(table.max(axis=1).sum() / table.sum())


def normalized_mutual_information(
    predicted: np.ndarray, truth: np.ndarray
) -> float:
    """NMI with arithmetic-mean normalisation, in ``[0, 1]``.

    ``NMI = 2 I(P; T) / (H(P) + H(T))``; degenerate partitions with a
    single class on either side yield 0 (no information).
    """
    table = contingency_table(predicted, truth).astype(np.float64)
    n = table.sum()
    joint = table / n
    p_marginal = joint.sum(axis=1)
    t_marginal = joint.sum(axis=0)
    nonzero = joint > 0
    outer = np.outer(p_marginal, t_marginal)
    mutual = float(
        (joint[nonzero] * np.log(joint[nonzero] / outer[nonzero])).sum()
    )
    h_p = float(-(p_marginal[p_marginal > 0]
                  * np.log(p_marginal[p_marginal > 0])).sum())
    h_t = float(-(t_marginal[t_marginal > 0]
                  * np.log(t_marginal[t_marginal > 0])).sum())
    if h_p + h_t == 0.0:
        return 0.0
    return max(0.0, min(1.0, 2.0 * mutual / (h_p + h_t)))


def _pair_counts(labels: np.ndarray) -> float:
    """Number of same-cluster pairs in a label vector (noise excluded)."""
    values, counts = np.unique(labels[labels != NOISE_LABEL],
                               return_counts=True)
    return float((counts * (counts - 1) / 2).sum())


def pairwise_fscore(predicted: np.ndarray, truth: np.ndarray) -> float:
    """F1 over same-cluster item pairs of the ground-truth-labeled subset.

    The partial-clustering protocol: both label vectors are first
    restricted to the items the *truth* clusters (everything else is
    unlabeled background whose arrangement must not matter — the
    property AVG-F has and NMI lacks).  On that subset, pair precision
    is the fraction of co-clustered pairs that are truly co-clustered
    and pair recall the fraction of truly co-clustered pairs that were
    co-clustered.
    """
    predicted = np.asarray(predicted, dtype=np.int64)
    truth = np.asarray(truth, dtype=np.int64)
    if predicted.shape != truth.shape or predicted.ndim != 1:
        raise ValidationError(
            "predicted and truth must be 1-D label vectors of equal length"
        )
    labeled = truth != NOISE_LABEL
    predicted = predicted[labeled]
    truth = truth[labeled]
    if truth.size == 0:
        raise ValidationError("truth has no clustered items")
    both = predicted != NOISE_LABEL
    # Agreeing pairs via the contingency table of items clustered on
    # both sides.
    if both.any():
        table = contingency_table(
            predicted[both], truth[both]
        ).astype(float)
        agree = float((table * (table - 1) / 2).sum())
    else:
        agree = 0.0
    predicted_pairs = _pair_counts(predicted)
    truth_pairs = _pair_counts(truth)
    if predicted_pairs == 0 or truth_pairs == 0:
        return 0.0
    precision = agree / predicted_pairs
    recall = agree / truth_pairs
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def bcubed_fscore(predicted: np.ndarray, truth: np.ndarray) -> float:
    """B-cubed F1 over the truly clustered items.

    For each item with a truth cluster, precision is the fraction of its
    predicted cluster sharing its truth label, recall the fraction of
    its truth cluster sharing its predicted label; both averaged over
    items, then combined.  Items the detector left unclustered count as
    singletons (precision 1, recall 1/|truth cluster|).
    """
    predicted = np.asarray(predicted, dtype=np.int64)
    truth = np.asarray(truth, dtype=np.int64)
    if predicted.shape != truth.shape or predicted.ndim != 1:
        raise ValidationError(
            "predicted and truth must be 1-D label vectors of equal length"
        )
    clustered = np.flatnonzero(truth != NOISE_LABEL)
    if clustered.size == 0:
        raise ValidationError("truth has no clustered items")
    precisions = np.empty(clustered.size)
    recalls = np.empty(clustered.size)
    for row, i in enumerate(clustered):
        t_peers = np.flatnonzero(truth == truth[i])
        if predicted[i] == NOISE_LABEL:
            p_peers = np.asarray([i])
        else:
            p_peers = np.flatnonzero(predicted == predicted[i])
        same = np.intersect1d(p_peers, t_peers, assume_unique=True).size
        precisions[row] = same / p_peers.size
        recalls[row] = same / t_peers.size
    precision = float(precisions.mean())
    recall = float(recalls.mean())
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)
