"""Evaluation substrate: detection quality, accounting and growth orders."""

from repro.eval.external import (
    bcubed_fscore,
    labels_from_clusters,
    normalized_mutual_information,
    pairwise_fscore,
    purity,
)
from repro.eval.metrics import average_f1, f1_score, match_clusters
from repro.eval.orders import loglog_slope, loglog_slope_ci

__all__ = [
    "average_f1",
    "bcubed_fscore",
    "f1_score",
    "labels_from_clusters",
    "loglog_slope",
    "loglog_slope_ci",
    "match_clusters",
    "normalized_mutual_information",
    "pairwise_fscore",
    "purity",
]
