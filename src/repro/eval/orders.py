"""Empirical order-of-growth estimation (paper §5.2's log-log slopes).

The paper reads complexity orders off double-logarithmic plots: "the
slope of performance curves indicate the orders of growth with respect to
the size of data set".  :func:`loglog_slope` computes that slope by least
squares, which Table 1's verification bench compares against the
theoretical orders (≈2 for a*=omega*n, ≈1.7 for a*=n^0.9, ≈1 for a*<=P);
:func:`loglog_slope_ci` adds a pairs-bootstrap confidence interval so a
claimed order separation (e.g. "ALID grows strictly slower than IID")
can be asserted with an uncertainty band rather than a bare point
estimate.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator

__all__ = ["loglog_slope", "loglog_slope_ci"]


def loglog_slope(x: np.ndarray, y: np.ndarray) -> float:
    """Least-squares slope of ``log(y)`` against ``log(x)``.

    Both inputs must be strictly positive and have at least two points.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValidationError(
            f"x and y must be 1-D of equal length, got {x.shape} vs {y.shape}"
        )
    if x.size < 2:
        raise ValidationError("need at least two points to fit a slope")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValidationError("log-log slope needs strictly positive values")
    lx = np.log(x)
    ly = np.log(y)
    lx_centered = lx - lx.mean()
    denom = float(lx_centered @ lx_centered)
    if denom == 0.0:
        raise ValidationError("x values must not all be equal")
    return float(lx_centered @ (ly - ly.mean()) / denom)


def loglog_slope_ci(
    x: np.ndarray,
    y: np.ndarray,
    *,
    confidence: float = 0.9,
    n_boot: int = 2000,
    seed=0,
) -> tuple[float, float, float]:
    """Point estimate and pairs-bootstrap CI of the log-log slope.

    Resamples ``(x, y)`` pairs with replacement and refits; returns
    ``(slope, low, high)`` with the percentile interval at *confidence*.
    Degenerate resamples (all x equal) are skipped — with >= 3 distinct
    x values they are rare.

    Few sweep points make the interval honest but wide: the Fig. 7
    benches sweep four sizes, so expect bands of a few tenths.
    """
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    if n_boot < 10:
        raise ValidationError(f"n_boot must be >= 10, got {n_boot}")
    estimate = loglog_slope(x, y)  # validates x, y
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    rng = as_generator(seed)
    slopes = []
    attempts = 0
    while len(slopes) < n_boot and attempts < 10 * n_boot:
        attempts += 1
        pick = rng.integers(0, x.size, size=x.size)
        sample_x = x[pick]
        if np.unique(sample_x).size < 2:
            continue
        slopes.append(loglog_slope(sample_x, y[pick]))
    if not slopes:
        raise ValidationError(
            "bootstrap produced no valid resamples (too few distinct x)"
        )
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(slopes, [tail, 1.0 - tail])
    return estimate, float(low), float(high)
