"""Fit-phase profiling hooks, keyed to the paper's sections.

The fit half of :mod:`repro.obs` (see ``docs/observability.md``).  ALID
argues its scalability with *exact work accounting* — affinity entries
computed per phase of Algs. 1–3 — and the fit tier already tracks the
totals through :class:`~repro.affinity.oracle.AffinityCounters`.  This
module breaks them down by phase: activate a :class:`PhaseProfiler`
around a fit and the peeling driver, the LID kernel, the CIVS gather
and the column cache record per-phase wall time, entry counts and call
counts into a :class:`~repro.obs.metrics.MetricsRegistry`, keyed to the
paper anchors in :data:`PHASES`.

Usage::

    from repro.obs import PhaseProfiler

    profiler = PhaseProfiler()
    with profiler:                      # activates the hooks
        result = ALID(config).fit(data)
    profiler.summary()                  # {phase: {calls, wall_seconds,
                                        #  entries, ...}}

Zero-cost-when-off contract: every hook site reads one module global
and compares against ``None`` — no timestamps are taken and no metrics
are touched unless a profiler is active.  The hooks are *observers*:
they never change iteration order, accounting
(``entries_computed`` stays bit-identical), or detections.

Activation is process-global (one fit is profiled at a time; nested
activations stack).  The profiler is intentionally not thread-local:
the batched peeling driver and the streaming re-peel thread both record
into whichever profiler is active, which is what a whole-fit profile
wants.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry

__all__ = ["PHASES", "PhaseProfiler", "active"]

#: Phase keys and the paper anchor each one accounts for.
PHASES = {
    "lid": "Alg. 1 — LID dynamics runs (periods, wall, entries)",
    "seed_round": "Alg. 2 — peeling-driver rounds of seeded detections",
    "civs": "Alg. 2 Step 3 — CIVS candidate gather (Fig. 4)",
    "extend": "Eq. 17 — local-range extension of the payoff state",
    "cache": "§4.5 — ColumnBlockCache hits / misses / evictions",
}

#: The currently active profiler (module-global; ``None`` = hooks off).
_ACTIVE: "PhaseProfiler | None" = None


def active() -> "PhaseProfiler | None":
    """The profiler hook sites should record into (``None`` = off)."""
    return _ACTIVE


class PhaseProfiler:
    """Per-phase wall/entries accounting over one (or more) fits.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` to record into;
        a fresh ``component="fit"`` registry is created when omitted.

    Metrics written (all counters, labelled ``phase=<key>``):

    - ``fit_phase_calls_total`` — hook invocations;
    - ``fit_phase_wall_seconds_total`` — wall time inside the phase;
    - ``fit_phase_entries_total`` — affinity entries the phase computed;
    - ``fit_phase_<extra>_total`` — any extra integer keyword passed to
      :meth:`record` (e.g. ``iterations`` for LID periods, ``hits`` /
      ``misses`` / ``evictions`` for the cache).

    Use as a context manager to activate the hook sites; activations
    nest (the previous profiler is restored on exit).
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        """Bind (or create) the backing registry."""
        self.registry = (
            MetricsRegistry(component="fit") if registry is None else registry
        )
        self._counters: dict[tuple[str, str], object] = {}
        self._previous: PhaseProfiler | None = None

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def __enter__(self) -> "PhaseProfiler":
        """Activate the hook sites, stacking over any active profiler."""
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Restore the previously active profiler (or none)."""
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _counter(self, metric: str, phase: str):
        key = (metric, phase)
        counter = self._counters.get(key)
        if counter is None:
            counter = self.registry.counter(
                metric, PHASES[phase], phase=phase
            )
            self._counters[key] = counter
        return counter

    def record(
        self,
        phase: str,
        *,
        wall: float = 0.0,
        entries: int = 0,
        count: int = 1,
        **extras: int,
    ) -> None:
        """Account one phase occurrence.

        ``wall`` is seconds spent, ``entries`` the affinity entries the
        phase computed (both may be zero), ``count`` the number of
        occurrences this call covers.  Extra integer keywords become
        ``fit_phase_<name>_total`` counters under the same phase label.
        """
        if phase not in PHASES:
            raise ValidationError(
                f"unknown phase {phase!r}; expected one of "
                f"{sorted(PHASES)}"
            )
        if count:
            self._counter("fit_phase_calls_total", phase).inc(count)
        if wall:
            self._counter("fit_phase_wall_seconds_total", phase).inc(wall)
        if entries:
            self._counter("fit_phase_entries_total", phase).inc(entries)
        for name, value in extras.items():
            if value:
                self._counter(f"fit_phase_{name}_total", phase).inc(value)

    @contextmanager
    def phase(self, phase: str, **extras: int):
        """Time a block as one occurrence of ``phase``."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.record(
                phase, wall=time.perf_counter() - t0, **extras
            )

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Per-phase totals: ``{phase: {calls, wall_seconds, ...}}``.

        Keys follow the recorded metrics (``calls``, ``wall_seconds``,
        ``entries``, plus any extras); phases never recorded are
        absent.
        """
        prefix = "fit_phase_"
        out: dict[str, dict] = {}
        for metric in self.registry.metrics():
            name = metric.name
            if not (name.startswith(prefix) and name.endswith("_total")):
                continue
            phase = metric.labels.get("phase")
            if phase is None:
                continue
            field = name[len(prefix) : -len("_total")]
            out.setdefault(phase, {})[field] = metric.value
        return out
