"""Typed metrics registry: counters, gauges, mergeable histograms.

The metrics half of :mod:`repro.obs` (see ``docs/observability.md``).
A :class:`MetricsRegistry` owns named, labelled metrics of three types:

* :class:`Counter` — monotone totals (requests served, entries
  computed).  Merging across processes **adds**.
* :class:`Gauge` — last-written level (queue depth, EWMA drain rate).
  Merging **overwrites** with the incoming value.
* :class:`Histogram` — fixed-bucket distribution with log-spaced
  latency buckets by default (:func:`default_latency_bounds_ms`) and
  deterministic p50/p95/p99 interpolation.  Merging adds the bucket
  counts element-wise, so a parent registry fed worker deltas holds the
  **exact** bucket-level sum of what the workers observed — the
  property ``tests/test_serve_telemetry.py`` pins through the pickle-5
  pipe framing of :mod:`repro.serve.ipc`.

Cross-process protocol: a producer-side registry periodically calls
:meth:`MetricsRegistry.flush_delta` (changes since the previous flush,
as plain picklable dicts) and ships the delta; the consumer calls
:meth:`MetricsRegistry.merge`.  Because deltas are differences of
monotone state, a consumer that merges every delta it receives holds
totals that never go backwards — even when a producer dies and its
replacement starts from a fresh registry (the mid-run heal case).

Two-scope stats support: :meth:`MetricsRegistry.checkpoint` captures
counter values and :meth:`MetricsRegistry.since` reads the diff, which
is how the serve tier derives its per-snapshot stats scope from the
same counters that back the lifetime scope.

Everything is stdlib-only and thread-safe (one lock per registry,
shared by its metrics); recording on a hot path costs one uncontended
lock acquire plus integer arithmetic.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_bounds_ms",
    "render_merged",
]


def default_latency_bounds_ms() -> tuple[float, ...]:
    """Log-spaced histogram bucket bounds in milliseconds.

    Four buckets per decade from 10 microseconds to 100 seconds
    (inclusive upper bounds; one implicit overflow bucket above).  The
    ~1.78x bucket width keeps p50/p95/p99 interpolation error well
    under the run-to-run noise of any wall-clock latency, while 29
    buckets stay cheap to ship in per-batch worker deltas.
    """
    return tuple(round(10.0 ** (exp / 4.0), 6) for exp in range(-8, 21))


def _label_key(labels: dict) -> tuple:
    """Canonical hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value) -> str:
    """Exposition-format a sample value (ints without a trailing .0)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _format_labels(labels: dict, extra: dict | None = None) -> str:
    """Render a ``{k="v",...}`` label block ('' when empty)."""
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key, value in sorted(merged.items()):
        escaped = (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


class Counter:
    """A monotone counter; create via :meth:`MetricsRegistry.counter`."""

    kind = "counter"

    __slots__ = ("name", "help", "labels", "_lock", "_value", "_flushed")

    def __init__(self, name: str, help: str, labels: dict, lock) -> None:
        """Bind the counter to its registry lock; starts at zero."""
        self.name = name
        self.help = help
        self.labels = dict(labels)
        self._lock = lock
        self._value = 0
        self._flushed = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0: counters never go backwards)."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self):
        """Current total."""
        with self._lock:
            return self._value

    def _state(self) -> dict:
        return {
            "type": self.kind,
            "name": self.name,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self._value,
        }

    def _delta_state(self) -> dict | None:
        delta = self._value - self._flushed
        if not delta:
            return None
        self._flushed = self._value
        state = self._state()
        state["value"] = delta
        return state

    def _merge(self, state: dict) -> None:
        self._value += state["value"]

    def _render(self, lines: list[str]) -> None:
        lines.append(
            f"{self.name}{_format_labels(self.labels)} "
            f"{_format_value(self._value)}"
        )


class Gauge:
    """A settable level; create via :meth:`MetricsRegistry.gauge`."""

    kind = "gauge"

    __slots__ = ("name", "help", "labels", "_lock", "_value", "_flushed")

    def __init__(self, name: str, help: str, labels: dict, lock) -> None:
        """Bind the gauge to its registry lock; starts at zero."""
        self.name = name
        self.help = help
        self.labels = dict(labels)
        self._lock = lock
        self._value = 0.0
        self._flushed: float | None = None

    def set(self, value: int | float) -> None:
        """Overwrite the current level."""
        with self._lock:
            self._value = value

    @property
    def value(self):
        """Current level."""
        with self._lock:
            return self._value

    def _state(self) -> dict:
        return {
            "type": self.kind,
            "name": self.name,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self._value,
        }

    def _delta_state(self) -> dict | None:
        if self._flushed is not None and self._value == self._flushed:
            return None
        self._flushed = self._value
        return self._state()

    def _merge(self, state: dict) -> None:
        self._value = state["value"]

    def _render(self, lines: list[str]) -> None:
        lines.append(
            f"{self.name}{_format_labels(self.labels)} "
            f"{_format_value(self._value)}"
        )


class Histogram:
    """A fixed-bucket histogram; create via :meth:`MetricsRegistry.histogram`.

    Buckets are defined by strictly increasing inclusive upper bounds
    plus one implicit overflow bucket.  Observations update bucket
    counts, the running sum, and the observed min/max (the min/max make
    edge-quantile interpolation exact at the distribution's ends).
    """

    kind = "histogram"

    __slots__ = (
        "name",
        "help",
        "labels",
        "bounds",
        "_lock",
        "_counts",
        "_sum",
        "_min",
        "_max",
        "_flushed_counts",
        "_flushed_sum",
    )

    def __init__(
        self, name: str, help: str, labels: dict, lock, bounds
    ) -> None:
        """Validate ``bounds`` (strictly increasing) and start empty."""
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValidationError(
                f"histogram {name} bounds must be non-empty and strictly "
                f"increasing, got {bounds!r}"
            )
        self.name = name
        self.help = help
        self.labels = dict(labels)
        self.bounds = bounds
        self._lock = lock
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._flushed_counts = [0] * (len(bounds) + 1)
        self._flushed_sum = 0.0

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Total observations recorded (including merged ones)."""
        with self._lock:
            return sum(self._counts)

    @property
    def total(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket counts (last entry is the overflow bucket)."""
        with self._lock:
            return tuple(self._counts)

    def quantile(self, q: float) -> float:
        """Interpolated quantile ``q`` in [0, 1] (0.0 when empty).

        Deterministic linear interpolation within the containing
        bucket, with the observed min/max clamping the first and last
        buckets — so merged histograms report the same p50/p95/p99 as a
        single-process histogram fed the identical observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = sum(self._counts)
            if total == 0 or self._min is None or self._max is None:
                return 0.0
            target = q * total
            cumulative = 0.0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= target:
                    lo = (
                        self.bounds[index - 1]
                        if index > 0
                        else 0.0
                    )
                    hi = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else self._max
                    )
                    lo = max(lo, self._min)
                    hi = min(hi, self._max)
                    if hi < lo:  # single-point bucket at the edge
                        hi = lo
                    fraction = (
                        max(target - cumulative, 0.0) / bucket_count
                    )
                    return lo + fraction * (hi - lo)
                cumulative += bucket_count
            return self._max  # pragma: no cover - unreachable

    def percentiles(self) -> dict:
        """The conventional latency summary: p50/p95/p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def _state(self) -> dict:
        return {
            "type": self.kind,
            "name": self.name,
            "help": self.help,
            "labels": dict(self.labels),
            "bounds": list(self.bounds),
            "counts": list(self._counts),
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }

    def _delta_state(self) -> dict | None:
        if self._counts == self._flushed_counts:
            return None
        state = self._state()
        state["counts"] = [
            c - f for c, f in zip(self._counts, self._flushed_counts)
        ]
        state["sum"] = self._sum - self._flushed_sum
        self._flushed_counts = list(self._counts)
        self._flushed_sum = self._sum
        return state

    def _merge(self, state: dict) -> None:
        if tuple(float(b) for b in state["bounds"]) != self.bounds:
            raise ValidationError(
                f"histogram {self.name} bucket bounds differ; refusing "
                "to merge incompatible distributions"
            )
        for index, bucket_count in enumerate(state["counts"]):
            self._counts[index] += bucket_count
        self._sum += state["sum"]
        for key, pick in (("min", min), ("max", max)):
            incoming = state.get(key)
            if incoming is None:
                continue
            mine = self._min if key == "min" else self._max
            merged = incoming if mine is None else pick(mine, incoming)
            if key == "min":
                self._min = merged
            else:
                self._max = merged

    def _render(self, lines: list[str]) -> None:
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self._counts):
            cumulative += bucket_count
            le = _format_labels(self.labels, {"le": _format_value(bound)})
            lines.append(f"{self.name}_bucket{le} {cumulative}")
        cumulative += self._counts[-1]
        inf = _format_labels(self.labels, {"le": "+Inf"})
        lines.append(f"{self.name}_bucket{inf} {cumulative}")
        plain = _format_labels(self.labels)
        lines.append(f"{self.name}_sum{plain} {_format_value(self._sum)}")
        lines.append(f"{self.name}_count{plain} {cumulative}")


class MetricsRegistry:
    """A component's named metrics, mergeable and text-exposable.

    Parameters
    ----------
    component:
        Optional component label automatically attached to every metric
        registered here (e.g. ``"frontend"``, ``"shard_worker"``), so
        merged expositions keep per-component attribution.

    Registration is get-or-create: asking for an existing
    ``(name, labels)`` pair returns the same object, and asking with a
    conflicting type (or histogram bounds) raises
    :class:`~repro.exceptions.ValidationError`.
    """

    def __init__(self, component: str | None = None):
        """Start empty; one lock serializes all mutation."""
        self.component = component
        self._lock = threading.Lock()
        self._metrics: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _labels(self, labels: dict) -> dict:
        if self.component is not None and "component" not in labels:
            labels = {"component": self.component, **labels}
        return labels

    def _register(self, factory, name: str, labels: dict, kind: str):
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if existing.kind != kind:
                    raise ValidationError(
                        f"metric {name} already registered as "
                        f"{existing.kind}, not {kind}"
                    )
                return existing
            metric = factory()
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """Get or create a :class:`Counter`."""
        labels = self._labels(labels)
        return self._register(
            lambda: Counter(name, help, labels, self._lock),
            name,
            labels,
            Counter.kind,
        )

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """Get or create a :class:`Gauge`."""
        labels = self._labels(labels)
        return self._register(
            lambda: Gauge(name, help, labels, self._lock),
            name,
            labels,
            Gauge.kind,
        )

    def histogram(
        self, name: str, help: str = "", *, bounds=None, **labels
    ) -> Histogram:
        """Get or create a :class:`Histogram`.

        ``bounds`` defaults to :func:`default_latency_bounds_ms`; an
        existing histogram's bounds must match or registration fails.
        """
        labels = self._labels(labels)
        bounds = (
            default_latency_bounds_ms() if bounds is None else tuple(bounds)
        )
        metric = self._register(
            lambda: Histogram(name, help, labels, self._lock, bounds),
            name,
            labels,
            Histogram.kind,
        )
        if metric.bounds != tuple(float(b) for b in bounds):
            raise ValidationError(
                f"histogram {name} already registered with different "
                "bucket bounds"
            )
        return metric

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str, **labels):
        """The metric registered under ``(name, labels)``, or ``None``."""
        key = (name, _label_key(self._labels(labels)))
        with self._lock:
            return self._metrics.get(key)

    def metrics(self) -> list:
        """Every registered metric, sorted by name then labels."""
        with self._lock:
            return [
                self._metrics[key] for key in sorted(self._metrics)
            ]

    # ------------------------------------------------------------------
    # cross-process state
    # ------------------------------------------------------------------
    def collect(self) -> list[dict]:
        """Full state as plain picklable dicts (for merge/inspection)."""
        out = []
        for metric in self.metrics():
            with self._lock:
                out.append(metric._state())
        return out

    def flush_delta(self) -> list[dict]:
        """Changes since the previous flush, advancing the flush mark.

        Returns only metrics that changed (empty list when idle), so a
        per-batch delta piggybacked on a worker reply stays small.
        """
        out = []
        for metric in self.metrics():
            with self._lock:
                state = metric._delta_state()
            if state is not None:
                out.append(state)
        return out

    def merge(self, states: list[dict]) -> None:
        """Fold collected/flushed ``states`` into this registry.

        Counters add, histograms add bucket-wise (bounds must match),
        gauges take the incoming value.  Metrics unseen here are
        created with the incoming name/labels/help verbatim (the
        ``component`` auto-label is *not* applied: merged state keeps
        its producer's attribution).
        """
        for state in states:
            kind = state["type"]
            name = state["name"]
            labels = state.get("labels", {})
            key = (name, _label_key(labels))
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    if kind == Counter.kind:
                        metric = Counter(
                            name, state.get("help", ""), labels, self._lock
                        )
                    elif kind == Gauge.kind:
                        metric = Gauge(
                            name, state.get("help", ""), labels, self._lock
                        )
                    elif kind == Histogram.kind:
                        metric = Histogram(
                            name,
                            state.get("help", ""),
                            labels,
                            self._lock,
                            state["bounds"],
                        )
                    else:
                        raise ValidationError(
                            f"unknown metric type {kind!r} in merge"
                        )
                    self._metrics[key] = metric
                elif metric.kind != kind:
                    raise ValidationError(
                        f"metric {name} is a {metric.kind} here but a "
                        f"{kind} in the incoming state"
                    )
                metric._merge(state)

    # ------------------------------------------------------------------
    # two-scope support
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Capture current counter values (the snapshot-scope anchor)."""
        out = {}
        with self._lock:
            for key, metric in self._metrics.items():
                if metric.kind == Counter.kind:
                    out[key] = metric._value
        return out

    def since(self, checkpoint: dict) -> dict:
        """Counter growth since ``checkpoint``, keyed by metric name.

        Counters created after the checkpoint diff against zero.  Used
        by the serve tier's per-snapshot stats scope.
        """
        out = {}
        with self._lock:
            for key, metric in self._metrics.items():
                if metric.kind == Counter.kind:
                    out[key[0]] = metric._value - checkpoint.get(key, 0)
        return out

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """Prometheus-style text exposition of every metric.

        ``# HELP``/``# TYPE`` headers are emitted once per metric name;
        histograms expand to cumulative ``_bucket{le=...}`` samples
        plus ``_sum``/``_count``.
        """
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in self.metrics():
            with self._lock:
                if metric.name not in seen_headers:
                    seen_headers.add(metric.name)
                    if metric.help:
                        lines.append(f"# HELP {metric.name} {metric.help}")
                    lines.append(f"# TYPE {metric.name} {metric.kind}")
                metric._render(lines)
        return "\n".join(lines) + ("\n" if lines else "")


def render_merged(registries) -> str:
    """One exposition over several registries (deduplicated by identity).

    Used by :meth:`repro.serve.frontend.AsyncFrontend.metrics` to serve
    its own registry plus the backing handle's in a single scrape.
    """
    merged = MetricsRegistry()
    seen: set[int] = set()
    for registry in registries:
        if registry is None or id(registry) in seen:
            continue
        seen.add(id(registry))
        merged.merge(registry.collect())
    return merged.render_text()
