"""Unified telemetry: metrics registry, request tracing, fit profiling.

The observability subsystem behind the serving stack's ``stats()``
surfaces and the ``repro stats`` / ``repro trace`` CLI commands
(``docs/observability.md`` is the narrative reference):

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with typed
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` metrics,
  cross-process merge (shard workers ship registry deltas over the
  pickle-5 pipe framing; the parent's histograms are the exact
  bucket-level sum of its workers'), two-scope checkpoint/diff, and
  Prometheus-style text exposition.
* :mod:`repro.obs.trace` — :class:`TraceRecorder` / :class:`Span`:
  deterministic request-lifecycle spans (queued → dispatched →
  scatter → per-shard assign → merge → reply, plus ingest publishes
  and supervisor heals) exported as Chrome trace-event JSONL.
* :mod:`repro.obs.phases` — :class:`PhaseProfiler`: per-phase wall +
  entries accounting of the fit tier, keyed to the paper's sections
  (Alg. 1 LID runs, Alg. 2 seed rounds and CIVS gathers, Eq. 17
  extends, §4.5 cache traffic).

Everything is stdlib-only and cheap enough to leave on: the soak
bench gates full telemetry at under 3% throughput shrink.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_bounds_ms,
    render_merged,
)
from repro.obs.phases import PHASES, PhaseProfiler
from repro.obs.trace import Span, TraceRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASES",
    "PhaseProfiler",
    "Span",
    "TraceRecorder",
    "default_latency_bounds_ms",
    "render_merged",
]
