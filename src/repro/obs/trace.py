"""Request tracing: lightweight spans, Chrome trace-event export.

The tracing half of :mod:`repro.obs` (see ``docs/observability.md``).
A :class:`TraceRecorder` collects :class:`Span` records — name, lane
(``tid``), monotonic start time and duration, a ``trace_id`` tying the
span to the request (or batch, or heal) it belongs to, and free-form
attributes.  Producers either bracket live work
(:meth:`TraceRecorder.begin` / :meth:`Span.end`) or record a completed
interval after the fact (:meth:`TraceRecorder.record`, used where the
timestamps were already taken for metrics).

Determinism: span identity comes from the caller's sequence numbers
(the frontend ties request spans to its admission sequence, the router
ties scatter/merge spans to its block counter), never from wall-clock
or randomness — two replays of the same schedule produce the same span
names, ids and parentage, only the durations differ.

Balance accounting: the recorder counts spans opened and closed;
:attr:`TraceRecorder.balanced` is the zero-tolerance
``trace_spans_balanced`` boolean the soak lane gates on — a span left
open means a code path returned without closing its bracket (lost
timing, leaked context).

Export is Chrome trace-event JSONL (one complete ``"ph": "X"`` event
per line plus thread-name metadata), loadable in ``chrome://tracing``
or Perfetto for flamegraph viewing: :meth:`TraceRecorder.export_jsonl`
backs the ``repro trace`` CLI.

The recorder is thread-safe and bounded (``max_spans``); when full it
drops new spans (counted in ``dropped``) rather than growing without
limit — tracing must never become the memory leak it is meant to find.
"""

from __future__ import annotations

import json
import time

import threading
from collections import deque

from repro.exceptions import ValidationError

__all__ = [
    "Span",
    "TraceRecorder",
    "TID_REQUEST",
    "TID_BATCH",
    "TID_ROUTER",
    "TID_SUPERVISOR",
    "TID_INGEST",
    "TID_SHARD_BASE",
]

#: Logical lanes (Chrome trace "threads") spans are grouped under.
TID_REQUEST = 1
TID_BATCH = 2
TID_ROUTER = 3
TID_SUPERVISOR = 4
TID_INGEST = 5
#: Per-shard lanes start here: shard ``k`` renders on ``TID_SHARD_BASE + k``.
TID_SHARD_BASE = 10

_TID_NAMES = {
    TID_REQUEST: "requests",
    TID_BATCH: "batches",
    TID_ROUTER: "router",
    TID_SUPERVISOR: "supervisor",
    TID_INGEST: "ingest",
}


class Span:
    """One traced interval; obtained from :meth:`TraceRecorder.begin`."""

    __slots__ = (
        "name",
        "trace_id",
        "tid",
        "start",
        "duration",
        "attrs",
        "_recorder",
    )

    def __init__(self, name, trace_id, tid, start, attrs, recorder):
        """Open the span at ``start`` (recorder clock); duration unset."""
        self.name = name
        self.trace_id = trace_id
        self.tid = tid
        self.start = start
        self.duration: float | None = None
        self.attrs = attrs
        self._recorder = recorder

    def end(self, **attrs) -> float:
        """Close the span now; returns its duration in seconds.

        Extra ``attrs`` merge into the span's attributes.  Idempotent:
        a second call only re-merges attributes.
        """
        recorder = self._recorder
        if self.duration is None and recorder is not None:
            self.duration = max(recorder.now() - self.start, 0.0)
            self._recorder = None
            if attrs:
                self.attrs = {**self.attrs, **attrs}
            recorder._close(self)
        elif attrs:
            self.attrs = {**self.attrs, **attrs}
        return 0.0 if self.duration is None else self.duration

    def __enter__(self) -> "Span":
        """Context-manager entry: the span is already open."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the span on context exit (error flagged in attrs)."""
        if exc_type is not None:
            self.end(error=exc_type.__name__)
        else:
            self.end()


class TraceRecorder:
    """Thread-safe, bounded collector of spans.

    Parameters
    ----------
    max_spans:
        Retention cap; spans recorded past it are dropped and counted
        in :attr:`dropped` (balance accounting still sees them).
    clock:
        Monotonic time source.  Defaults to :func:`time.monotonic`,
        which is also what asyncio's ``loop.time()`` reads — so
        frontend timestamps taken off the event loop land on the same
        axis as spans recorded here.
    """

    def __init__(self, *, max_spans: int = 200_000, clock=time.monotonic):
        """Capture the epoch; spans render relative to it."""
        if max_spans < 1:
            raise ValidationError(
                f"max_spans must be >= 1, got {max_spans}"
            )
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque()
        self.max_spans = int(max_spans)
        self.epoch = clock()
        self._opened = 0
        self._closed = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current time on the recorder's clock."""
        return self._clock()

    def begin(
        self, name: str, *, trace_id=None, tid: int = TID_REQUEST, **attrs
    ) -> Span:
        """Open a span now; close it with :meth:`Span.end`."""
        with self._lock:
            self._opened += 1
        return Span(name, trace_id, tid, self.now(), attrs, self)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        trace_id=None,
        tid: int = TID_REQUEST,
        **attrs,
    ) -> None:
        """Record an already-completed interval (recorder-clock times)."""
        span = Span(name, trace_id, tid, start, attrs, None)
        span.duration = max(end - start, 0.0)
        with self._lock:
            self._opened += 1
            self._closed += 1
            if len(self._spans) >= self.max_spans:
                self._dropped += 1
            else:
                self._spans.append(span)

    def _close(self, span: Span) -> None:
        with self._lock:
            self._closed += 1
            if len(self._spans) >= self.max_spans:
                self._dropped += 1
            else:
                self._spans.append(span)

    # ------------------------------------------------------------------
    @property
    def opened(self) -> int:
        """Spans opened (begin + record) over the recorder's life."""
        with self._lock:
            return self._opened

    @property
    def closed(self) -> int:
        """Spans closed over the recorder's life."""
        with self._lock:
            return self._closed

    @property
    def dropped(self) -> int:
        """Spans discarded because the retention cap was reached."""
        with self._lock:
            return self._dropped

    @property
    def balanced(self) -> bool:
        """Whether every opened span has been closed."""
        with self._lock:
            return self._opened == self._closed

    def __len__(self) -> int:
        """Spans currently retained."""
        with self._lock:
            return len(self._spans)

    def spans(self, name: str | None = None) -> list[Span]:
        """Retained spans in completion order (optionally one name)."""
        with self._lock:
            out = list(self._spans)
        if name is not None:
            out = [span for span in out if span.name == name]
        return out

    def clear(self) -> None:
        """Drop retained spans (balance counters keep their history)."""
        with self._lock:
            self._spans.clear()

    # ------------------------------------------------------------------
    def events(self) -> list[dict]:
        """Chrome trace events: thread metadata + one ``X`` per span."""
        out: list[dict] = []
        tids = set()
        for span in self.spans():
            tids.add(span.tid)
            args = dict(span.attrs)
            if span.trace_id is not None:
                args["trace_id"] = span.trace_id
            out.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "pid": 0,
                    "tid": span.tid,
                    "ts": round((span.start - self.epoch) * 1e6, 3),
                    "dur": round((span.duration or 0.0) * 1e6, 3),
                    "args": args,
                }
            )
        meta = []
        for tid in sorted(tids):
            tid_name = _TID_NAMES.get(tid)
            if tid_name is None and tid >= TID_SHARD_BASE:
                tid_name = f"shard-{tid - TID_SHARD_BASE}"
            if tid_name is not None:
                meta.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 0,
                        "tid": tid,
                        "args": {"name": tid_name},
                    }
                )
        return meta + out

    def export_jsonl(self, path) -> int:
        """Write one Chrome trace event per line; returns event count.

        The produced file loads in Perfetto / ``chrome://tracing``
        after wrapping in a JSON array — tooling that accepts JSONL
        (newline-delimited events) reads it directly.
        """
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event, sort_keys=True))
                fh.write("\n")
        return len(events)
