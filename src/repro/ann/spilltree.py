"""Hybrid spill tree for approximate k-NN (Liu, Moore, Gray & Yang).

The paper's §5.1 notes that the ANN sparsifier of Chen et al. [8] "can be
efficient by employing LSH and Spill-Tree [20]"; this module supplies the
Spill-Tree half of that sentence.

Construction: each internal node projects its points onto the direction
between two (approximately) farthest pivots and splits at the median
projection.  *Overlapping* nodes duplicate the points within a ``tau``
buffer around the split into both children, so a defeatist
(no-backtracking) descent still finds near neighbours that sit close to
the boundary.  When the overlap would duplicate too much (> ``rho`` of
the node into one child), the node falls back to a *non-overlapping*
metric-tree split — the "hybrid" rule of the original paper — and the
query backtracks through it exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_data_matrix

__all__ = ["SpillTree"]

_LEAF = 0
_OVERLAP = 1
_METRIC = 2


@dataclass
class _Node:
    """One spill-tree node."""

    kind: int
    members: np.ndarray | None  # leaf payload
    direction: np.ndarray | None  # unit split direction
    split: float  # median projection
    left: int
    right: int


class SpillTree:
    """Approximate nearest-neighbour index with overlapping splits.

    Parameters
    ----------
    data:
        Data matrix ``(n, d)``; queries use the Euclidean metric.
    leaf_size:
        Maximum leaf payload.
    tau:
        Overlap half-width as a fraction of the node's projection spread
        (0 disables spilling; the tree degenerates to a metric tree).
    rho:
        Hybrid threshold: if either overlapping child would hold more
        than ``rho * node_size`` points, the node splits without overlap
        and is searched with backtracking instead of defeatist descent.
    seed:
        Seed for the random pivot choice.

    Example
    -------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(200, 8))
    >>> tree = SpillTree(data, seed=0)
    >>> idx, dist = tree.query_knn(data[0], k=3)
    >>> int(idx[0])
    0
    """

    def __init__(
        self,
        data: np.ndarray,
        *,
        leaf_size: int = 16,
        tau: float = 0.1,
        rho: float = 0.7,
        seed=0,
    ):
        self._data = check_data_matrix(data, name="data")
        if leaf_size < 1:
            raise ValidationError(f"leaf_size must be >= 1, got {leaf_size}")
        if tau < 0:
            raise ValidationError(f"tau must be >= 0, got {tau}")
        if not 0.5 <= rho < 1.0:
            raise ValidationError(f"rho must lie in [0.5, 1), got {rho}")
        self.leaf_size = int(leaf_size)
        self.tau = float(tau)
        self.rho = float(rho)
        self._rng = as_generator(seed)
        self._nodes: list[_Node] = []
        self._build(np.arange(self._data.shape[0], dtype=np.intp), depth=0)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of indexed items."""
        return self._data.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of tree nodes (diagnostics)."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    def _pivot_direction(self, members: np.ndarray) -> np.ndarray | None:
        """Unit vector between two approximately farthest members.

        The classic two-sweep heuristic: from a random point, walk to
        its farthest member ``a``, then to ``a``'s farthest member
        ``b``; use ``b - a``.
        """
        points = self._data[members]
        start = points[int(self._rng.integers(0, members.size))]
        a = points[int(np.argmax(((points - start) ** 2).sum(axis=1)))]
        b = points[int(np.argmax(((points - a) ** 2).sum(axis=1)))]
        direction = b - a
        norm = np.linalg.norm(direction)
        if norm <= 1e-12:
            return None
        return direction / norm

    def _build(self, members: np.ndarray, depth: int) -> int:
        node_id = len(self._nodes)
        # Depth guard: duplicated overlap points could otherwise recurse
        # past any useful resolution on adversarial data.
        if members.size <= self.leaf_size or depth > 60:
            self._nodes.append(
                _Node(_LEAF, np.sort(members), None, 0.0, -1, -1)
            )
            return node_id
        direction = self._pivot_direction(members)
        if direction is None:
            # All duplicates; nothing separates them.
            self._nodes.append(
                _Node(_LEAF, np.sort(members), None, 0.0, -1, -1)
            )
            return node_id
        projections = self._data[members] @ direction
        split = float(np.median(projections))
        spread = float(projections.max() - projections.min())
        buffer = self.tau * spread
        left_mask = projections <= split + buffer
        right_mask = projections >= split - buffer
        limit = self.rho * members.size
        if buffer > 0 and left_mask.sum() <= limit and right_mask.sum() <= limit:
            kind = _OVERLAP
        else:
            # Hybrid fallback: plain median split, searched exactly.
            kind = _METRIC
            left_mask = projections <= split
            right_mask = ~left_mask
            if not left_mask.any() or not right_mask.any():
                # Ties collapsed one side (median == max); split evenly.
                order = np.argsort(projections, kind="stable")
                half = members.size // 2
                left_mask = np.zeros(members.size, dtype=bool)
                left_mask[order[:half]] = True
                right_mask = ~left_mask
        self._nodes.append(_Node(kind, None, direction, split, -1, -1))
        left = self._build(members[left_mask], depth + 1)
        right = self._build(members[right_mask], depth + 1)
        self._nodes[node_id].left = left
        self._nodes[node_id].right = right
        return node_id

    # ------------------------------------------------------------------
    def _check_point(self, point: np.ndarray) -> np.ndarray:
        point = np.asarray(point, dtype=np.float64)
        if point.ndim != 1 or point.shape[0] != self._data.shape[1]:
            raise ValidationError(
                f"point must be 1-D of dim {self._data.shape[1]}, "
                f"got shape {point.shape}"
            )
        return point

    def query_knn(
        self, point: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximately the *k* nearest items to *point*.

        Overlap nodes are descended defeatist-style (one child, no
        backtracking); metric nodes backtrack with the projection bound
        ``|proj(q) - split|`` (valid because the direction has unit
        norm).  Distances returned are exact; only the candidate set is
        approximate.
        """
        point = self._check_point(point)
        k = int(k)
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        k = min(k, self.n)
        best: list[tuple[float, int]] = []  # max-heap via negation

        def visit(node_id: int) -> None:
            node = self._nodes[node_id]
            if node.kind == _LEAF:
                members = node.members
                dists = np.linalg.norm(self._data[members] - point, axis=1)
                for idx, dist in zip(members, dists):
                    entry = (-dist, int(idx))
                    if len(best) < k:
                        if entry not in best:
                            heapq.heappush(best, entry)
                    elif dist < -best[0][0] and entry not in best:
                        heapq.heapreplace(best, entry)
                return
            plane = float(point @ node.direction) - node.split
            near, far = (
                (node.left, node.right) if plane <= 0 else (node.right, node.left)
            )
            visit(near)
            if node.kind == _METRIC:
                # Exact backtrack: the far half-space is at least
                # |plane| away in Euclidean distance.
                if len(best) < k or abs(plane) < -best[0][0]:
                    visit(far)
            # Overlap nodes never backtrack — the tau buffer already
            # put boundary points in both children.

        visit(0)
        best.sort(key=lambda item: (-item[0], item[1]))
        indices = np.asarray([idx for _, idx in best], dtype=np.intp)
        distances = np.asarray([-neg for neg, _ in best])
        return indices, distances

    def defeatist_leaf(self, point: np.ndarray) -> np.ndarray:
        """Members of the single leaf a pure defeatist descent reaches.

        The cheapest possible query — what the original paper calls
        defeatist search — exposed for recall experiments.
        """
        point = self._check_point(point)
        node = self._nodes[0]
        while node.kind != _LEAF:
            plane = float(point @ node.direction) - node.split
            node = self._nodes[node.left if plane <= 0 else node.right]
        return node.members.copy()
