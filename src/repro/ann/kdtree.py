"""A k-d tree for exact k-NN and fixed-radius search (the ENN substrate).

Chen et al. [8] — the sparsification recipe the paper's §5.1 follows —
offer an *exact* nearest-neighbour (ENN) sparsifier next to the LSH one.
This tree backs that exact path: median splits on the widest-spread
coordinate, branch-and-bound queries with the splitting-hyperplane bound.

The hyperplane bound ``|q[dim] - split|`` lower-bounds the Minkowski
distance for every ``p >= 1`` (a single coordinate difference never
exceeds the full Lp distance), so the same tree serves any of the
kernel's Lp metrics (paper Eq. 1 allows all ``p >= 1``).

Numerical note: coordinate differences below ~1e-154 have squares that
underflow to zero, making naively computed Euclidean distances *smaller*
than the (exact) coordinate bound.  Feature vectors live many orders of
magnitude above that region; data deliberately constructed inside it can
make brute-force distances disagree with the tree's pruning.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_data_matrix

__all__ = ["KDTree"]

_LEAF = -1


@dataclass
class _Node:
    """One tree node; leaves carry item slices, splits carry a hyperplane."""

    dim: int  # split coordinate, or _LEAF
    split: float  # split threshold (unused for leaves)
    start: int  # slice of self._order covered by this subtree
    end: int
    left: int  # child node ids (unused for leaves)
    right: int


def _minkowski(diff: np.ndarray, p: float) -> np.ndarray:
    """Row-wise Lp norms of a difference matrix."""
    if p == 2.0:
        return np.sqrt((diff * diff).sum(axis=1))
    if p == 1.0:
        return np.abs(diff).sum(axis=1)
    return (np.abs(diff) ** p).sum(axis=1) ** (1.0 / p)


class KDTree:
    """Exact nearest-neighbour index over a fixed data matrix.

    Parameters
    ----------
    data:
        Data matrix ``(n, d)``.
    leaf_size:
        Maximum number of items in a leaf; leaves are scanned linearly.
    p:
        Minkowski exponent of the query metric (``>= 1``; 2 = Euclidean,
        matching the paper's experiments).

    Example
    -------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> tree = KDTree(rng.normal(size=(100, 3)))
    >>> idx, dist = tree.query_knn(np.zeros(3), k=5)
    >>> len(idx) == 5 and (np.diff(dist) >= 0).all()
    True
    """

    def __init__(self, data: np.ndarray, *, leaf_size: int = 16, p: float = 2.0):
        self._data = check_data_matrix(data, name="data")
        if leaf_size < 1:
            raise ValidationError(f"leaf_size must be >= 1, got {leaf_size}")
        if p < 1.0:
            raise ValidationError(f"p must be >= 1, got {p}")
        self.leaf_size = int(leaf_size)
        self.p = float(p)
        n = self._data.shape[0]
        self._order = np.arange(n, dtype=np.intp)
        self._nodes: list[_Node] = []
        self._build(0, n)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of indexed items."""
        return self._data.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of tree nodes (diagnostics)."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    def _build(self, start: int, end: int) -> int:
        """Recursively build the subtree over ``order[start:end]``."""
        node_id = len(self._nodes)
        if end - start <= self.leaf_size:
            self._nodes.append(_Node(_LEAF, 0.0, start, end, -1, -1))
            return node_id
        block = self._data[self._order[start:end]]
        spreads = block.max(axis=0) - block.min(axis=0)
        dim = int(np.argmax(spreads))
        if spreads[dim] <= 0.0:
            # All duplicates: no hyperplane separates anything.
            self._nodes.append(_Node(_LEAF, 0.0, start, end, -1, -1))
            return node_id
        mid = (end - start) // 2
        values = block[:, dim]
        partition = np.argpartition(values, mid)
        self._order[start:end] = self._order[start:end][partition]
        split = float(self._data[self._order[start + mid], dim])
        # Placeholder; children are appended after this node.
        self._nodes.append(_Node(dim, split, start, end, -1, -1))
        left = self._build(start, start + mid)
        right = self._build(start + mid, end)
        self._nodes[node_id].left = left
        self._nodes[node_id].right = right
        return node_id

    # ------------------------------------------------------------------
    def _check_point(self, point: np.ndarray) -> np.ndarray:
        point = np.asarray(point, dtype=np.float64)
        if point.ndim != 1 or point.shape[0] != self._data.shape[1]:
            raise ValidationError(
                f"point must be 1-D of dim {self._data.shape[1]}, "
                f"got shape {point.shape}"
            )
        return point

    def _leaf_distances(
        self, node: _Node, point: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        members = self._order[node.start : node.end]
        return members, _minkowski(self._data[members] - point, self.p)

    def query_knn(
        self, point: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The *k* nearest items to *point*, sorted by distance.

        Returns ``(indices, distances)``.  ``k`` is clamped to ``n``.
        Branch and bound: a subtree is skipped when the splitting-plane
        distance already exceeds the current k-th best distance.
        """
        point = self._check_point(point)
        k = int(k)
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        k = min(k, self.n)
        # Max-heap of the current k best as (-distance, index).
        best: list[tuple[float, int]] = []
        # Stack of (lower_bound, node_id); bounds prune stale entries.
        stack: list[tuple[float, int]] = [(0.0, 0)]
        while stack:
            bound, node_id = stack.pop()
            if len(best) == k and bound >= -best[0][0]:
                continue
            node = self._nodes[node_id]
            if node.dim == _LEAF:
                members, dists = self._leaf_distances(node, point)
                for idx, dist in zip(members, dists):
                    if len(best) < k:
                        heapq.heappush(best, (-dist, int(idx)))
                    elif dist < -best[0][0]:
                        heapq.heapreplace(best, (-dist, int(idx)))
                continue
            plane = point[node.dim] - node.split
            near, far = (
                (node.left, node.right) if plane < 0 else (node.right, node.left)
            )
            # Far side first so the near side is popped (and scanned)
            # first, tightening the bound before the far side is judged.
            stack.append((abs(plane), far))
            stack.append((bound, near))
        best.sort(key=lambda item: (-item[0], item[1]))
        indices = np.asarray([idx for _, idx in best], dtype=np.intp)
        distances = np.asarray([-neg for neg, _ in best])
        return indices, distances

    def query_radius(self, point: np.ndarray, radius: float) -> np.ndarray:
        """All items within *radius* of *point* (sorted indices).

        The fixed-radius near-neighbour problem the ROI retrieval of
        §4.3 reduces to, solved exactly.
        """
        point = self._check_point(point)
        if radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        hits: list[np.ndarray] = []
        stack = [0]
        while stack:
            node = self._nodes[stack.pop()]
            if node.dim == _LEAF:
                members, dists = self._leaf_distances(node, point)
                hits.append(members[dists <= radius])
                continue
            plane = point[node.dim] - node.split
            near, far = (
                (node.left, node.right) if plane < 0 else (node.right, node.left)
            )
            stack.append(near)
            if abs(plane) <= radius:
                stack.append(far)
        if not hits:
            return np.empty(0, dtype=np.intp)
        out = np.concatenate(hits)
        out.sort()
        return out

    def knn_graph(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """k-NN lists for every indexed item (self excluded).

        Returns ``(neighbors, distances)`` of shape ``(n, k)`` — the raw
        material of the ENN sparsifier.  ``k`` is clamped to ``n - 1``.
        """
        k = int(k)
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        k = min(k, self.n - 1)
        if k == 0:
            raise ValidationError("knn_graph needs at least 2 indexed items")
        neighbors = np.empty((self.n, k), dtype=np.intp)
        distances = np.empty((self.n, k))
        for i in range(self.n):
            idx, dist = self.query_knn(self._data[i], k + 1)
            keep = idx != i
            # The self-match may be absent when k+1 duplicates at
            # distance 0 crowd it out; either way keep k rows.
            neighbors[i] = idx[keep][:k]
            distances[i] = dist[keep][:k]
        return neighbors, distances
