"""Nearest-neighbour substrates beyond LSH.

The paper's §5.1 follows Chen et al. [8], who sparsify affinity matrices
through either *exact* nearest neighbours (ENN) or *approximate* nearest
neighbours (ANN) found by LSH or a Spill-Tree [20].  The main reproduction
uses LSH (the paper's choice, "due to its efficiency"); this package
supplies the other two search structures so that the ENN/ANN comparison
can be carried out and the sparsifier ablated:

* :mod:`repro.ann.kdtree` — an exact k-d tree (k-NN and fixed-radius
  queries with branch-and-bound pruning) backing the ENN sparsifier;
* :mod:`repro.ann.spilltree` — the hybrid spill tree of Liu, Moore, Gray
  & Yang (NIPS 2004): overlapping splits searched defeatist-style,
  non-overlapping splits searched with exact backtracking.
"""

from repro.ann.kdtree import KDTree
from repro.ann.spilltree import SpillTree

__all__ = ["KDTree", "SpillTree"]
