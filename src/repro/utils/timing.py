"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.lap("build_index"):
    ...     pass
    >>> "build_index" in sw.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str):
        """Context manager accumulating elapsed seconds under *name*."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.laps[name] = self.laps.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """Sum of all laps in seconds."""
        return float(sum(self.laps.values()))

    def reset(self) -> None:
        """Clear all laps."""
        self.laps.clear()


@contextmanager
def timed():
    """Context manager yielding a mutable one-slot list of elapsed seconds.

    >>> with timed() as t:
    ...     pass
    >>> t[0] >= 0.0
    True
    """
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
