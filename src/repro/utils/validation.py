"""Input validation helpers.

All public entry points of the library validate their inputs through these
helpers so that error messages are uniform and tests can rely on
:class:`~repro.exceptions.ValidationError` being raised for bad input.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "check_data_matrix",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_probability_vector",
    "check_index_array",
]


def check_data_matrix(data: np.ndarray, *, name: str = "data") -> np.ndarray:
    """Validate and canonicalise a 2-D float data matrix.

    Parameters
    ----------
    data:
        Array-like of shape ``(n, d)``; rows are data items.
    name:
        Name used in error messages.

    Returns
    -------
    numpy.ndarray
        A C-contiguous ``float64`` array of shape ``(n, d)``.

    Raises
    ------
    ValidationError
        If the array is not 2-D, is empty, or contains NaN/inf.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError(
            f"{name} must be 2-D (n items x d features), got ndim={arr.ndim}"
        )
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValidationError(f"{name} must be non-empty, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_finite(value: np.ndarray | float, *, name: str = "value") -> None:
    """Raise :class:`ValidationError` if *value* contains NaN or inf."""
    if not np.all(np.isfinite(value)):
        raise ValidationError(f"{name} contains NaN or infinite values")


def check_positive(value: float, *, name: str = "value", strict: bool = True) -> float:
    """Validate that a scalar is (strictly) positive and return it as float."""
    if not isinstance(value, numbers.Real):
        raise ValidationError(f"{name} must be a real number, got {type(value)!r}")
    value = float(value)
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    value: float,
    low: float,
    high: float,
    *,
    name: str = "value",
    inclusive: bool = True,
) -> float:
    """Validate that ``low <= value <= high`` (or strict) and return it."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValidationError(
            f"{name} must lie in {bracket[0]}{low}, {high}{bracket[1]}, got {value}"
        )
    return value


def check_probability_vector(
    x: np.ndarray, *, name: str = "x", atol: float = 1e-8
) -> np.ndarray:
    """Validate that *x* lies on the standard simplex.

    The vector must be 1-D, non-negative and sum to 1 within *atol*.
    Returns the vector as ``float64``.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    if np.any(arr < -atol):
        raise ValidationError(f"{name} has negative entries (min={arr.min()})")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, 1e-12 * arr.size):
        raise ValidationError(f"{name} must sum to 1, got {total}")
    return arr


def check_index_array(
    indices: np.ndarray, n: int, *, name: str = "indices", allow_empty: bool = True
) -> np.ndarray:
    """Validate an integer index array against a collection of size *n*."""
    arr = np.asarray(indices)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if arr.size == 0:
        if allow_empty:
            return arr.astype(np.intp)
        raise ValidationError(f"{name} must be non-empty")
    if not np.issubdtype(arr.dtype, np.integer):
        as_int = arr.astype(np.intp)
        if not np.array_equal(as_int, arr):
            raise ValidationError(f"{name} must be integer-valued")
        arr = as_int
    if arr.min() < 0 or arr.max() >= n:
        raise ValidationError(
            f"{name} out of bounds for collection of size {n}: "
            f"min={arr.min()}, max={arr.max()}"
        )
    return arr.astype(np.intp)
